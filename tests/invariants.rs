//! Property-based integration tests: random operation sequences against
//! the live server, checked against a simple in-test model of the paper's
//! invariants (DESIGN.md §5).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proptest::prelude::*;

use softwareputation::core::clock::{SimClock, WEEK_SECS};
use softwareputation::core::db::ReputationDb;
use softwareputation::core::trust::{MAX_TRUST, MIN_TRUST};
use softwareputation::proto::{Request, Response};
use softwareputation::server::{ReputationServer, ServerConfig};

#[derive(Debug, Clone)]
enum Op {
    Vote { user: usize, program: usize, score: u8 },
    Comment { user: usize, program: usize },
    Remark { user: usize, comment_index: usize, positive: bool },
    AdvanceHours { hours: u64 },
}

fn op_strategy(users: usize, programs: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..users, 0..programs, 1u8..=10).prop_map(|(user, program, score)| Op::Vote { user, program, score }),
        2 => (0..users, 0..programs).prop_map(|(user, program)| Op::Comment { user, program }),
        3 => (0..users, 0usize..20, any::<bool>())
            .prop_map(|(user, comment_index, positive)| Op::Remark { user, comment_index, positive }),
        1 => (1u64..48).prop_map(|hours| Op::AdvanceHours { hours }),
    ]
}

struct World {
    server: Arc<ReputationServer>,
    clock: SimClock,
    sessions: Vec<String>,
    programs: Vec<String>,
    comment_ids: Vec<(u64, usize)>, // (id, author index)
}

fn build_world(users: usize, programs: usize) -> World {
    let clock = SimClock::new();
    let server = Arc::new(ReputationServer::new(
        ReputationDb::in_memory("prop"),
        Arc::new(clock.clone()),
        ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            session_ttl_secs: 365 * 24 * 3_600,
            ..ServerConfig::default()
        },
        99,
    ));
    let mut sessions = Vec::new();
    for i in 0..users {
        let name = format!("pu{i:03}");
        let Response::Registered { activation_token } = server.handle(
            &Request::Register {
                username: name.clone(),
                password: "pw".into(),
                email: format!("{name}@p.example"),
                puzzle_challenge: String::new(),
                puzzle_solution: 0,
            },
            "prop-host",
        ) else {
            panic!("registration failed")
        };
        server.handle(&Request::Activate { username: name.clone(), token: activation_token }, "h");
        let Response::Session { token } =
            server.handle(&Request::Login { username: name, password: "pw".into() }, "h")
        else {
            panic!("login failed")
        };
        sessions.push(token);
    }
    let mut program_ids = Vec::new();
    for p in 0..programs {
        let id = format!("{p:040x}");
        server.handle(
            &Request::RegisterSoftware {
                software_id: id.clone(),
                file_name: format!("p{p}.exe"),
                file_size: 1,
                company: None,
                version: None,
            },
            "h",
        );
        program_ids.push(id);
    }
    World { server, clock, sessions, programs: program_ids, comment_ids: Vec::new() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_op_sequences_preserve_every_invariant(
        ops in proptest::collection::vec(op_strategy(5, 4), 1..60)
    ) {
        let mut world = build_world(5, 4);
        // Model: the latest vote per (user, program).
        let mut model_votes: HashMap<(usize, usize), u8> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Vote { user, program, score } => {
                    let resp = world.server.handle(&Request::SubmitVote {
                        session: world.sessions[user].clone(),
                        software_id: world.programs[program].clone(),
                        score,
                        behaviours: vec![],
                    }, "h");
                    prop_assert_eq!(resp, Response::Ok);
                    model_votes.insert((user, program), score);
                }
                Op::Comment { user, program } => {
                    let resp = world.server.handle(&Request::SubmitComment {
                        session: world.sessions[user].clone(),
                        software_id: world.programs[program].clone(),
                        text: format!("comment by {user} on {program}"),
                    }, "h");
                    prop_assert_eq!(resp, Response::Ok);
                    // Recover the id from the report (comments are listed).
                    let Response::Software(info) = world.server.handle(
                        &Request::QueryDetails { software_id: world.programs[program].clone() }, "h")
                    else { panic!("report expected") };
                    if let Some(c) = info.comments.iter().max_by_key(|c| c.id) {
                        if !world.comment_ids.iter().any(|(id, _)| *id == c.id) {
                            world.comment_ids.push((c.id, user));
                        }
                    }
                }
                Op::Remark { user, comment_index, positive } => {
                    if world.comment_ids.is_empty() { continue; }
                    let (comment_id, author) =
                        world.comment_ids[comment_index % world.comment_ids.len()];
                    let resp = world.server.handle(&Request::RateComment {
                        session: world.sessions[user].clone(),
                        comment_id,
                        positive,
                    }, "h");
                    if user == author {
                        let is_self_remark =
                            matches!(resp, Response::Error { ref code, .. } if code == "self-remark");
                        prop_assert!(is_self_remark);
                    } else {
                        prop_assert_eq!(resp, Response::Ok);
                    }
                }
                Op::AdvanceHours { hours } => {
                    world.clock.advance_secs(hours * 3_600);
                    world.server.tick();
                }
            }

            // Invariant 1: ballot count equals the model's distinct pairs.
            prop_assert_eq!(world.server.db().vote_count(), model_votes.len());

            // Invariant 2: every trust factor within bounds and schedule.
            let week = world.server.now().week_index();
            for i in 0..world.sessions.len() {
                if let Some(trust) = world.server.db().trust_of(&format!("pu{i:03}")).unwrap() {
                    prop_assert!((MIN_TRUST..=MAX_TRUST).contains(&trust));
                    prop_assert!(trust <= MIN_TRUST + 5.0 * (week as f64 + 1.0));
                }
            }
        }

        // Final aggregation equals the trust-weighted mean of the model.
        world.server.db().force_aggregation(world.server.now()).unwrap();
        for (p, program_id) in world.programs.iter().enumerate() {
            let expected: Vec<(usize, u8)> = model_votes
                .iter()
                .filter(|((_, prog), _)| *prog == p)
                .map(|((u, _), s)| (*u, *s))
                .collect();
            let rating = world.server.db().rating(program_id).unwrap();
            prop_assert_eq!(rating.is_some(), !expected.is_empty());
            if let Some(rating) = rating {
                prop_assert_eq!(rating.vote_count as usize, expected.len());
                let mut mass = 0.0;
                let mut weight = 0.0;
                for (u, s) in &expected {
                    let t = world.server.db().trust_of(&format!("pu{u:03}")).unwrap().unwrap();
                    mass += f64::from(*s) * t;
                    weight += t;
                }
                prop_assert!((rating.rating - mass / weight).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn trust_growth_cap_holds_under_remark_storms(
        remark_weeks in proptest::collection::vec(0u64..6, 1..40)
    ) {
        // One author, many fans, remarks scattered over weeks: the
        // author's trust must never exceed the §3.2 schedule.
        let world = build_world(1, 1);
        let db = world.server.db();
        let author_comment = db
            .submit_comment("pu000", &world.programs[0], "seed comment", world.server.now())
            .unwrap();

        let mut rng_i = 0usize;
        let mut seen_weeks = HashSet::new();
        let mut current_week = 0u64;
        for &week in &remark_weeks {
            // Time is monotone in any real deployment; clamp the sampled
            // week so the sequence never runs backwards.
            current_week = current_week.max(week);
            let week = current_week;
            seen_weeks.insert(week);
            rng_i += 1;
            let fan = format!("fan{rng_i:04}");
            // Direct DB registration for speed.
            let mut rng = rand::rngs::OsRng;
            let token = db
                .register_user(&fan, "pw", &format!("{fan}@f.example"), world.server.now(), &mut rng)
                .unwrap();
            db.activate_user(&fan, &token).unwrap();
            db.remark_comment(
                &fan,
                author_comment,
                true,
                softwareputation::core::clock::Timestamp(week * WEEK_SECS + 10),
            )
            .unwrap();

            let trust = db.trust_of("pu000").unwrap().unwrap();
            prop_assert!(trust <= MIN_TRUST + 5.0 * seen_weeks.len() as f64);
            prop_assert!(trust <= MAX_TRUST);
        }
    }
}
