//! Crash-schedule explorer: enumerate every durable-effect site of a
//! recorded workload, reconstruct the on-disk image a crash there would
//! leave, and prove the production recovery path restores a consistent
//! prefix — no lost committed batch, no half-applied batch, no panic.
//!
//! The matrix is (durable site k) × (crash style): `DurableOnly` models a
//! clean power cut, `TornHalf` a tear in the unsynced tail, `AllPending`
//! an OS that flushed everything the process wrote. See DESIGN.md §13.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use softwareputation::core::clock::Timestamp;
use softwareputation::core::db::ReputationDb;
use softwareputation::crypto::salted::SecretPepper;
use softwareputation::storage::failpoint::{self, FailAction};
use softwareputation::storage::{
    durable_image_at, CrashStyle, DurabilityMode, Fault, SimVfs, Store, StoreOptions, WriteBatch,
};

#[path = "support/crash.rs"]
mod crash;
#[path = "support/tempdir.rs"]
mod tempdir;

use crash::{check_recovery, materialize, record_canonical_workload, site_label};
use tempdir::TempDir;

const STYLES: [CrashStyle; 3] =
    [CrashStyle::DurableOnly, CrashStyle::TornHalf, CrashStyle::AllPending];

/// The tentpole assertion: the canonical workload exposes a rich schedule
/// (ISSUE acceptance: at least 25 distinct durable-effect sites) and the
/// recovery invariant holds at every one of them, under every crash style.
#[test]
fn canonical_workload_recovers_at_every_durable_site() {
    let rec = record_canonical_workload(18, &[5, 11]);
    assert!(
        rec.sites >= 25,
        "canonical workload only produced {} durable sites; the explorer \
         needs >= 25 to cover append/sync/rotate/snapshot/retire schedules",
        rec.sites
    );

    let dir = TempDir::new("crash-matrix");
    // k == rec.sites is the "no crash" end of the range and must also hold.
    for k in 0..=rec.sites {
        for style in STYLES {
            let label = site_label(&rec, k, style);
            let image = durable_image_at(&rec.log, k, style);
            materialize(&image, dir.path());
            check_recovery(dir.path(), &rec, k, &label);
        }
    }
}

/// The final image (all sites durable) recovers the complete history.
#[test]
fn final_image_recovers_every_batch() {
    let rec = record_canonical_workload(12, &[7]);
    let dir = TempDir::new("crash-final");
    let image = durable_image_at(&rec.log, rec.sites, CrashStyle::DurableOnly);
    materialize(&image, dir.path());
    let n = check_recovery(dir.path(), &rec, rec.sites, "final image");
    assert_eq!(n, rec.total_batches, "fully-synced image must recover every batch");
}

/// Randomized exploration: workload shape (batch count, compaction points)
/// is drawn from `SOFTREP_CRASH_SEED` (or a fixed default), and the seed is
/// baked into every assertion label so a CI failure is reproducible with
/// `SOFTREP_CRASH_SEED=<seed> cargo test -q --test crash_matrix`.
#[test]
fn randomized_workload_recovers_at_every_durable_site() {
    let seed: u64 =
        std::env::var("SOFTREP_CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);
    let mut rng = StdRng::seed_from_u64(seed);

    let total = rng.gen_range(8..=24);
    let mut compact_after: Vec<usize> = Vec::new();
    for i in 0..total {
        if rng.gen_bool(0.2) {
            compact_after.push(i);
        }
    }
    let rec = record_canonical_workload(total, &compact_after);

    let dir = TempDir::new("crash-random");
    for k in 0..=rec.sites {
        for style in STYLES {
            let label = format!(
                "seed {seed} (workload: {total} batches, compact after {compact_after:?}) {}",
                site_label(&rec, k, style)
            );
            let image = durable_image_at(&rec.log, k, style);
            materialize(&image, dir.path());
            check_recovery(dir.path(), &rec, k, &label);
        }
    }
}

/// Accumulator consistency across crashes: whatever vote prefix survives,
/// the incremental aggregation path over the recovered store must agree
/// with a from-scratch full aggregation — a crash may shorten history but
/// never fork the ratings.
#[test]
fn recovered_accumulators_match_full_reaggregation_at_every_site() {
    let sw = |tag: u8| -> String { format!("{tag:02x}").repeat(20) };

    // Record a vote-heavy DB workload over the simulator.
    let vfs = SimVfs::new();
    let store = Store::open_with_vfs(
        "/sim/crash-db",
        StoreOptions { durability: DurabilityMode::Always, shards: 4 },
        Arc::new(vfs.clone()),
    )
    .expect("open sim store");
    let db = ReputationDb::new(Arc::new(store), SecretPepper::new("it-pepper"));
    let mut rng = StdRng::seed_from_u64(42);
    for (i, user) in ["alice", "bob", "carol"].iter().enumerate() {
        let token = db
            .register_user(user, "pw", &format!("{user}@x.example"), Timestamp(i as u64), &mut rng)
            .expect("register");
        db.activate_user(user, &token).expect("activate");
    }
    for tag in 1..=3u8 {
        db.register_software(&sw(tag), &format!("app{tag}.exe"), 512, None, None, Timestamp(5))
            .expect("register software");
    }
    let mut t = 10u64;
    for round in 0..4u64 {
        for user in ["alice", "bob", "carol"] {
            for tag in 1..=3u8 {
                let verdict = u8::try_from((round + u64::from(tag)) % 10).expect("verdict fits");
                db.submit_vote(user, &sw(tag), verdict, vec!["spyware".into()], Timestamp(t))
                    .expect("vote");
                t += 1;
            }
        }
        db.force_aggregation_incremental(Timestamp(t)).expect("aggregate");
        t += 1;
    }
    db.store().sync().expect("final sync");
    drop(db);

    let log = vfs.event_log();
    let sites = vfs.durable_site_count();
    assert!(sites >= 10, "DB workload produced only {sites} durable sites");

    let dir = TempDir::new("crash-db");
    for k in 0..=sites {
        let image = durable_image_at(&log, k, CrashStyle::DurableOnly);
        materialize(&image, dir.path());
        let db = ReputationDb::new(
            Arc::new(Store::open(dir.path()).unwrap_or_else(|e| panic!("site {k}: reopen: {e}"))),
            SecretPepper::new("it-pepper"),
        );
        // Incremental catch-up over whatever survived...
        db.force_aggregation_incremental(Timestamp(10_000))
            .unwrap_or_else(|e| panic!("site {k}: incremental aggregation: {e}"));
        let incremental: Vec<Vec<u8>> = db
            .ratings_snapshot()
            .unwrap_or_else(|e| panic!("site {k}: snapshot: {e}"))
            .iter()
            .map(|r| r.content_bytes())
            .collect();
        // ...must agree with replaying every recovered vote from scratch.
        db.force_aggregation_full(Timestamp(10_001))
            .unwrap_or_else(|e| panic!("site {k}: full aggregation: {e}"));
        let full: Vec<Vec<u8>> = db
            .ratings_snapshot()
            .unwrap_or_else(|e| panic!("site {k}: snapshot: {e}"))
            .iter()
            .map(|r| r.content_bytes())
            .collect();
        assert_eq!(
            incremental, full,
            "site {k}/{sites}: incremental accumulators diverge from full reaggregation"
        );
    }
}

/// ISSUE acceptance: an injected fsync failure surfaces as a typed storage
/// error — never a panic — and the store keeps serving reads; clearing the
/// failpoint restores write service on a fresh handle.
#[test]
fn injected_fsync_failure_is_a_typed_error_not_a_panic() {
    let vfs = SimVfs::new();
    let store = Store::open_with_vfs(
        "/sim/fsync-fault",
        StoreOptions { durability: DurabilityMode::Always, shards: 2 },
        Arc::new(vfs.clone()),
    )
    .expect("open sim store");

    let mut batch = WriteBatch::new();
    batch.put("t", b"k0".to_vec(), b"v0".to_vec());
    store.apply(&batch).expect("healthy apply");

    vfs.failpoints().set("vfs.sync", FailAction::Every(Fault::Err));
    let mut batch = WriteBatch::new();
    batch.put("t", b"k1".to_vec(), b"v1".to_vec());
    let err = store.apply(&batch).expect_err("apply must fail while fsync is failing");
    let msg = err.to_string();
    assert!(msg.contains("vfs.sync"), "error should name the failing site, got: {msg}");
    assert!(vfs.failpoints().trip_count("vfs.sync") > 0, "failpoint never tripped");

    // Reads keep working; the durable image was not corrupted.
    assert_eq!(store.get("t", b"k0"), Some(b"v0".to_vec()));

    // Clearing the fault and reopening recovers: batch 0 is there, and new
    // writes succeed again. (The failed flush may have poisoned the live
    // WAL handle by design — reopen is the documented recovery.)
    vfs.failpoints().clear("vfs.sync");
    drop(store);
    let store = Store::open_with_vfs(
        "/sim/fsync-fault",
        StoreOptions { durability: DurabilityMode::Always, shards: 2 },
        Arc::new(vfs.clone()),
    )
    .expect("reopen after clearing fault");
    assert_eq!(store.get("t", b"k0"), Some(b"v0".to_vec()));
    let mut batch = WriteBatch::new();
    batch.put("t", b"k2".to_vec(), b"v2".to_vec());
    store.apply(&batch).expect("writes recover after the fault clears");
}

/// The global registry (the `SOFTREP_FAILPOINTS` backend) injects faults
/// into the real filesystem VFS too, scoped by path substring so other
/// tests in this binary are unaffected.
#[test]
fn global_failpoints_reach_the_real_vfs() {
    let dir = TempDir::new("global-fp-reach");
    let scope = dir
        .path()
        .file_name()
        .and_then(|n| n.to_str())
        .expect("temp dir name is utf-8")
        .to_string();

    let store = Store::open_with(
        dir.path(),
        StoreOptions { durability: DurabilityMode::Always, shards: 2 },
    )
    .expect("open real store");
    let mut batch = WriteBatch::new();
    batch.put("t", b"k0".to_vec(), b"v0".to_vec());
    store.apply(&batch).expect("healthy apply");

    failpoint::arm_global_scoped("vfs.sync", &scope, FailAction::Every(Fault::Err));
    let mut batch = WriteBatch::new();
    batch.put("t", b"k1".to_vec(), b"v1".to_vec());
    let err = store.apply(&batch).expect_err("global failpoint must fail the apply");
    assert!(err.to_string().contains("vfs.sync"), "unexpected error: {err}");
    failpoint::disarm_global("vfs.sync");

    drop(store);
    let store = Store::open(dir.path()).expect("reopen after disarming");
    assert_eq!(store.get("t", b"k0"), Some(b"v0".to_vec()));
    let mut batch = WriteBatch::new();
    batch.put("t", b"k2".to_vec(), b"v2".to_vec());
    store.apply(&batch).expect("writes recover once the global point is disarmed");
}
