//! §5 pseudonyms end to end: a verified member draws one blind-signed
//! credential and redeems it as an unlinkable pseudonym account; the
//! server can verify membership without being able to link the pseudonym
//! back — and the database breach audit shows what that buys.

use std::sync::Arc;

use softwareputation::core::clock::SimClock;
use softwareputation::core::db::ReputationDb;
use softwareputation::crypto::bignum::BigUint;
use softwareputation::crypto::hex;
use softwareputation::crypto::rsa::{BlindingSession, RsaPublicKey};
use softwareputation::proto::{Request, Response};
use softwareputation::server::{ReputationServer, ServerConfig};

fn server() -> (Arc<ReputationServer>, SimClock) {
    let clock = SimClock::new();
    let server = Arc::new(ReputationServer::new(
        ReputationDb::in_memory("pseudo"),
        Arc::new(clock.clone()),
        ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            // Small key keeps debug-mode tests fast; the scheme is
            // size-agnostic (the deployment binary uses 1024).
            pseudonym_key_bits: 256,
            ..ServerConfig::default()
        },
        23,
    ));
    (server, clock)
}

fn join(server: &ReputationServer, name: &str) -> String {
    let Response::Registered { activation_token } = server.handle(
        &Request::Register {
            username: name.into(),
            password: "pw".into(),
            email: format!("{name}@p.example"),
            puzzle_challenge: String::new(),
            puzzle_solution: 0,
        },
        name,
    ) else {
        panic!("registration failed")
    };
    server.handle(&Request::Activate { username: name.into(), token: activation_token }, name);
    let Response::Session { token } =
        server.handle(&Request::Login { username: name.into(), password: "pw".into() }, name)
    else {
        panic!("login failed")
    };
    token
}

fn fetch_key(server: &ReputationServer) -> RsaPublicKey {
    let Response::PseudonymKey { n, e } = server.handle(&Request::GetPseudonymKey, "c") else {
        panic!("expected key")
    };
    RsaPublicKey { n: BigUint::from_hex(&n).unwrap(), e: BigUint::from_hex(&e).unwrap() }
}

/// The full client-side credential flow; returns (token_hex, sig_hex).
fn draw_credential(server: &ReputationServer, session: &str, seed: u64) -> (String, String) {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let public = fetch_key(server);
    let mut token = [0u8; 32];
    rng.fill_bytes(&mut token);

    let (blind_session, blinded) = BlindingSession::blind(&token, &public, &mut rng);
    let Response::BlindSignature { value } = server.handle(
        &Request::BlindSignPseudonym { session: session.into(), blinded: blinded.to_hex() },
        "member-host",
    ) else {
        panic!("expected blind signature")
    };
    let signature = blind_session
        .unblind(&BigUint::from_hex(&value).unwrap())
        .expect("server signature must verify");
    (hex::encode(&token), signature.0.to_hex())
}

#[test]
fn pseudonym_lifecycle_and_unlinkability() {
    let (server, _clock) = server();
    let session = join(&server, "whistleblower");
    let (token, signature) = draw_credential(&server, &session, 1);

    // Redeem the credential — note: no session is presented.
    let resp = server.handle(
        &Request::RegisterPseudonym {
            username: "deep_throat".into(),
            password: "anon-pw".into(),
            token: token.clone(),
            signature: signature.clone(),
        },
        "some-other-host",
    );
    assert_eq!(resp, Response::Ok);

    // The pseudonym is a fully functional member.
    let Response::Session { token: pseudo_session } = server.handle(
        &Request::Login { username: "deep_throat".into(), password: "anon-pw".into() },
        "some-other-host",
    ) else {
        panic!("pseudonym login failed")
    };
    let sw = "ab".repeat(20);
    server.handle(
        &Request::RegisterSoftware {
            software_id: sw.clone(),
            file_name: "sensitive-tool.exe".into(),
            file_size: 1,
            company: None,
            version: None,
        },
        "h",
    );
    assert_eq!(
        server.handle(
            &Request::SubmitVote {
                session: pseudo_session,
                software_id: sw,
                score: 2,
                behaviours: vec!["tracking".into()],
            },
            "some-other-host",
        ),
        Response::Ok
    );

    // Breach audit: the pseudonym's stored record carries no e-mail
    // digest and nothing linking it to "whistleblower".
    let record = server.db().user("deep_throat").unwrap().unwrap();
    assert!(record.pseudonym);
    assert!(record.email_digest.is_empty());
    // The member's record shows only that *a* credential was drawn.
    let member = server.db().user("whistleblower").unwrap().unwrap();
    assert!(member.pseudonym_credential_issued);

    // Replay: the same token cannot mint a second pseudonym.
    let resp = server.handle(
        &Request::RegisterPseudonym {
            username: "second_identity".into(),
            password: "pw".into(),
            token,
            signature,
        },
        "h",
    );
    assert!(matches!(resp, Response::Error { ref code, .. } if code == "invalid-input"));
}

#[test]
fn one_credential_per_member() {
    let (server, _clock) = server();
    let session = join(&server, "greedy");
    let _ = draw_credential(&server, &session, 2);
    // The second draw is refused at the blind-signing step.
    let public = fetch_key(&server);
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(3);
    let (_, blinded) = BlindingSession::blind(b"another token", &public, &mut rng);
    let resp = server
        .handle(&Request::BlindSignPseudonym { session, blinded: blinded.to_hex() }, "member-host");
    assert!(matches!(resp, Response::Error { ref code, .. } if code == "invalid-input"));
}

#[test]
fn forged_credentials_are_rejected() {
    let (server, _clock) = server();
    // A token "signed" with a made-up signature value.
    let resp = server.handle(
        &Request::RegisterPseudonym {
            username: "forger".into(),
            password: "pw".into(),
            token: hex::encode(b"self-issued token"),
            signature: "deadbeef".into(),
        },
        "h",
    );
    assert!(matches!(resp, Response::Error { ref code, .. } if code == "bad-credential"));
    assert!(server.db().user("forger").unwrap().is_none());

    // Garbage hex is a bad request, not a panic.
    let resp = server.handle(
        &Request::RegisterPseudonym {
            username: "forger".into(),
            password: "pw".into(),
            token: "not hex!".into(),
            signature: "zz".into(),
        },
        "h",
    );
    assert!(matches!(resp, Response::Error { ref code, .. } if code == "bad-request"));
}

#[test]
fn pseudonyms_disabled_without_a_key() {
    let clock = SimClock::new();
    let server = ReputationServer::new(
        ReputationDb::in_memory("nokey"),
        Arc::new(clock),
        ServerConfig { puzzle_difficulty: 0, ..ServerConfig::default() },
        1,
    );
    let resp = server.handle(&Request::GetPseudonymKey, "c");
    assert!(matches!(resp, Response::Error { ref code, .. } if code == "pseudonyms-disabled"));
}

#[test]
fn pseudonym_messages_roundtrip_on_the_wire() {
    for request in [
        Request::GetPseudonymKey,
        Request::BlindSignPseudonym { session: "s".into(), blinded: "abcd".into() },
        Request::RegisterPseudonym {
            username: "nym".into(),
            password: "pw".into(),
            token: "00ff".into(),
            signature: "1234".into(),
        },
    ] {
        assert_eq!(Request::decode(&request.encode()).unwrap(), request);
    }
    for response in [
        Response::PseudonymKey { n: "ff".into(), e: "10001".into() },
        Response::BlindSignature { value: "beef".into() },
    ] {
        assert_eq!(Response::decode(&response.encode()).unwrap(), response);
    }
}
