//! Hand-rolled property-testing support: a seeded generator, a workload
//! interpreter, and a ddmin-style shrinker.
//!
//! The workspace deliberately vendors offline stand-ins instead of pulling
//! real crates, and the vendored `proptest` stub only covers the closed-form
//! strategies the unit tests use. Randomized *stateful* workloads (sequences
//! of database operations) need a generator and a shrinker, so this module
//! rolls a minimal pair by hand:
//!
//! * [`SplitMix64`] — a tiny, well-known seedable generator; printing its
//!   seed on failure makes every counterexample replayable with
//!   `SOFTREP_PROP_SEED=<seed> cargo test`.
//! * [`gen_workload`] — random [`Op`] sequences over small fixed pools of
//!   users and software titles.
//! * [`shrink`] — greedy chunk removal (delta debugging): repeatedly drop
//!   halves/quarters/… of the failing workload while it keeps failing, so
//!   the printed counterexample is near-minimal.

use softrep_core::clock::{Timestamp, DAY_SECS};
use softrep_core::db::ReputationDb;
use softrep_core::moderation::{ModerationDecision, ModerationPolicy};
use softrep_crypto::salted::SecretPepper;
use softrep_storage::Store;

use rand::rngs::StdRng;
use rand::SeedableRng;

use std::sync::Arc;

/// SplitMix64: 64-bit seedable generator (Steele et al., used to seed
/// xoshiro in the literature). Tiny state, no dependencies, good enough
/// for test-case generation.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Users available to a workload (small pool: collisions — re-votes,
/// repeated remarks, trust churn on the same account — are the interesting
/// cases).
pub const USERS: [&str; 6] = ["alice", "bob", "carol", "dave", "erin", "frank"];

/// Software pool size.
pub const TITLES: usize = 8;

/// The `i`-th software id in the pool (40 hex chars, like a SHA-1).
pub fn title(i: usize) -> String {
    format!("{i:040x}")
}

/// One step of a randomized workload. Every variant is deterministic given
/// its fields, so a `Vec<Op>` replays identically on any database.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `user` votes `score` on `title`, reporting `behaviours`.
    Vote { user: usize, title: usize, score: u8, behaviours: Vec<String> },
    /// `user` comments on `title`.
    Comment { user: usize, title: usize },
    /// `user` remarks (positive/negative) on the `nth` comment created so
    /// far — may target an unpublished or own comment, which must fail
    /// identically on both databases.
    Remark { user: usize, nth: usize, positive: bool },
    /// Direct trust adjustment (the server does this for analyzer
    /// agreement and administrative corrections).
    AdjustTrust { user: usize, delta_half_points: i64 },
    /// Administrator decides the oldest pending comment.
    Moderate { approve: bool },
    /// Advance simulated time by `days` (drives weekly trust caps and the
    /// 24 h schedule).
    AdvanceDays { days: u64 },
    /// Run an aggregation batch on both databases and compare.
    Aggregate,
}

/// Generate a workload of `len` ops.
pub fn gen_workload(rng: &mut SplitMix64, len: usize) -> Vec<Op> {
    let behaviours_pool = ["popup_ads", "tracking", "bad_uninstall", "toolbar"];
    let mut ops = Vec::with_capacity(len);
    let mut comments_created = 0usize;
    for _ in 0..len {
        let op = match rng.below(100) {
            // Votes dominate: they are the aggregation input.
            0..=39 => Op::Vote {
                user: rng.below(USERS.len() as u64) as usize,
                title: rng.below(TITLES as u64) as usize,
                score: (rng.below(10) + 1) as u8,
                behaviours: {
                    let n = rng.below(3) as usize;
                    (0..n)
                        .map(|_| {
                            behaviours_pool[rng.below(behaviours_pool.len() as u64) as usize]
                                .to_string()
                        })
                        .collect()
                },
            },
            40..=54 => {
                comments_created += 1;
                Op::Comment {
                    user: rng.below(USERS.len() as u64) as usize,
                    title: rng.below(TITLES as u64) as usize,
                }
            }
            55..=69 if comments_created > 0 => Op::Remark {
                user: rng.below(USERS.len() as u64) as usize,
                nth: rng.below(comments_created as u64) as usize,
                positive: rng.chance(60),
            },
            70..=79 => Op::AdjustTrust {
                user: rng.below(USERS.len() as u64) as usize,
                // −3.0 .. +8.0 in half-point steps: crosses the clamp floor
                // and the weekly growth cap.
                delta_half_points: rng.below(23) as i64 - 6,
            },
            80..=86 => Op::Moderate { approve: rng.chance(70) },
            87..=93 => Op::AdvanceDays { days: rng.below(3) + 1 },
            _ => Op::Aggregate,
        };
        ops.push(op);
    }
    // Always end on a comparison so every workload checks equivalence at
    // least once.
    ops.push(Op::Aggregate);
    ops
}

/// Which aggregation path a database under test uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMode {
    Incremental,
    Full,
}

/// A database plus the interpreter state needed to replay a workload.
pub struct Replay {
    pub db: ReputationDb,
    pub mode: AggMode,
    /// Comment ids in creation order (`Op::Remark.nth` indexes this).
    comment_ids: Vec<u64>,
}

impl Replay {
    /// Fresh in-memory database with the user/software pools installed.
    /// `PreApproval` moderation so `Op::Moderate` has a queue to work on.
    pub fn new(mode: AggMode, seed: u64) -> Self {
        let db = ReputationDb::with_moderation(
            Arc::new(Store::in_memory()),
            SecretPepper::new(b"prop-pepper".to_vec()),
            ModerationPolicy::PreApproval,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let t0 = Timestamp(0);
        for (i, user) in USERS.iter().enumerate() {
            let email = format!("{user}@example.test");
            let token = db
                .register_user(user, "hunter2", &email, t0, &mut rng)
                .expect("pool user registers");
            db.activate_user(user, &token).expect("pool user activates");
            // Stagger initial trust so weights differ from the start.
            db.adjust_trust(user, i as f64, t0).expect("initial trust");
        }
        for i in 0..TITLES {
            db.register_software(
                &title(i),
                &format!("app{i}.exe"),
                1024 + i as u64,
                None,
                None,
                t0,
            )
            .expect("pool software registers");
        }
        Replay { db, mode, comment_ids: Vec::new() }
    }

    /// Apply one op at simulated time `now`. Domain errors (self-remark,
    /// remark on a pending comment, no pending comment to moderate) are
    /// swallowed — the point is that both databases take the *same* path,
    /// which the caller checks by comparing end states.
    pub fn apply(&mut self, op: &Op, now: Timestamp) {
        match op {
            Op::Vote { user, title: t, score, behaviours } => {
                self.db
                    .submit_vote(USERS[*user], &title(*t), *score, behaviours.clone(), now)
                    .expect("pool votes are always valid");
            }
            Op::Comment { user, title: t } => {
                let id = self
                    .db
                    .submit_comment(USERS[*user], &title(*t), "observed behaviour", now)
                    .expect("pool comments are always valid");
                self.comment_ids.push(id);
            }
            Op::Remark { user, nth, positive } => {
                if let Some(&id) = self.comment_ids.get(*nth) {
                    // May fail (pending comment, self-remark): identically
                    // on both databases.
                    let _ = self.db.remark_comment(USERS[*user], id, *positive, now);
                }
            }
            Op::AdjustTrust { user, delta_half_points } => {
                self.db
                    .adjust_trust(USERS[*user], *delta_half_points as f64 * 0.5, now)
                    .expect("trust adjustment never errors for known users");
            }
            Op::Moderate { approve } => {
                let pending = self.db.pending_comments().expect("pending scan");
                if let Some(first) = pending.first() {
                    let decision = if *approve {
                        ModerationDecision::Approve
                    } else {
                        ModerationDecision::Reject
                    };
                    self.db.moderate_comment(first.id, decision, now).expect("moderation applies");
                }
            }
            Op::AdvanceDays { .. } => {}
            Op::Aggregate => {
                match self.mode {
                    AggMode::Incremental => self.db.force_aggregation_incremental(now),
                    AggMode::Full => self.db.force_aggregation_full(now),
                }
                .expect("aggregation never errors");
            }
        }
    }
}

/// Replay `ops` against an incremental and a full database in lockstep and
/// return a divergence description, or `None` if the rating tables agree
/// (content bytes, `computed_at` excluded) at every `Op::Aggregate`.
pub fn run_equivalence_case(seed: u64, ops: &[Op]) -> Option<String> {
    let mut incremental = Replay::new(AggMode::Incremental, seed);
    let mut full = Replay::new(AggMode::Full, seed);
    let mut now = Timestamp(1_000);
    for (step, op) in ops.iter().enumerate() {
        incremental.apply(op, now);
        full.apply(op, now);
        if let Op::Aggregate = op {
            if let Some(diff) = diverged(&incremental.db, &full.db) {
                return Some(format!("step {step}: {diff}"));
            }
        }
        now = match op {
            Op::AdvanceDays { days } => Timestamp(now.0 + days * DAY_SECS),
            // Every op takes a little wall time so records carry distinct
            // timestamps.
            _ => Timestamp(now.0 + 17),
        };
    }
    None
}

/// Compare the two databases' full rating tables by content bytes.
pub fn diverged(incremental: &ReputationDb, full: &ReputationDb) -> Option<String> {
    let a = incremental.ratings_snapshot().expect("snapshot A");
    let b = full.ratings_snapshot().expect("snapshot B");
    if a.len() != b.len() {
        return Some(format!("rating counts differ: incremental {} vs full {}", a.len(), b.len()));
    }
    for (ra, rb) in a.iter().zip(&b) {
        if ra.software_id != rb.software_id {
            return Some(format!(
                "rating key order differs: {} vs {}",
                ra.software_id, rb.software_id
            ));
        }
        if ra.content_bytes() != rb.content_bytes() {
            return Some(format!(
                "rating for {} diverged: incremental {:?} vs full {:?}",
                ra.software_id, ra, rb
            ));
        }
    }
    None
}

/// Greedy chunk-removal shrinker (ddmin): try dropping ever-smaller chunks
/// of the workload while `fails` keeps returning true. Returns the
/// near-minimal failing workload.
pub fn shrink(ops: Vec<Op>, fails: impl Fn(&[Op]) -> bool) -> Vec<Op> {
    let mut current = ops;
    let mut chunk = current.len() / 2;
    while chunk >= 1 {
        let mut start = 0;
        let mut removed_any = false;
        while start < current.len() {
            let mut candidate = Vec::with_capacity(current.len().saturating_sub(chunk));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[(start + chunk).min(current.len())..]);
            if candidate.len() < current.len() && fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Re-test from the same offset: the next chunk slid into
                // this position.
            } else {
                start += chunk;
            }
        }
        if !removed_any {
            chunk /= 2;
        }
    }
    current
}

/// Number of random cases to run, honouring `SOFTREP_PROP_CASES`.
pub fn case_count(default: usize) -> usize {
    std::env::var("SOFTREP_PROP_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Base seed, honouring `SOFTREP_PROP_SEED` (decimal or `0x…` hex) for
/// replay.
pub fn base_seed(default: u64) -> u64 {
    std::env::var("SOFTREP_PROP_SEED")
        .ok()
        .and_then(|v| {
            if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse().ok()
            }
        })
        .unwrap_or(default)
}
