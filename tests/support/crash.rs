//! Shared machinery for the crash-schedule explorer: run a workload once
//! against a `SimVfs`, then reconstruct and recover the durable image at
//! every crash point.
//!
//! The flow (DESIGN.md §13):
//!
//! 1. Drive a workload against `Store::open_with_vfs(..., SimVfs)`. The
//!    simulator records every operation; fsync/rename/remove events are
//!    *durable sites*. After each durability confirmation (an `Always`
//!    apply or an explicit `sync()` returning `Ok`), the workload records
//!    the current site count — the point after which that batch may never
//!    be lost.
//! 2. For each site `k` and each [`CrashStyle`], reconstruct the durable
//!    image a crash there would leave ([`durable_image_at`]) — a pure
//!    replay of the event log, no re-execution.
//! 3. Materialize the image into a real directory and recover it with the
//!    production `Store::open`, then check the recovery invariant: the
//!    recovered history is a gapless prefix of the applied batches, every
//!    batch is atomic across trees, and every batch confirmed durable by
//!    site `k` is present.

// Shared by several test binaries; each uses a different slice of the API.
#![allow(dead_code)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use softwareputation::storage::{
    CrashStyle, DurabilityMode, SimVfs, Store, StoreOptions, VfsEvent, WriteBatch,
};

/// Two trees every canonical batch straddles, so a half-applied batch is
/// observable as a key present in one tree but not the other.
pub const TREE_A: &str = "crash_a";
/// See [`TREE_A`].
pub const TREE_B: &str = "crash_b";

/// One recorded run of a workload against a `SimVfs`.
pub struct Recording {
    /// The full event log.
    pub log: Vec<VfsEvent>,
    /// Total durable sites in `log`.
    pub sites: usize,
    /// For batch `i` (0-based), the durable-site count at the moment its
    /// durability was confirmed to the caller.
    pub confirmed_at: Vec<usize>,
    /// Batches the workload applied (batch `i` = `batch_key(i)` in both
    /// trees).
    pub total_batches: usize,
}

/// Key of canonical batch `i`.
pub fn batch_key(i: usize) -> Vec<u8> {
    format!("key-{i:04}").into_bytes()
}

/// Value of canonical batch `i`.
pub fn batch_value(i: usize) -> Vec<u8> {
    format!("value-{i:04}").into_bytes()
}

/// The canonical workload: `total` two-tree batches in `Always` mode
/// (every apply returns durably confirmed), with compactions interleaved
/// at the given batch indices so the log covers WAL rotation, snapshot
/// write/rename, and `WAL.old` retirement — not just appends and fsyncs.
pub fn record_canonical_workload(total: usize, compact_after: &[usize]) -> Recording {
    let vfs = SimVfs::new();
    let store = Store::open_with_vfs(
        "/sim/crash-store",
        StoreOptions { durability: DurabilityMode::Always, shards: 4 },
        Arc::new(vfs.clone()),
    )
    .expect("open sim store");
    let mut confirmed_at = Vec::with_capacity(total);
    for i in 0..total {
        let mut batch = WriteBatch::new();
        batch.put(TREE_A, batch_key(i), batch_value(i));
        batch.put(TREE_B, batch_key(i), batch_value(i));
        store.apply(&batch).expect("apply canonical batch");
        // `Always` mode: the batch is group-commit durable when apply
        // returns, so a crash after the *current* site count may never
        // lose it.
        confirmed_at.push(vfs.durable_site_count());
        if compact_after.contains(&i) {
            store.compact().expect("compact");
        }
    }
    store.sync().expect("final sync");
    drop(store);
    Recording {
        log: vfs.event_log(),
        sites: vfs.durable_site_count(),
        confirmed_at,
        total_batches: total,
    }
}

/// Write a reconstructed durable image into a real directory (store files
/// are flat, so mapping by file name is exact).
pub fn materialize(image: &BTreeMap<PathBuf, Vec<u8>>, dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create materialization dir");
    for (path, bytes) in image {
        let name = path.file_name().expect("image paths have file names");
        std::fs::write(dir.join(name), bytes).expect("write image file");
    }
}

/// Recover the materialized image at `dir` with the production open path
/// and assert the recovery invariant for a crash after `k` durable sites.
/// Returns the number of recovered batches.
///
/// Invariant: the recovered state is `batch 0..n` for some `n` — gapless
/// (no batch present while an earlier one is missing), atomic (each batch
/// fully in both trees or in neither), and complete (`n` covers every
/// batch whose durability was confirmed at or before site `k`).
pub fn check_recovery(dir: &Path, rec: &Recording, k: usize, label: &str) -> usize {
    let store = Store::open(dir).unwrap_or_else(|e| panic!("recovery failed at {label}: {e}"));
    let mut n = 0usize;
    for i in 0..rec.total_batches {
        let a = store.get(TREE_A, &batch_key(i));
        let b = store.get(TREE_B, &batch_key(i));
        match (a, b) {
            (Some(av), Some(bv)) => {
                assert_eq!(av, batch_value(i), "{label}: batch {i} value corrupted in {TREE_A}");
                assert_eq!(bv, batch_value(i), "{label}: batch {i} value corrupted in {TREE_B}");
                assert_eq!(
                    n, i,
                    "{label}: gap in recovered history — batch {i} present, batch {n} missing"
                );
                n += 1;
            }
            (None, None) => {}
            (a, b) => panic!(
                "{label}: half-applied batch {i}: present in {TREE_A}={} {TREE_B}={}",
                a.is_some(),
                b.is_some()
            ),
        }
    }
    let required = rec.confirmed_at.iter().filter(|&&site| site <= k).count();
    assert!(
        n >= required,
        "{label}: lost committed batches — {n} recovered but {required} were confirmed \
         durable by site {k}"
    );
    assert_eq!(store.tree_len(TREE_A), n, "{label}: stray keys in {TREE_A}");
    assert_eq!(store.tree_len(TREE_B), n, "{label}: stray keys in {TREE_B}");
    drop(store);
    // Recovery must be idempotent: a second open (another crash before any
    // new writes) sees the same history.
    let store = Store::open(dir).unwrap_or_else(|e| panic!("re-recovery failed at {label}: {e}"));
    assert_eq!(store.tree_len(TREE_A), n, "{label}: second recovery diverged");
    n
}

/// Human label for a crash point: which site, which style, and what the
/// next durable event would have been.
pub fn site_label(rec: &Recording, k: usize, style: CrashStyle) -> String {
    let next = rec
        .log
        .iter()
        .filter(|e| e.is_durable_site())
        .nth(k)
        .map_or_else(|| "end of workload".to_string(), VfsEvent::label);
    format!("site {k}/{} (next durable op: {next}) style {style:?}", rec.sites)
}
