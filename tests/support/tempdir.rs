//! Scope-guard temporary directory for integration tests.
//!
//! The old per-test `tempdir()` helpers leaked their directory on success
//! (cleanup relied on a `remove_dir_all` at the end of each test, skipped
//! whenever an assert fired first — and also whenever the test simply
//! returned early). This guard inverts that: the directory is removed on
//! drop **unless the test is panicking**, so passing runs leave nothing
//! behind while failures keep their store directory for post-mortem.

// Shared by several test binaries; each uses a different slice of the API.
#![allow(dead_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely-named directory under the system temp root, removed on drop
/// when the owning test passes.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `softrep-it-<tag>-<pid>-<n>` (the counter keeps concurrent
    /// tests in one binary from colliding on a shared tag).
    pub fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("softrep-it-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Keep the evidence; the path is deterministic enough to find.
            eprintln!("test failed; keeping {} for inspection", self.path.display());
        } else {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}
