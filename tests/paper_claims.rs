//! One integration test per headline claim of the paper, each running the
//! corresponding experiment at quick scale and asserting the claim's
//! *shape* (who wins, in which direction) — the contract EXPERIMENTS.md
//! records at full scale.

use softwareputation::sim::experiments::*;

#[test]
fn claim_table1_nine_cell_classification_is_total() {
    // §1.1/Table 1: every program lands in exactly one of nine named cells.
    let r = t1_taxonomy::run(&t1_taxonomy::Config::quick());
    assert_eq!(r.cell_counts.iter().sum::<usize>(), 200);
    let (l, s, m) = r.group_counts;
    assert_eq!(l + s + m, 200);
    assert!(s > 0, "the grey zone exists");
}

#[test]
fn claim_table2_reputation_collapses_the_grey_zone() {
    // §4.1/Table 2: covered medium-consent software resolves to high or
    // low consent; nothing is lost.
    let r = t2_transform::run(&t2_transform::Config::quick());
    let medium_before: usize = r.before[3..6].iter().sum();
    let medium_after: usize = r.after[3..6].iter().sum();
    assert!(medium_after < medium_before);
    assert_eq!(r.before.iter().sum::<usize>(), r.after.iter().sum::<usize>());
}

#[test]
fn claim_bootstrapping_fixes_the_budding_phase() {
    // §2.1: bootstrapping ensures "no common program has few or zero
    // votes" from day one.
    let r = d1_coldstart::run(&d1_coldstart::Config::quick());
    assert!(r.bootstrapped.coverage[0] > r.plain.coverage[0]);
}

#[test]
fn claim_trust_weighting_tips_the_balance() {
    // §2.1: experienced users' opinions "carry a higher weight, tipping
    // the balance in a more correct direction".
    let r = d2_trust_weighting::run(&d2_trust_weighting::Config::quick());
    let heavy = r.points.last().unwrap();
    assert!(heavy.expert_trust > heavy.ignorant_trust);
    assert!(heavy.mae_weighted.unwrap() <= heavy.mae_unweighted.unwrap() + 0.05);
}

#[test]
fn claim_registration_costs_blunt_sybil_attacks() {
    // §2.1/§5: one-vote + e-mail dedup + puzzles bound what an attacker
    // can do.
    let r = d3_attacks::run(&d3_attacks::Config::quick());
    assert!(r.arms[1].accounts < r.arms[0].accounts, "dedup caps accounts");
    assert!(r.arms[2].hash_cost > 0, "puzzles charge for what remains");
    assert_eq!(r.flood.2, 1, "vote flooding leaves exactly one ballot");
}

#[test]
fn claim_trust_cap_schedule_matches_section_3_2() {
    // §3.2: max 5/week, ceiling 100, newcomers weigh 1.
    let r = d4_trust_growth::run(&d4_trust_growth::Config::quick());
    for s in &r.samples {
        assert!(s.expert <= 1.0 + 5.0 * (s.week as f64 + 1.0));
    }
    assert!(r.samples.last().unwrap().attacker_share < r.samples[0].attacker_share);
}

#[test]
fn claim_prompt_policy_minimises_interruption() {
    // §3.1: the 50-execution threshold + 2/week cap keeps interruptions
    // bounded.
    let r = d5_interruption::run(&d5_interruption::Config::quick());
    for p in &r.grid {
        assert!(p.prompts_per_week <= f64::from(p.cap));
    }
}

#[test]
fn claim_reputation_penetrates_the_grey_zone_av_cannot() {
    // §4.3: AV is blind to (or sued out of) the grey zone; the reputation
    // system covers it.
    let r = d6_baseline::run(&d6_baseline::Config::quick());
    assert_eq!(r.av_conservative.spyware, 0.0);
    assert!(r.reputation.spyware > 0.0);
    assert!(r.av_conservative.malware > 0.9);
}

#[test]
fn claim_vendor_aggregation_defeats_polymorphism() {
    // §3.3: per-version ratings dilute; vendor-level ratings do not.
    let r = d7_identity::run(&d7_identity::Config::quick());
    let last = r.points.last().unwrap();
    assert!(last.vendor_rating.is_some());
    assert!(r.stripped_flagged);
}

#[test]
fn claim_stored_data_puts_no_user_at_risk() {
    // §2.2/§3.2: "it is impossible to directly or indirectly associate
    // this data with a particular host".
    let r = d8_privacy::run(&d8_privacy::Config::quick());
    assert_eq!(r.email_recovery.2, 0.0);
    assert_eq!(r.host_linkage.1, 0.0);
    assert_eq!(r.mix_client_exposure, 0.0);
}

#[test]
fn claim_policies_lower_the_need_for_user_interaction() {
    // §4.2: signatures + policies "considerably lower the need for user
    // interaction" while improving protection over no client at all.
    let r = d9_policy::run(&d9_policy::Config::quick());
    let baseline = &r.arms[0];
    let strict = r.arms.last().unwrap();
    assert_eq!(baseline.pis_ran, 1.0);
    assert!(strict.pis_ran < 0.5);
    assert_eq!(strict.dialog_rate, 0.0);
    let (without, with) = r.crashes;
    assert!(without > 0 && with == 0, "the white list prevents the §4.2 crash");
}
