//! Property-test harness: the incremental aggregation engine is
//! behaviourally equivalent to the paper's full 24 h batch.
//!
//! Each case replays one random workload (votes, comments, remarks, trust
//! adjustments, moderation, time advances) against two databases in
//! lockstep — one aggregating incrementally, one with the paper-faithful
//! full scan — and asserts their entire rating tables agree bit-for-bit
//! (modulo `computed_at`, which the full path restamps on clean titles) at
//! every batch.
//!
//! Knobs (see `tests/support/prop.rs`):
//! * `SOFTREP_PROP_CASES` — number of random workloads (default 200).
//! * `SOFTREP_PROP_SEED` — base seed; failures print the exact seed and a
//!   shrunk counterexample so every report is replayable.

#[path = "support/prop.rs"]
mod prop;

use prop::{base_seed, case_count, gen_workload, run_equivalence_case, shrink, SplitMix64, USERS};
use softrep_core::aggregate::weighted_mean;
use softrep_core::clock::Timestamp;
use softrep_core::trust::{TrustEngine, MAX_TRUST, MIN_TRUST, WEEKLY_TRUST_GROWTH_CAP};

#[test]
fn incremental_aggregation_equals_full_batch_on_random_workloads() {
    let cases = case_count(200);
    let base = base_seed(0x5eed_cafe);
    for case in 0..cases {
        let seed = base.wrapping_add(case as u64);
        let mut rng = SplitMix64::new(seed);
        let len = (rng.below(80) + 20) as usize;
        let ops = gen_workload(&mut rng, len);
        if let Some(diff) = run_equivalence_case(seed, &ops) {
            // Shrink before reporting: greedy chunk removal while the
            // divergence persists.
            let minimized =
                shrink(ops, |candidate| run_equivalence_case(seed, candidate).is_some());
            let final_diff = run_equivalence_case(seed, &minimized)
                .unwrap_or_else(|| "divergence vanished during shrinking".to_string());
            panic!(
                "incremental/full divergence (replay with SOFTREP_PROP_SEED={seed} \
                 SOFTREP_PROP_CASES=1)\nfirst failure: {diff}\n\
                 minimized to {} ops: {minimized:#?}\nminimized failure: {final_diff}",
                minimized.len(),
            );
        }
    }
}

#[test]
fn weighted_mean_stays_in_score_bounds_and_is_none_iff_weightless() {
    let mut rng = SplitMix64::new(base_seed(0xab5_0b57));
    for _ in 0..case_count(200) {
        let n = rng.below(30) as usize;
        let pairs: Vec<(u8, f64)> = (0..n)
            .map(|_| {
                let score = (rng.below(10) + 1) as u8;
                // Mix zero weights in: they must contribute nothing.
                let weight =
                    if rng.chance(20) { 0.0 } else { rng.below(10_000) as f64 / 100.0 + 0.01 };
                (score, weight)
            })
            .collect();
        let any_weight = pairs.iter().any(|(_, w)| *w > 0.0);
        match weighted_mean(pairs.iter().copied()) {
            None => assert!(!any_weight, "None only when no positive weight exists: {pairs:?}"),
            Some(mean) => {
                assert!(any_weight);
                assert!(
                    (1.0..=10.0).contains(&mean),
                    "mean {mean} outside score bounds for {pairs:?}"
                );
            }
        }
    }
}

#[test]
fn trust_engine_respects_clamp_and_weekly_cap_under_random_deltas() {
    let mut rng = SplitMix64::new(base_seed(0x0720_57ee));
    for _ in 0..case_count(200) {
        let mut record = TrustEngine::new_user(USERS[0], Timestamp(0));
        let mut now = Timestamp(0);
        let mut week_start_trust = record.trust;
        let mut current_week = now.week_index();
        for _ in 0..rng.below(60) {
            // Deltas in −5.0 .. +7.0, half-point steps; jumps of 0–10 days.
            let delta = rng.below(25) as f64 * 0.5 - 5.0;
            now = Timestamp(now.0 + rng.below(10) * 86_400);
            if now.week_index() != current_week {
                current_week = now.week_index();
                week_start_trust = record.trust;
            }
            let before = record.trust;
            let applied = TrustEngine::apply_delta(&mut record, delta, now);
            assert!(
                (MIN_TRUST..=MAX_TRUST).contains(&record.trust),
                "trust {} escaped [{MIN_TRUST}, {MAX_TRUST}]",
                record.trust
            );
            assert!(
                (record.trust - before - applied).abs() < 1e-9,
                "apply_delta return value must equal the actual change"
            );
            assert!(
                record.trust - week_start_trust <= WEEKLY_TRUST_GROWTH_CAP + 1e-9,
                "weekly growth {} exceeds the +{WEEKLY_TRUST_GROWTH_CAP} cap",
                record.trust - week_start_trust
            );
        }
    }
}

#[test]
fn max_reachable_is_monotone_and_clamped() {
    let mut previous = 0.0;
    for weeks in 0..200 {
        let reachable = TrustEngine::max_reachable(weeks);
        assert!(reachable >= previous, "max_reachable must be monotone in account age");
        assert!(reachable <= MAX_TRUST);
        previous = reachable;
    }
    // Long-lived accounts saturate at the ceiling.
    assert_eq!(TrustEngine::max_reachable(10_000), MAX_TRUST);
    // Sanity: the constant relationship from the paper's model — one week
    // of membership buys at most one cap's worth of growth.
    assert!(TrustEngine::max_reachable(1) <= MIN_TRUST + 2.0 * WEEKLY_TRUST_GROWTH_CAP);
}
