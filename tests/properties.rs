//! Property-test harness: the incremental aggregation engine is
//! behaviourally equivalent to the paper's full 24 h batch.
//!
//! Each case replays one random workload (votes, comments, remarks, trust
//! adjustments, moderation, time advances) against two databases in
//! lockstep — one aggregating incrementally, one with the paper-faithful
//! full scan — and asserts their entire rating tables agree bit-for-bit
//! (modulo `computed_at`, which the full path restamps on clean titles) at
//! every batch.
//!
//! Knobs (see `tests/support/prop.rs`):
//! * `SOFTREP_PROP_CASES` — number of random workloads (default 200).
//! * `SOFTREP_PROP_SEED` — base seed; failures print the exact seed and a
//!   shrunk counterexample so every report is replayable.

#[path = "support/prop.rs"]
mod prop;

use prop::{base_seed, case_count, gen_workload, run_equivalence_case, shrink, SplitMix64, USERS};
use softrep_core::aggregate::weighted_mean;
use softrep_core::clock::Timestamp;
use softrep_core::trust::{TrustEngine, MAX_TRUST, MIN_TRUST, WEEKLY_TRUST_GROWTH_CAP};

#[test]
fn incremental_aggregation_equals_full_batch_on_random_workloads() {
    let cases = case_count(200);
    let base = base_seed(0x5eed_cafe);
    for case in 0..cases {
        let seed = base.wrapping_add(case as u64);
        let mut rng = SplitMix64::new(seed);
        let len = (rng.below(80) + 20) as usize;
        let ops = gen_workload(&mut rng, len);
        if let Some(diff) = run_equivalence_case(seed, &ops) {
            // Shrink before reporting: greedy chunk removal while the
            // divergence persists.
            let minimized =
                shrink(ops, |candidate| run_equivalence_case(seed, candidate).is_some());
            let final_diff = run_equivalence_case(seed, &minimized)
                .unwrap_or_else(|| "divergence vanished during shrinking".to_string());
            panic!(
                "incremental/full divergence (replay with SOFTREP_PROP_SEED={seed} \
                 SOFTREP_PROP_CASES=1)\nfirst failure: {diff}\n\
                 minimized to {} ops: {minimized:#?}\nminimized failure: {final_diff}",
                minimized.len(),
            );
        }
    }
}

#[test]
fn weighted_mean_stays_in_score_bounds_and_is_none_iff_weightless() {
    let mut rng = SplitMix64::new(base_seed(0xab5_0b57));
    for _ in 0..case_count(200) {
        let n = rng.below(30) as usize;
        let pairs: Vec<(u8, f64)> = (0..n)
            .map(|_| {
                let score = (rng.below(10) + 1) as u8;
                // Mix zero weights in: they must contribute nothing.
                let weight =
                    if rng.chance(20) { 0.0 } else { rng.below(10_000) as f64 / 100.0 + 0.01 };
                (score, weight)
            })
            .collect();
        let any_weight = pairs.iter().any(|(_, w)| *w > 0.0);
        match weighted_mean(pairs.iter().copied()) {
            None => assert!(!any_weight, "None only when no positive weight exists: {pairs:?}"),
            Some(mean) => {
                assert!(any_weight);
                assert!(
                    (1.0..=10.0).contains(&mean),
                    "mean {mean} outside score bounds for {pairs:?}"
                );
            }
        }
    }
}

#[test]
fn trust_engine_respects_clamp_and_weekly_cap_under_random_deltas() {
    let mut rng = SplitMix64::new(base_seed(0x0720_57ee));
    for _ in 0..case_count(200) {
        let mut record = TrustEngine::new_user(USERS[0], Timestamp(0));
        let mut now = Timestamp(0);
        let mut week_start_trust = record.trust;
        let mut current_week = now.week_index();
        for _ in 0..rng.below(60) {
            // Deltas in −5.0 .. +7.0, half-point steps; jumps of 0–10 days.
            let delta = rng.below(25) as f64 * 0.5 - 5.0;
            now = Timestamp(now.0 + rng.below(10) * 86_400);
            if now.week_index() != current_week {
                current_week = now.week_index();
                week_start_trust = record.trust;
            }
            let before = record.trust;
            let applied = TrustEngine::apply_delta(&mut record, delta, now);
            assert!(
                (MIN_TRUST..=MAX_TRUST).contains(&record.trust),
                "trust {} escaped [{MIN_TRUST}, {MAX_TRUST}]",
                record.trust
            );
            assert!(
                (record.trust - before - applied).abs() < 1e-9,
                "apply_delta return value must equal the actual change"
            );
            assert!(
                record.trust - week_start_trust <= WEEKLY_TRUST_GROWTH_CAP + 1e-9,
                "weekly growth {} exceeds the +{WEEKLY_TRUST_GROWTH_CAP} cap",
                record.trust - week_start_trust
            );
        }
    }
}

#[test]
fn max_reachable_is_monotone_and_clamped() {
    let mut previous = 0.0;
    for weeks in 0..200 {
        let reachable = TrustEngine::max_reachable(weeks);
        assert!(reachable >= previous, "max_reachable must be monotone in account age");
        assert!(reachable <= MAX_TRUST);
        previous = reachable;
    }
    // Long-lived accounts saturate at the ceiling.
    assert_eq!(TrustEngine::max_reachable(10_000), MAX_TRUST);
    // Sanity: the constant relationship from the paper's model — one week
    // of membership buys at most one cap's worth of growth.
    assert!(TrustEngine::max_reachable(1) <= MIN_TRUST + 2.0 * WEEKLY_TRUST_GROWTH_CAP);
}

// ---------------------------------------------------------------------
// Observability histogram (crates/obs): the log-linear histogram must
// classify *arbitrary* u64 samples without losing any, keep its bucket
// walk monotone, bound every quantile it reports, and merge like the
// commutative monoid the sharded exposition assumes it is.
// ---------------------------------------------------------------------

/// A u64 with a random magnitude: raw 64-bit draws alone almost never
/// exercise the low buckets, so shift by a random amount first.
fn arbitrary_sample(rng: &mut SplitMix64) -> u64 {
    let shift = rng.below(64) as u32;
    rng.next_u64() >> shift
}

#[test]
fn histogram_buckets_are_monotone_and_lose_no_samples() {
    use softrep_obs::{Histogram, HistogramSnapshot};
    let base = base_seed(0x0b5_0001);
    for case in 0..case_count(200) {
        let mut rng = SplitMix64::new(base.wrapping_add(case as u64));
        let n = (rng.below(200) + 1) as usize;
        let hist = Histogram::new();
        let mut expected_sum = 0u64;
        let mut max = 0u64;
        for _ in 0..n {
            let v = arbitrary_sample(&mut rng);
            expected_sum = expected_sum.wrapping_add(v);
            max = max.max(v);
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count() as usize, n, "samples lost or double-counted");
        assert_eq!(snap.sum(), expected_sum, "sum drifted from the samples");
        // The cumulative walk is sorted by bound and non-decreasing in
        // count, ends exactly at n, and every sample's bucket bound holds
        // the sample (bound_of(v) >= v — the readout never understates).
        let walk = snap.cumulative_buckets();
        for pair in walk.windows(2) {
            assert!(pair[0].0 < pair[1].0, "bucket bounds out of order: {walk:?}");
            assert!(pair[0].1 <= pair[1].1, "cumulative count decreased: {walk:?}");
        }
        assert_eq!(walk.last().map(|&(_, c)| c), Some(n as u64));
        assert!(HistogramSnapshot::bound_of(max) >= max);
    }
}

#[test]
fn histogram_quantiles_bound_the_true_order_statistics() {
    use softrep_obs::{Histogram, HistogramSnapshot};
    let base = base_seed(0x0b5_0002);
    for case in 0..case_count(200) {
        let mut rng = SplitMix64::new(base.wrapping_add(case as u64));
        let n = (rng.below(300) + 1) as usize;
        let hist = Histogram::new();
        let mut samples: Vec<u64> = Vec::with_capacity(n);
        for _ in 0..n {
            let v = arbitrary_sample(&mut rng);
            samples.push(v);
            hist.record(v);
        }
        samples.sort_unstable();
        let snap = hist.snapshot();
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n as u64) as usize;
            let true_value = samples[rank - 1];
            let reported = snap.quantile(q);
            // The readout is the upper bound of the bucket holding the
            // rank-th sample: never below the true order statistic, and
            // no looser than that bucket's own bound.
            assert!(
                reported >= true_value,
                "q={q}: reported {reported} < true {true_value} (seed case {case})"
            );
            assert!(
                reported <= HistogramSnapshot::bound_of(true_value),
                "q={q}: reported {reported} overshoots the bucket bound of {true_value}"
            );
        }
        // Degenerate q is clamped, not misread.
        assert_eq!(snap.quantile(-1.0), snap.quantile(0.0));
        assert_eq!(snap.quantile(2.0), snap.quantile(1.0));
    }
}

#[test]
fn histogram_merge_is_associative_commutative_with_identity() {
    use softrep_obs::{Histogram, HistogramSnapshot};
    let base = base_seed(0x0b5_0003);
    for case in 0..case_count(200) {
        let mut rng = SplitMix64::new(base.wrapping_add(case as u64));
        let shard = |rng: &mut SplitMix64| {
            let hist = Histogram::new();
            for _ in 0..rng.below(60) {
                hist.record(arbitrary_sample(rng));
            }
            hist.snapshot()
        };
        let (a, b, c) = (shard(&mut rng), shard(&mut rng), shard(&mut rng));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)), "merge is not associative");
        assert_eq!(a.merge(&b), b.merge(&a), "merge is not commutative");
        let empty = HistogramSnapshot::empty();
        assert_eq!(a.merge(&empty), a, "empty is not a right identity");
        assert_eq!(empty.merge(&a), a, "empty is not a left identity");
        // Merging is lossless: totals add up.
        let merged = a.merge(&b);
        assert_eq!(merged.count(), a.count() + b.count());
    }
}

// ---------------------------------------------------------------------
// Crash-recovery property: single-fault schedules (DESIGN.md §13)
// ---------------------------------------------------------------------

/// Random workloads under random single-fault `SimVfs` schedules: every
/// storage operation either succeeds or returns a typed error (the fault
/// never panics), and reopening the durable image after a crash at a
/// random point recovers a gapless, batch-atomic prefix containing every
/// batch whose apply was confirmed durable before the crash.
#[test]
fn single_fault_crash_schedules_recover_every_committed_batch() {
    use std::sync::Arc;

    use softwareputation::storage::failpoint::FailAction;
    use softwareputation::storage::{
        durable_image_at, CrashStyle, DurabilityMode, Fault, SimVfs, Store, StoreOptions,
        WriteBatch,
    };

    #[path = "support/tempdir.rs"]
    mod tempdir;
    use tempdir::TempDir;

    const TREE_A: &str = "prop_a";
    const TREE_B: &str = "prop_b";
    const SITES: [&str; 6] =
        ["vfs.append", "vfs.sync", "vfs.write", "vfs.rename", "vfs.remove", "vfs.create"];

    let key = |i: u64| format!("key-{i:04}").into_bytes();
    let value = |i: u64| format!("value-{i:04}").into_bytes();

    let cases = case_count(60);
    let base = base_seed(0xfa17_c4a5);
    let dir = TempDir::new("prop-crash");
    for case in 0..cases {
        let seed = base.wrapping_add(case as u64);
        let mut rng = SplitMix64::new(seed);
        let ctx = |detail: &str| {
            format!(
                "case {case} (replay with SOFTREP_PROP_SEED={seed} SOFTREP_PROP_CASES=1): {detail}"
            )
        };

        // One fault, armed after open so the initial recovery is clean.
        let site = SITES[rng.below(SITES.len() as u64) as usize];
        let fault = if rng.chance(50) { Fault::Torn } else { Fault::Err };
        let trigger = rng.below(14);

        let vfs = SimVfs::new();
        let store = Store::open_with_vfs(
            "/sim/prop-crash",
            StoreOptions { durability: DurabilityMode::Always, shards: 2 },
            Arc::new(vfs.clone()),
        )
        .unwrap_or_else(|e| panic!("{}", ctx(&format!("pristine open failed: {e}"))));
        vfs.failpoints().set(site, FailAction::Nth(fault, trigger));

        // Random workload: numbered two-tree batches with syncs and
        // compactions mixed in. Everything may fail (typed) once the
        // fault trips; committed = the applies that returned Ok.
        let batches = rng.below(14) + 6;
        let mut committed_at: Vec<(u64, usize)> = Vec::new();
        for i in 0..batches {
            let mut batch = WriteBatch::new();
            batch.put(TREE_A, key(i), value(i));
            batch.put(TREE_B, key(i), value(i));
            if store.apply(&batch).is_ok() {
                // `Always` mode: Ok means group-commit durable.
                committed_at.push((i, vfs.durable_site_count()));
            }
            if rng.chance(15) {
                let _ = store.sync();
            }
            if rng.chance(15) {
                let _ = store.compact();
            }
        }
        drop(store);

        // Crash at a random durable site with a random style, or at the
        // very end (every durable site applied).
        let log = vfs.event_log();
        let sites = vfs.durable_site_count();
        let k = rng.below(sites as u64 + 1) as usize;
        let style = match rng.below(3) {
            0 => CrashStyle::DurableOnly,
            1 => CrashStyle::TornHalf,
            _ => CrashStyle::AllPending,
        };
        let image = durable_image_at(&log, k, style);

        let _ = std::fs::remove_dir_all(dir.path());
        std::fs::create_dir_all(dir.path()).expect("recreate materialization dir");
        for (path, bytes) in &image {
            let name = path.file_name().expect("image paths have file names");
            std::fs::write(dir.path().join(name), bytes).expect("write image file");
        }

        let detail =
            format!("fault {site}={fault:?}@{trigger}, crash at site {k}/{sites} style {style:?}");
        let store = Store::open(dir.path())
            .unwrap_or_else(|e| panic!("{}", ctx(&format!("{detail}: recovery failed: {e}"))));
        let mut recovered = 0u64;
        for i in 0..batches {
            match (store.get(TREE_A, &key(i)), store.get(TREE_B, &key(i))) {
                (Some(av), Some(bv)) => {
                    assert_eq!(av, value(i), "{}", ctx(&format!("{detail}: batch {i} corrupt")));
                    assert_eq!(bv, value(i), "{}", ctx(&format!("{detail}: batch {i} corrupt")));
                    assert_eq!(recovered, i, "{}", ctx(&format!("{detail}: gap before batch {i}")));
                    recovered += 1;
                }
                (None, None) => {}
                (a, b) => panic!(
                    "{}",
                    ctx(&format!(
                        "{detail}: half-applied batch {i} ({TREE_A}={} {TREE_B}={})",
                        a.is_some(),
                        b.is_some()
                    ))
                ),
            }
        }
        let required = committed_at.iter().filter(|&&(_, at)| at <= k).count() as u64;
        assert!(
            recovered >= required,
            "{}",
            ctx(&format!(
                "{detail}: lost committed batches — {recovered} recovered, {required} required"
            ))
        );
    }
}

// ---------------------------------------------------------------------
// Replication property: gapless applied prefix (DESIGN.md §15)
// ---------------------------------------------------------------------

/// Random primary workloads tailed under random kill/reconnect schedules:
/// pages cut mid-apply (a killed replica), stale resubscribes (a lost
/// response redelivered), replica and primary reopens, and compactions
/// forcing snapshot bootstraps. After every step the replica's applied
/// watermark `w` must identify a **gapless prefix**: its user-visible
/// contents equal the fold of the primary's committed batches `1..=w`,
/// `w` never exceeds the primary's committed sequence, and never
/// regresses. At quiesce the replica drains to full byte equality.
#[test]
fn replica_watermark_is_always_a_gapless_prefix_under_random_schedules() {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use softwareputation::storage::replication::{
        applied_watermark, apply_replicated, install_snapshot,
    };
    use softwareputation::storage::{
        DurabilityMode, ReplRead, SimVfs, Store, StoreOptions, WriteBatch,
    };

    /// One committed primary batch, mirrored test-side so the expected
    /// replica state at any watermark can be refolded exactly.
    type Op = (String, Vec<u8>, Option<Vec<u8>>);

    fn open(vfs: &SimVfs, path: &str) -> Store {
        Store::open_with_vfs(
            path,
            StoreOptions { durability: DurabilityMode::Os, shards: 2 },
            Arc::new(vfs.clone()),
        )
        .expect("sim open")
    }

    /// The replica's user-visible contents as a flat map.
    fn contents(store: &Store) -> BTreeMap<(String, Vec<u8>), Vec<u8>> {
        let mut map = BTreeMap::new();
        for name in store.tree_names() {
            if name.starts_with("__repl") {
                continue;
            }
            for (key, value) in store.scan_all(&name) {
                map.insert((name.clone(), key), value);
            }
        }
        map
    }

    /// The expected contents after applying committed batches `1..=w`.
    fn fold(log: &[Vec<Op>], w: u64) -> BTreeMap<(String, Vec<u8>), Vec<u8>> {
        let mut map = BTreeMap::new();
        for ops in log.iter().take(w as usize) {
            for (tree, key, value) in ops {
                match value {
                    Some(v) => {
                        map.insert((tree.clone(), key.clone()), v.clone());
                    }
                    None => {
                        map.remove(&(tree.clone(), key.clone()));
                    }
                }
            }
        }
        map
    }

    let cases = case_count(40);
    let base = base_seed(0x9e91_ca7e);
    for case in 0..cases {
        let seed = base.wrapping_add(case as u64);
        let mut rng = SplitMix64::new(seed);
        let ctx = |step: usize, detail: &str| {
            format!(
                "case {case} step {step} (replay with SOFTREP_PROP_SEED={seed} \
                 SOFTREP_PROP_CASES=1): {detail}"
            )
        };

        let primary_vfs = SimVfs::new();
        let replica_vfs = SimVfs::new();
        let mut primary = open(&primary_vfs, "/sim/repl-prop-p");
        let mut replica = open(&replica_vfs, "/sim/repl-prop-r");

        // The committed log, mirrored op-for-op: log[i] is batch seq i+1.
        let mut log: Vec<Vec<Op>> = Vec::new();
        let mut writes = 0usize;

        let steps = (rng.below(60) + 40) as usize;
        for step in 0..steps {
            let w_before = applied_watermark(&replica);
            match rng.below(100) {
                // Mixed write on the primary (put / delete / multi-op).
                0..=44 => {
                    let tree = ["alpha", "beta", "gamma"][rng.below(3) as usize].to_string();
                    let key = format!("k{}", rng.below(40)).into_bytes();
                    let mut ops: Vec<Op> = Vec::new();
                    if rng.chance(20) && writes > 0 {
                        primary.delete(&tree, key.clone()).expect("delete");
                        ops.push((tree, key, None));
                    } else if rng.chance(15) {
                        let mut batch = WriteBatch::new();
                        for j in 0..(rng.below(4) + 2) {
                            let k = format!("k{}-{j}", rng.below(40)).into_bytes();
                            let v = vec![b'm'; (rng.below(60) + 1) as usize];
                            batch.put(&tree, k.clone(), v.clone());
                            ops.push((tree.clone(), k, Some(v)));
                        }
                        primary.apply(&batch).expect("apply");
                    } else {
                        let v = vec![b'v'; (rng.below(120) + 1) as usize];
                        primary.put(&tree, key.clone(), v.clone()).expect("put");
                        ops.push((tree, key, Some(v)));
                    }
                    log.push(ops);
                    writes += 1;
                }
                // Poll a page with random caps; apply a random prefix of
                // it (a kill mid-page leaves the rest undelivered).
                45..=69 => {
                    let w = applied_watermark(&replica);
                    let max_entries = (rng.below(6) + 1) as usize;
                    let max_bytes = [32usize, 256, 4096][rng.below(3) as usize];
                    match primary.replication_read(w, max_entries, max_bytes).expect("read") {
                        ReplRead::Entries { entries, .. } => {
                            let cut = if rng.chance(25) {
                                rng.below(entries.len().max(1) as u64) as usize
                            } else {
                                entries.len()
                            };
                            for e in entries.iter().take(cut) {
                                apply_replicated(&replica, e)
                                    .unwrap_or_else(|e| panic!("{}", ctx(step, &e.to_string())));
                            }
                        }
                        ReplRead::SnapshotNeeded { .. } => {
                            let (_, bytes) = primary.export_snapshot();
                            install_snapshot(&replica, &bytes)
                                .unwrap_or_else(|e| panic!("{}", ctx(step, &e.to_string())));
                        }
                    }
                }
                // Stale resubscribe: a lost response makes the replica
                // re-request from an old watermark; redelivered entries
                // at or below the real watermark must be skipped.
                70..=77 => {
                    let w = applied_watermark(&replica).saturating_sub(rng.below(5));
                    if let ReplRead::Entries { entries, .. } =
                        primary.replication_read(w, 8, 4096).expect("stale read")
                    {
                        for e in &entries {
                            apply_replicated(&replica, e)
                                .unwrap_or_else(|e| panic!("{}", ctx(step, &e.to_string())));
                        }
                    }
                }
                // Replica crash + recovery.
                78..=85 => {
                    drop(replica);
                    replica = open(&replica_vfs, "/sim/repl-prop-r");
                }
                // Primary crash + recovery (sequence numbering must
                // resume exactly).
                86..=92 => {
                    drop(primary);
                    primary = open(&primary_vfs, "/sim/repl-prop-p");
                    assert_eq!(
                        primary.committed_seq(),
                        log.len() as u64,
                        "{}",
                        ctx(step, "primary ledger diverged from the committed log on reopen")
                    );
                }
                // Primary compaction: retires the log suffix, so lagging
                // subscribers must be told to bootstrap.
                _ => {
                    primary.compact().expect("compact");
                }
            }

            // The invariant, after every step.
            let w = applied_watermark(&replica);
            assert!(
                w <= primary.committed_seq(),
                "{}",
                ctx(step, &format!("watermark {w} beyond committed {}", primary.committed_seq()))
            );
            assert!(
                w >= w_before || w_before == 0,
                "{}",
                ctx(step, &format!("watermark regressed {w_before} -> {w}"))
            );
            assert_eq!(
                contents(&replica),
                fold(&log, w),
                "{}",
                ctx(step, &format!("contents are not the gapless prefix 1..={w}"))
            );
        }

        // Quiesce: drain to full equality.
        let mut guard = 0;
        loop {
            let w = applied_watermark(&replica);
            if w == primary.committed_seq() {
                break;
            }
            guard += 1;
            assert!(guard < 10_000, "case {case} seed {seed}: drain did not converge");
            match primary.replication_read(w, 64, 1 << 20).expect("drain read") {
                ReplRead::Entries { entries, .. } => {
                    for e in &entries {
                        apply_replicated(&replica, e).expect("drain apply");
                    }
                }
                ReplRead::SnapshotNeeded { .. } => {
                    let (_, bytes) = primary.export_snapshot();
                    install_snapshot(&replica, &bytes).expect("drain install");
                }
            }
        }
        assert_eq!(
            primary.content_dump(),
            replica.content_dump(),
            "case {case} seed {seed}: stores must be byte-identical at quiesce"
        );
    }
}
