//! Concurrency integration: the server must stay consistent under
//! parallel clients — votes, queries, aggregations and registrations all
//! racing. (The deployment model is thread-per-connection, §3.2.)

use std::sync::Arc;

use softwareputation::core::clock::SimClock;
use softwareputation::core::db::ReputationDb;
use softwareputation::proto::{Request, Response};
use softwareputation::server::{ReputationServer, ServerConfig};

fn server() -> (Arc<ReputationServer>, SimClock) {
    let clock = SimClock::new();
    let server = Arc::new(ReputationServer::new(
        ReputationDb::in_memory("conc"),
        Arc::new(clock.clone()),
        ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            ..ServerConfig::default()
        },
        1,
    ));
    (server, clock)
}

fn join(server: &ReputationServer, name: &str) -> String {
    let Response::Registered { activation_token } = server.handle(
        &Request::Register {
            username: name.into(),
            password: "pw".into(),
            email: format!("{name}@c.example"),
            puzzle_challenge: String::new(),
            puzzle_solution: 0,
        },
        name,
    ) else {
        panic!("registration failed for {name}")
    };
    server.handle(&Request::Activate { username: name.into(), token: activation_token }, name);
    let Response::Session { token } =
        server.handle(&Request::Login { username: name.into(), password: "pw".into() }, name)
    else {
        panic!("login failed for {name}")
    };
    token
}

#[test]
fn parallel_voters_preserve_one_vote_per_user() {
    let (server, _clock) = server();
    let software: Vec<String> = (0..8).map(|i| format!("{i:040x}")).collect();
    for id in &software {
        server.handle(
            &Request::RegisterSoftware {
                software_id: id.clone(),
                file_name: "app.exe".into(),
                file_size: 1,
                company: None,
                version: None,
            },
            "seed",
        );
    }

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let server = Arc::clone(&server);
            let software = software.clone();
            std::thread::spawn(move || {
                let name = format!("voter{t}");
                let session = join(&server, &name);
                // Each voter re-votes on every program many times from its
                // own thread; replacements must never duplicate.
                for round in 0..20u8 {
                    for id in &software {
                        let resp = server.handle(
                            &Request::SubmitVote {
                                session: session.clone(),
                                software_id: id.clone(),
                                score: (round % 10) + 1,
                                behaviours: vec![],
                            },
                            &name,
                        );
                        assert_eq!(resp, Response::Ok);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Exactly 8 voters × 8 programs ballots, despite 160 submissions each.
    assert_eq!(server.db().vote_count(), 64);
    for id in &software {
        assert_eq!(server.db().votes_for(id).unwrap().len(), 8);
    }
}

#[test]
fn aggregation_races_with_writes_without_corruption() {
    let (server, clock) = server();
    let id = format!("{0:040x}", 7);
    server.handle(
        &Request::RegisterSoftware {
            software_id: id.clone(),
            file_name: "app.exe".into(),
            file_size: 1,
            company: None,
            version: None,
        },
        "seed",
    );
    let session = join(&server, "racer");

    let writer = {
        let server = Arc::clone(&server);
        let id = id.clone();
        std::thread::spawn(move || {
            for round in 0..200u32 {
                server.handle(
                    &Request::SubmitVote {
                        session: session.clone(),
                        software_id: id.clone(),
                        score: ((round % 10) + 1) as u8,
                        behaviours: vec![],
                    },
                    "racer",
                );
            }
        })
    };
    let aggregator = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            for _ in 0..50 {
                clock.advance_days(1);
                server.tick();
            }
        })
    };
    writer.join().unwrap();
    aggregator.join().unwrap();

    // Final state is consistent: one ballot, and a final aggregation
    // reflects exactly it.
    server.db().force_aggregation(server.now()).unwrap();
    let rating = server.db().rating(&id).unwrap().unwrap();
    assert_eq!(rating.vote_count, 1);
    let ballot = server.db().votes_for(&id).unwrap().remove(0);
    assert_eq!(rating.rating, f64::from(ballot.score));
}

#[test]
fn votes_racing_incremental_aggregation_are_never_dropped() {
    // The incremental engine's drain-before-read protocol guarantees that
    // a vote landing mid-recompute is folded into that batch or leaves its
    // dirty mark for the next one — never lost. Hammer the protocol:
    // voters and incremental batches race freely, then one final batch
    // must account for every ballot.
    let (server, _clock) = server();
    let software: Vec<String> = (0..4).map(|i| format!("{i:040x}")).collect();
    for id in &software {
        server.handle(
            &Request::RegisterSoftware {
                software_id: id.clone(),
                file_name: "app.exe".into(),
                file_size: 1,
                company: None,
                version: None,
            },
            "seed",
        );
    }

    let voters: Vec<_> = (0..4)
        .map(|t| {
            let server = Arc::clone(&server);
            let software = software.clone();
            std::thread::spawn(move || {
                let name = format!("racer{t}");
                let session = join(&server, &name);
                for round in 0..100u32 {
                    for id in &software {
                        server.handle(
                            &Request::SubmitVote {
                                session: session.clone(),
                                software_id: id.clone(),
                                score: ((round % 10) + 1) as u8,
                                behaviours: vec![],
                            },
                            &name,
                        );
                    }
                }
            })
        })
        .collect();
    let aggregator = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            for _ in 0..100 {
                server.db().force_aggregation_incremental(server.now()).unwrap();
            }
        })
    };
    for t in voters {
        t.join().unwrap();
    }
    aggregator.join().unwrap();

    // Every vote either made an earlier batch or is still marked dirty;
    // one final incremental batch settles the remainder, after which the
    // published ratings must match a from-scratch full recompute exactly.
    server.db().force_aggregation_incremental(server.now()).unwrap();
    assert_eq!(server.db().dirty_count(), 0, "no marks survive a quiescent batch");
    let incremental: Vec<_> = server
        .db()
        .ratings_snapshot()
        .unwrap()
        .into_iter()
        .map(|r| (r.software_id.clone(), r.content_bytes()))
        .collect();
    server.db().force_aggregation_full(server.now()).unwrap();
    let full: Vec<_> = server
        .db()
        .ratings_snapshot()
        .unwrap()
        .into_iter()
        .map(|r| (r.software_id.clone(), r.content_bytes()))
        .collect();
    assert_eq!(incremental, full, "a vote was dropped or double-counted");
    for id in &software {
        let rating = server.db().rating(id).unwrap().unwrap();
        assert_eq!(rating.vote_count, 4, "one ballot per racer survives re-voting");
    }
}

#[test]
fn parallel_registrations_never_duplicate_emails() {
    let (server, _clock) = server();
    // 8 threads race to register with only 4 distinct e-mail addresses;
    // exactly 4 must win.
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let resp = server.handle(
                    &Request::Register {
                        username: format!("dup{t}"),
                        password: "pw".into(),
                        email: format!("shared{}@c.example", t % 4),
                        puzzle_challenge: String::new(),
                        puzzle_solution: 0,
                    },
                    "race",
                );
                matches!(resp, Response::Registered { .. })
            })
        })
        .collect();
    let winners = threads.into_iter().map(|t| t.join().unwrap()).filter(|won| *won).count();
    assert_eq!(winners, 4, "exactly one registration per distinct address");
    assert_eq!(server.db().user_count(), 4);
}
