//! Golden-equivalence regression: a fixed 10 000-vote scenario whose
//! published ratings are pinned bit-for-bit.
//!
//! The scenario is fully deterministic (bootstrap-seeded votes, a few real
//! members with staggered trust, no randomness), so the aggregation output
//! must never change across refactors — neither for the paper-faithful
//! full batch nor for the incremental engine, and the two must agree with
//! each other. Expected ratings are stored as `f64::to_bits` so the check
//! is exact, not epsilon-based.
//!
//! Regenerate `EXPECTED` after an *intentional* semantic change with:
//! `SOFTREP_GOLDEN_REGEN=1 cargo test --test golden_aggregation -- --nocapture`

use std::sync::Arc;

use softrep_core::bootstrap::BootstrapEntry;
use softrep_core::clock::{Timestamp, DAY_SECS};
use softrep_core::db::ReputationDb;
use softrep_core::moderation::ModerationPolicy;
use softrep_crypto::salted::SecretPepper;
use softrep_storage::Store;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Titles in the scenario.
const TITLES: usize = 16;

/// `(software_id, rating.to_bits(), vote_count, trust_mass.to_bits())` for
/// every published rating, in key order.
const EXPECTED: &[(&str, u64, u64, u64)] = &[
    ("0000000000000000000000000000000000000000", 0x3ff0000000000000, 431, 0x40b0cd0000000000),
    ("0000000000000000000000000000000000000001", 0x40193304f76be886, 567, 0x40b6260000000000),
    ("0000000000000000000000000000000000000002", 0x4004c94fc2f3d3ab, 705, 0x40bb850000000000),
    ("0000000000000000000000000000000000000003", 0x401f98a9ac32c178, 842, 0x40c06e8000000000),
    ("0000000000000000000000000000000000000004", 0x4010ceaf4ea87416, 479, 0x40b2ad0000000000),
    ("0000000000000000000000000000000000000005", 0x4023006a9006a900, 615, 0x40b8060000000000),
    ("0000000000000000000000000000000000000006", 0x401735ebeda1159a, 753, 0x40bd650000000000),
    ("0000000000000000000000000000000000000007", 0x4000cda6ef1a2ac7, 890, 0x40c15e8000000000),
    ("0000000000000000000000000000000000000008", 0x401d98be5b93f994, 527, 0x40b48d0000000000),
    ("0000000000000000000000000000000000000009", 0x400d994a85994a86, 663, 0x40b9e60000000000),
    ("000000000000000000000000000000000000000a", 0x4021ff5c43287468, 801, 0x40bf450000000000),
    ("000000000000000000000000000000000000000b", 0x40152ff1f33cf0f4, 438, 0x40b1150000000000),
    ("000000000000000000000000000000000000000c", 0x3ff9992c03083fdb, 575, 0x40b66d0000000000),
    ("000000000000000000000000000000000000000d", 0x401b99be78424017, 711, 0x40bbc60000000000),
    ("000000000000000000000000000000000000000e", 0x40099cbcdea9423a, 849, 0x40c0928000000000),
    ("000000000000000000000000000000000000000f", 0x402100af8e0ee031, 486, 0x40b2f50000000000),
];

fn title(i: usize) -> String {
    format!("{i:040x}")
}

/// Build the scenario on a fresh database. Everything below is a pure
/// function of the constants — no RNG touches any persisted value (the
/// registration RNG only feeds password salts and activation tokens).
fn build(db: &ReputationDb) {
    let t0 = Timestamp(0);
    // ~10k bootstrap-seeded votes over 16 titles; imported ratings sweep
    // 1.0–9.9.
    let entries: Vec<BootstrapEntry> = (0..TITLES)
        .map(|i| BootstrapEntry {
            software_id: title(i),
            rating: 1.0 + ((i * 53) % 90) as f64 / 10.0,
            vote_count: (430 + (i * 137) % 500) as u32,
            behaviours: if i % 3 == 0 { vec!["tracking".to_string()] } else { vec![] },
        })
        .collect();
    let seeded = db.bootstrap(&entries, t0).expect("bootstrap succeeds");
    assert!(seeded >= 10_000, "scenario must carry at least 10k votes, got {seeded}");

    // Three real members with staggered trust re-rate a subset of titles,
    // so trust weighting actually shows in the golden numbers.
    let mut rng = StdRng::seed_from_u64(42);
    for (i, user) in ["gina", "harry", "irene"].iter().enumerate() {
        let token = db
            .register_user(user, "hunter2", &format!("{user}@example.test"), t0, &mut rng)
            .expect("member registers");
        db.activate_user(user, &token).expect("member activates");
        db.adjust_trust(user, 2.0 * i as f64, t0).expect("stagger trust");
        for t in 0..TITLES {
            if (t + i) % 4 == 0 {
                let score = 1 + ((t * 7 + i * 3) % 10) as u8;
                db.submit_vote(user, &title(t), score, vec![], Timestamp(100 + t as u64))
                    .expect("member votes");
            }
        }
    }
}

fn snapshot(db: &ReputationDb) -> Vec<(String, u64, u64, u64)> {
    db.ratings_snapshot()
        .expect("snapshot")
        .into_iter()
        .map(|r| (r.software_id, r.rating.to_bits(), r.vote_count, r.trust_mass.to_bits()))
        .collect()
}

#[test]
fn golden_scenario_ratings_are_pinned_for_both_aggregation_paths() {
    let incremental = ReputationDb::with_moderation(
        Arc::new(Store::in_memory()),
        SecretPepper::new(b"golden".to_vec()),
        ModerationPolicy::Open,
    );
    build(&incremental);
    incremental.force_aggregation_incremental(Timestamp(DAY_SECS)).expect("incremental batch runs");

    let full = ReputationDb::with_moderation(
        Arc::new(Store::in_memory()),
        SecretPepper::new(b"golden".to_vec()),
        ModerationPolicy::Open,
    );
    build(&full);
    full.force_aggregation_full(Timestamp(DAY_SECS)).expect("full batch runs");

    let got_incremental = snapshot(&incremental);
    let got_full = snapshot(&full);
    assert_eq!(got_incremental, got_full, "incremental and full batches must agree bit-for-bit");

    if std::env::var("SOFTREP_GOLDEN_REGEN").is_ok() {
        println!("const EXPECTED: &[(&str, u64, u64, u64)] = &[");
        for (id, rating_bits, votes, mass_bits) in &got_incremental {
            println!("    (\"{id}\", 0x{rating_bits:016x}, {votes}, 0x{mass_bits:016x}),");
        }
        println!("];");
        return;
    }

    assert_eq!(got_incremental.len(), EXPECTED.len(), "number of published ratings changed");
    for ((id, rating_bits, votes, mass_bits), (e_id, e_rating, e_votes, e_mass)) in
        got_incremental.iter().zip(EXPECTED)
    {
        assert_eq!(id, e_id, "rating key order changed");
        assert_eq!(
            (rating_bits, votes, mass_bits),
            (e_rating, e_votes, e_mass),
            "published rating for {id} drifted from the golden value \
             (rating {} vs expected {})",
            f64::from_bits(*rating_bits),
            f64::from_bits(*e_rating),
        );
    }
}
