//! Durability integration: the reputation database over the real storage
//! engine, across process "restarts" (open/close cycles), crash-torn WAL
//! tails, and compaction.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use softwareputation::core::clock::Timestamp;
use softwareputation::core::db::ReputationDb;
use softwareputation::crypto::salted::SecretPepper;
use softwareputation::storage::Store;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("softrep-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_db(dir: &std::path::Path) -> ReputationDb {
    ReputationDb::new(Arc::new(Store::open(dir).unwrap()), SecretPepper::new("it-pepper"))
}

fn sw(tag: u8) -> String {
    format!("{tag:02x}").repeat(20)
}

#[test]
fn full_state_survives_restart_cycles() {
    let dir = tempdir("restart");
    let mut rng = StdRng::seed_from_u64(1);

    // Session 1: build state.
    {
        let db = open_db(&dir);
        let token =
            db.register_user("alice", "pw", "alice@x.example", Timestamp(0), &mut rng).unwrap();
        db.activate_user("alice", &token).unwrap();
        db.register_software(&sw(1), "app.exe", 512, Some("Acme".into()), None, Timestamp(0))
            .unwrap();
        db.submit_vote("alice", &sw(1), 7, vec!["tracking".into()], Timestamp(10)).unwrap();
        let comment = db.submit_comment("alice", &sw(1), "tracks usage", Timestamp(11)).unwrap();
        assert_eq!(comment, 1);
        db.force_aggregation(Timestamp(20)).unwrap();
        db.store().sync().unwrap();
    }

    // Session 2: verify, mutate, compact.
    {
        let db = open_db(&dir);
        assert_eq!(db.user_count(), 1);
        assert_eq!(db.vote_count(), 1);
        assert_eq!(db.rating(&sw(1)).unwrap().unwrap().rating, 7.0);
        db.login("alice", "pw", Timestamp(100)).unwrap();
        // Duplicate e-mail still rejected after restart (index rebuilt).
        assert!(db
            .register_user("eve", "pw", "ALICE@x.example", Timestamp(100), &mut rng)
            .is_err());

        let token =
            db.register_user("bob", "pw", "bob@x.example", Timestamp(100), &mut rng).unwrap();
        db.activate_user("bob", &token).unwrap();
        db.submit_vote("bob", &sw(1), 3, vec![], Timestamp(110)).unwrap();
        db.remark_comment("bob", 1, true, Timestamp(111)).unwrap();
        db.store().compact().unwrap();
    }

    // Session 3: everything (including post-compaction writes) intact.
    {
        let db = open_db(&dir);
        assert_eq!(db.user_count(), 2);
        assert_eq!(db.vote_count(), 2);
        assert_eq!(db.trust_of("alice").unwrap().unwrap(), 2.0, "remark survived");
        assert_eq!(db.remark_score(1).unwrap(), 1);
        // Comment ids continue from the persisted counter.
        let next = db.submit_comment("bob", &sw(1), "also shows ads", Timestamp(200)).unwrap();
        assert_eq!(next, 2);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_loses_only_the_last_writes() {
    let dir = tempdir("torn");
    let mut rng = StdRng::seed_from_u64(2);
    {
        let db = open_db(&dir);
        let token = db.register_user("carol", "pw", "c@x.example", Timestamp(0), &mut rng).unwrap();
        db.activate_user("carol", &token).unwrap();
        db.register_software(&sw(2), "safe.exe", 10, None, None, Timestamp(0)).unwrap();
        db.submit_vote("carol", &sw(2), 9, vec![], Timestamp(1)).unwrap();
        db.store().sync().unwrap();
        // One more vote that will be torn off.
        db.register_software(&sw(3), "victim.exe", 10, None, None, Timestamp(2)).unwrap();
        db.store().sync().unwrap();
    }
    // Tear the last bytes off the WAL, as a crash mid-write would.
    let wal = dir.join("WAL");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

    let db = open_db(&dir);
    assert_eq!(db.user_count(), 1, "earlier state intact");
    assert_eq!(db.vote_count(), 1);
    assert!(db.software(&sw(2)).unwrap().is_some());
    assert!(db.software(&sw(3)).unwrap().is_none(), "torn write rolled back");
    // The store accepts new writes cleanly after recovery.
    db.register_software(&sw(3), "victim.exe", 10, None, None, Timestamp(3)).unwrap();
    assert!(db.software(&sw(3)).unwrap().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aggregation_is_reproducible_across_restarts() {
    // Invariant 5: the published rating derives deterministically from
    // votes + trust; re-running aggregation after a restart over the same
    // state yields bit-identical results.
    let dir = tempdir("repro");
    let mut rng = StdRng::seed_from_u64(3);
    let first = {
        let db = open_db(&dir);
        for (i, score) in [(0u8, 4u8), (1, 9), (2, 6)] {
            let name = format!("user{i}");
            let token = db
                .register_user(&name, "pw", &format!("{name}@x.example"), Timestamp(0), &mut rng)
                .unwrap();
            db.activate_user(&name, &token).unwrap();
            if i == 0 {
                db.register_software(&sw(9), "app.exe", 1, None, None, Timestamp(0)).unwrap();
            }
            db.submit_vote(&name, &sw(9), score, vec![], Timestamp(1)).unwrap();
        }
        db.adjust_trust("user1", 4.0, Timestamp(2)).unwrap();
        db.force_aggregation(Timestamp(10)).unwrap();
        db.store().sync().unwrap();
        db.rating(&sw(9)).unwrap().unwrap()
    };
    let db = open_db(&dir);
    db.force_aggregation(Timestamp(10)).unwrap();
    let second = db.rating(&sw(9)).unwrap().unwrap();
    assert_eq!(first, second);
    let _ = std::fs::remove_dir_all(&dir);
}
