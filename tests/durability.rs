//! Durability integration: the reputation database over the real storage
//! engine, across process "restarts" (open/close cycles), crash-torn WAL
//! tails, and compaction.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use softwareputation::core::clock::Timestamp;
use softwareputation::core::db::ReputationDb;
use softwareputation::crypto::salted::SecretPepper;
use softwareputation::storage::wal::Wal;
use softwareputation::storage::{Encode, Store, WriteBatch};

#[path = "support/tempdir.rs"]
mod tempdir;

use tempdir::TempDir;

fn open_db(dir: &std::path::Path) -> ReputationDb {
    ReputationDb::new(Arc::new(Store::open(dir).unwrap()), SecretPepper::new("it-pepper"))
}

fn sw(tag: u8) -> String {
    format!("{tag:02x}").repeat(20)
}

#[test]
fn full_state_survives_restart_cycles() {
    let dir = TempDir::new("restart");
    let mut rng = StdRng::seed_from_u64(1);

    // Session 1: build state.
    {
        let db = open_db(dir.path());
        let token =
            db.register_user("alice", "pw", "alice@x.example", Timestamp(0), &mut rng).unwrap();
        db.activate_user("alice", &token).unwrap();
        db.register_software(&sw(1), "app.exe", 512, Some("Acme".into()), None, Timestamp(0))
            .unwrap();
        db.submit_vote("alice", &sw(1), 7, vec!["tracking".into()], Timestamp(10)).unwrap();
        let comment = db.submit_comment("alice", &sw(1), "tracks usage", Timestamp(11)).unwrap();
        assert_eq!(comment, 1);
        db.force_aggregation(Timestamp(20)).unwrap();
        db.store().sync().unwrap();
    }

    // Session 2: verify, mutate, compact.
    {
        let db = open_db(dir.path());
        assert_eq!(db.user_count(), 1);
        assert_eq!(db.vote_count(), 1);
        assert_eq!(db.rating(&sw(1)).unwrap().unwrap().rating, 7.0);
        db.login("alice", "pw", Timestamp(100)).unwrap();
        // Duplicate e-mail still rejected after restart (index rebuilt).
        assert!(db
            .register_user("eve", "pw", "ALICE@x.example", Timestamp(100), &mut rng)
            .is_err());

        let token =
            db.register_user("bob", "pw", "bob@x.example", Timestamp(100), &mut rng).unwrap();
        db.activate_user("bob", &token).unwrap();
        db.submit_vote("bob", &sw(1), 3, vec![], Timestamp(110)).unwrap();
        db.remark_comment("bob", 1, true, Timestamp(111)).unwrap();
        db.store().compact().unwrap();
    }

    // Session 3: everything (including post-compaction writes) intact.
    {
        let db = open_db(dir.path());
        assert_eq!(db.user_count(), 2);
        assert_eq!(db.vote_count(), 2);
        assert_eq!(db.trust_of("alice").unwrap().unwrap(), 2.0, "remark survived");
        assert_eq!(db.remark_score(1).unwrap(), 1);
        // Comment ids continue from the persisted counter.
        let next = db.submit_comment("bob", &sw(1), "also shows ads", Timestamp(200)).unwrap();
        assert_eq!(next, 2);
    }
}

#[test]
fn torn_wal_tail_loses_only_the_last_writes() {
    let dir = TempDir::new("torn");
    let mut rng = StdRng::seed_from_u64(2);
    {
        let db = open_db(dir.path());
        let token = db.register_user("carol", "pw", "c@x.example", Timestamp(0), &mut rng).unwrap();
        db.activate_user("carol", &token).unwrap();
        db.register_software(&sw(2), "safe.exe", 10, None, None, Timestamp(0)).unwrap();
        db.submit_vote("carol", &sw(2), 9, vec![], Timestamp(1)).unwrap();
        db.store().sync().unwrap();
        // One more vote that will be torn off.
        db.register_software(&sw(3), "victim.exe", 10, None, None, Timestamp(2)).unwrap();
        db.store().sync().unwrap();
    }
    // Tear the last bytes off the WAL, as a crash mid-write would.
    let wal = dir.path().join("WAL");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

    let db = open_db(dir.path());
    assert_eq!(db.user_count(), 1, "earlier state intact");
    assert_eq!(db.vote_count(), 1);
    assert!(db.software(&sw(2)).unwrap().is_some());
    assert!(db.software(&sw(3)).unwrap().is_none(), "torn write rolled back");
    // The store accepts new writes cleanly after recovery.
    db.register_software(&sw(3), "victim.exe", 10, None, None, Timestamp(3)).unwrap();
    assert!(db.software(&sw(3)).unwrap().is_some());
}

/// Append `batches` to the log file at `path` as fully-synced WAL frames —
/// the same bytes the store would have written before a crash. Frames are
/// self-describing since the replication work: each payload leads with its
/// commit sequence number (little-endian u64), consecutive from
/// `start_seq`, and recovery rejects any gap in the chain.
fn fabricate_wal(path: &std::path::Path, start_seq: u64, batches: &[WriteBatch]) {
    let mut wal = Wal::open(path).unwrap();
    for (i, batch) in batches.iter().enumerate() {
        let mut payload = (start_seq + i as u64).to_le_bytes().to_vec();
        payload.extend_from_slice(&batch.encode_to_bytes());
        wal.append(&payload).unwrap();
    }
    wal.sync().unwrap();
}

fn put_batch(tree: &str, key: &[u8], value: &[u8]) -> WriteBatch {
    let mut batch = WriteBatch::new();
    batch.put(tree, key.to_vec(), value.to_vec());
    batch
}

#[test]
fn crash_between_wal_rotation_and_snapshot_rename_loses_nothing() {
    // Compaction first renames WAL -> WAL.old, then writes the snapshot.
    // A crash in between leaves pre-rotation state only in WAL.old and
    // post-rotation writes in a fresh WAL; open must replay both, in that
    // order, and finish the interrupted compaction.
    let dir = TempDir::new("rot-a");
    {
        let store = Store::open(dir.path()).unwrap();
        store.apply(&put_batch("t", b"k-old", b"v-old")).unwrap();
        store.sync().unwrap();
    }
    std::fs::rename(dir.path().join("WAL"), dir.path().join("WAL.old")).unwrap();
    fabricate_wal(&dir.path().join("WAL"), 2, &[put_batch("t", b"k-new", b"v-new")]);

    let store = Store::open(dir.path()).unwrap();
    assert_eq!(store.get("t", b"k-old").as_deref(), Some(&b"v-old"[..]), "rotated-out write");
    assert_eq!(store.get("t", b"k-new").as_deref(), Some(&b"v-new"[..]), "post-rotation write");
    assert!(!dir.path().join("WAL.old").exists(), "open finished the interrupted compaction");

    // And the recovered state is itself durable across another cycle.
    drop(store);
    let store = Store::open(dir.path()).unwrap();
    assert_eq!(store.tree_len("t"), 2);
}

#[test]
fn crash_between_snapshot_rename_and_wal_old_removal_is_idempotent() {
    // The snapshot has landed but WAL.old (whose batches the snapshot
    // already contains) was not removed before the crash. Replaying it
    // re-applies absolute puts/deletes: harmless, and the state must come
    // back bit-identical.
    let dir = TempDir::new("rot-b");
    let before;
    {
        let store = Store::open(dir.path()).unwrap();
        store.apply(&put_batch("t", b"k1", b"v1")).unwrap();
        store.apply(&put_batch("t", b"k2", b"v2")).unwrap();
        store.compact().unwrap();
        before = (store.get("t", b"k1"), store.get("t", b"k2"), store.tree_len("t"));
    }
    // Resurrect WAL.old holding batches the snapshot already absorbed.
    fabricate_wal(
        &dir.path().join("WAL.old"),
        1,
        &[put_batch("t", b"k1", b"v1"), put_batch("t", b"k2", b"v2")],
    );

    let store = Store::open(dir.path()).unwrap();
    let after = (store.get("t", b"k1"), store.get("t", b"k2"), store.tree_len("t"));
    assert_eq!(before, after, "idempotent replay of already-snapshotted batches");
    assert!(!dir.path().join("WAL.old").exists(), "stale rotation log retired");
}

#[test]
fn torn_wal_old_drops_the_newer_wal_for_prefix_consistency() {
    // If WAL.old has a torn tail, everything after the tear — including
    // the entire newer WAL, which was written after every WAL.old entry —
    // must be discarded, or recovery would manufacture a history with a
    // hole in the middle.
    let dir = TempDir::new("rot-torn");
    {
        let store = Store::open(dir.path()).unwrap();
        store.apply(&put_batch("t", b"k1", b"v1")).unwrap();
        store.sync().unwrap();
        store.apply(&put_batch("t", b"k2", b"v2")).unwrap();
        store.sync().unwrap();
    }
    std::fs::rename(dir.path().join("WAL"), dir.path().join("WAL.old")).unwrap();
    // Tear the tail of WAL.old (crash mid-write of k2's frame), then give
    // the newer WAL a complete, well-formed entry.
    let old = dir.path().join("WAL.old");
    let bytes = std::fs::read(&old).unwrap();
    std::fs::write(&old, &bytes[..bytes.len() - 5]).unwrap();
    fabricate_wal(&dir.path().join("WAL"), 3, &[put_batch("t", b"k3", b"v3")]);

    let store = Store::open(dir.path()).unwrap();
    assert_eq!(store.get("t", b"k1").as_deref(), Some(&b"v1"[..]), "pre-tear prefix survives");
    assert!(store.get("t", b"k2").is_none(), "torn entry rolled back");
    assert!(store.get("t", b"k3").is_none(), "newer WAL dropped: no holes in history");
    assert!(!dir.path().join("WAL.old").exists());

    // The store stays fully writable and durable after the amputation.
    store.apply(&put_batch("t", b"k4", b"v4")).unwrap();
    store.sync().unwrap();
    drop(store);
    let store = Store::open(dir.path()).unwrap();
    assert_eq!(store.get("t", b"k4").as_deref(), Some(&b"v4"[..]));
    assert_eq!(store.tree_len("t"), 2);
}

#[test]
fn aggregation_is_reproducible_across_restarts() {
    // Invariant 5: the published rating derives deterministically from
    // votes + trust; re-running aggregation after a restart over the same
    // state yields bit-identical results.
    let dir = TempDir::new("repro");
    let mut rng = StdRng::seed_from_u64(3);
    let first = {
        let db = open_db(dir.path());
        for (i, score) in [(0u8, 4u8), (1, 9), (2, 6)] {
            let name = format!("user{i}");
            let token = db
                .register_user(&name, "pw", &format!("{name}@x.example"), Timestamp(0), &mut rng)
                .unwrap();
            db.activate_user(&name, &token).unwrap();
            if i == 0 {
                db.register_software(&sw(9), "app.exe", 1, None, None, Timestamp(0)).unwrap();
            }
            db.submit_vote(&name, &sw(9), score, vec![], Timestamp(1)).unwrap();
        }
        db.adjust_trust("user1", 4.0, Timestamp(2)).unwrap();
        db.force_aggregation(Timestamp(10)).unwrap();
        db.store().sync().unwrap();
        db.rating(&sw(9)).unwrap().unwrap()
    };
    let db = open_db(dir.path());
    db.force_aggregation(Timestamp(10)).unwrap();
    let second = db.rating(&sw(9)).unwrap().unwrap();
    assert_eq!(first, second);
}
