//! Cross-crate integration: the full client → TCP → server → storage
//! pipeline, exercising every §3 component in one scenario.

use std::sync::Arc;

use softwareputation::client::client::{PromptContext, RatingSubmission, UserAgent, UserChoice};
use softwareputation::client::prompt::RatingPromptPolicy;
use softwareputation::client::{DecisionSource, InProcessConnector, ReputationClient};
use softwareputation::core::clock::SimClock;
use softwareputation::core::db::ReputationDb;
use softwareputation::core::identity::SyntheticExecutable;
use softwareputation::crypto::puzzle::Challenge;
use softwareputation::proto::{Request, Response};
use softwareputation::server::tcp::{TcpClient, TcpServer};
use softwareputation::server::{ReputationServer, ServerConfig};

struct Scripted {
    choice: UserChoice,
    rating: Option<RatingSubmission>,
}

impl UserAgent for Scripted {
    fn decide(&mut self, _ctx: &PromptContext) -> UserChoice {
        self.choice
    }
    fn rate(
        &mut self,
        _f: &str,
        _r: Option<&softwareputation::proto::message::SoftwareInfo>,
    ) -> Option<RatingSubmission> {
        self.rating.clone()
    }
}

fn test_server(puzzle: u8) -> (Arc<ReputationServer>, SimClock) {
    let clock = SimClock::new();
    let server = Arc::new(ReputationServer::new(
        ReputationDb::in_memory("e2e"),
        Arc::new(clock.clone()),
        ServerConfig {
            puzzle_difficulty: puzzle,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            ..ServerConfig::default()
        },
        3,
    ));
    (server, clock)
}

#[test]
fn community_lifecycle_through_the_public_api() {
    let (server, clock) = test_server(2);
    let adware = SyntheticExecutable::new("dealfinder.exe", "AdCo", "1.0", vec![0xBA; 300]);

    // Three members rate through the client API (ratings need >threshold
    // executions, so lower the prompt policy for the test).
    for (i, score) in [(0, 2u8), (1, 3), (2, 2)] {
        let connector = InProcessConnector::new(Arc::clone(&server), format!("host{i}"));
        let mut member = ReputationClient::new(connector, Arc::new(clock.clone()));
        member.register_and_login(&format!("member{i}"), "pw", &format!("m{i}@x.example")).unwrap();
        member.set_prompt_policy(RatingPromptPolicy::new(1, 10));
        let mut agent = Scripted {
            choice: UserChoice::AllowOnce,
            rating: Some(RatingSubmission {
                score,
                behaviours: vec!["popup_ads".into()],
                comment: Some("bundles an ad engine".into()),
            }),
        };
        // Two executions: the second crosses the threshold and submits.
        member.handle_execution(&adware, None, &mut agent);
        let outcome = member.handle_execution(&adware, None, &mut agent);
        assert!(outcome.rating_submitted, "member{i} vote must land");
    }
    assert_eq!(server.db().vote_count(), 3);

    // The batch publishes; a fourth member's dialog now warns.
    clock.advance_days(1);
    assert!(server.tick() >= 1);

    let connector = InProcessConnector::new(Arc::clone(&server), "host-new");
    let mut newcomer = ReputationClient::new(connector, Arc::new(clock.clone()));
    newcomer.register_and_login("newcomer", "pw", "new@x.example").unwrap();
    struct WarnChecker;
    impl UserAgent for WarnChecker {
        fn decide(&mut self, ctx: &PromptContext) -> UserChoice {
            let report = ctx.report.as_ref().expect("report must be present");
            assert!(report.rating.unwrap() < 3.0);
            assert!(report.behaviours.contains(&"popup_ads".to_string()));
            assert!(!report.comments.is_empty());
            UserChoice::DenyAlways
        }
        fn rate(
            &mut self,
            _f: &str,
            _r: Option<&softwareputation::proto::message::SoftwareInfo>,
        ) -> Option<RatingSubmission> {
            None
        }
    }
    let outcome = newcomer.handle_execution(&adware, None, &mut WarnChecker);
    assert!(!outcome.allowed);
    assert_eq!(outcome.source, DecisionSource::User);
}

#[test]
fn tcp_transport_carries_the_full_protocol() {
    let (server, _clock) = test_server(2);
    let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(tcp.local_addr()).unwrap();

    // Register with a real puzzle over the socket.
    let Response::Puzzle { challenge } = client.call(&Request::GetPuzzle).unwrap() else {
        panic!("expected puzzle")
    };
    let (solution, _) = Challenge::decode(&challenge).unwrap().solve();
    let resp = client
        .call(&Request::Register {
            username: "sockuser".into(),
            password: "pw".into(),
            email: "sock@x.example".into(),
            puzzle_challenge: challenge.clone(),
            puzzle_solution: solution.nonce,
        })
        .unwrap();
    assert!(matches!(resp, Response::Registered { .. }));

    // Replaying the same puzzle must fail.
    let replay = client
        .call(&Request::Register {
            username: "sockuser2".into(),
            password: "pw".into(),
            email: "sock2@x.example".into(),
            puzzle_challenge: challenge,
            puzzle_solution: solution.nonce,
        })
        .unwrap();
    assert!(matches!(replay, Response::Error { ref code, .. } if code == "bad-puzzle"));
    tcp.shutdown();
}

#[test]
fn vendor_reputation_spans_versions() {
    let (server, clock) = test_server(0);
    let v1 = SyntheticExecutable::new("player.exe", "MediaSoft", "1.0", vec![1; 64]);
    let v2 = v1.next_version("2.0", vec![2; 64]);
    assert_ne!(v1.id_sha1(), v2.id_sha1());

    let connector = InProcessConnector::new(Arc::clone(&server), "host");
    let mut member = ReputationClient::new(connector, Arc::new(clock.clone()));
    member.register_and_login("vendorfan", "pw", "vf@x.example").unwrap();

    for (exe, score) in [(&v1, 8u8), (&v2, 4u8)] {
        let id = exe.id_sha1().to_hex();
        server
            .db()
            .register_software(
                &id,
                &exe.file_name,
                exe.file_size(),
                exe.company.clone(),
                exe.version.clone(),
                clock.now(),
            )
            .unwrap();
        server.db().submit_vote("vendorfan", &id, score, vec![], clock.now()).unwrap();
    }
    server.db().force_aggregation(clock.now()).unwrap();

    // Versions rate separately; the vendor view averages them (§3.3).
    assert_eq!(server.db().rating(&v1.id_sha1().to_hex()).unwrap().unwrap().rating, 8.0);
    assert_eq!(server.db().rating(&v2.id_sha1().to_hex()).unwrap().unwrap().rating, 4.0);
    let vendor = server.db().vendor_report("MediaSoft").unwrap();
    assert_eq!(vendor.software_count, 2);
    assert_eq!(vendor.rating.unwrap(), 6.0);

    // And it is visible through the protocol too.
    let resp = server.handle(&Request::QueryVendor { vendor: "MediaSoft".into() }, "q");
    assert_eq!(
        resp,
        Response::Vendor { vendor: "MediaSoft".into(), rating: Some(6.0), software_count: 2 }
    );
}
