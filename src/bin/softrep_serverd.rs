//! The deployable reputation server binary.
//!
//! Runs the full §3.2 server over a durable on-disk store, with the framed
//! XML protocol on one port and the read-only web interface on another,
//! plus a maintenance loop driving the 24 h aggregation schedule.
//!
//! ```text
//! softrep-serverd [--data DIR] [--proto ADDR] [--web ADDR]
//!                [--pepper SECRET] [--puzzle-difficulty N]
//!                [--analyzer-token TOKEN] [--durability MODE]
//!                [--frontend threads|epoll] [--replica-of ADDR]
//! ```
//!
//! `--replica-of ADDR` runs this node as a read replica of the primary at
//! `ADDR` (its protocol address): the store is kept current by tailing
//! the primary's WAL (bootstrapping from a snapshot when needed), read
//! queries and the web interface are served locally, and every write
//! request is answered with a `not-primary` redirect carrying `ADDR`.
//! Replicas skip the aggregation schedule — rating records are computed
//! on the primary and replicated like any other data.
//!
//! `--frontend` selects the protocol serving architecture: `epoll`
//! (default on Linux) runs the event-driven reactor — one event loop,
//! thousands of concurrent connections; `threads` runs the portable
//! thread-per-connection pool (64 workers).
//!
//! `--durability` selects the WAL sync policy: `always` (fsync before every
//! commit returns, group-committed across concurrent writers), `batched:N`
//! (fsync once at least `N` bytes have been logged), or `os` (default —
//! flush to the OS on every commit, fsync on the maintenance timer).
//!
//! Example:
//!
//! ```sh
//! cargo run --bin softrep-serverd -- --data /tmp/softrep --proto 127.0.0.1:7007 --web 127.0.0.1:7080
//! ```

use std::sync::Arc;

use softwareputation::core::clock::SystemClock;
use softwareputation::core::db::ReputationDb;
use softwareputation::crypto::salted::SecretPepper;
use softwareputation::server::repl::ReplicaTail;
use softwareputation::server::tcp::{Frontend, FrontendServer, TcpServerConfig};
use softwareputation::server::web::WebServer;
use softwareputation::server::{ReputationServer, ServerConfig};
use softwareputation::storage::{DurabilityMode, Store, StoreOptions};

struct Args {
    data: String,
    proto: String,
    web: String,
    pepper: String,
    puzzle_difficulty: u8,
    analyzer_token: Option<String>,
    durability: DurabilityMode,
    frontend: Frontend,
    replica_of: Option<String>,
}

/// Parse `always`, `batched:BYTES`, or `os` into a [`DurabilityMode`].
fn parse_durability(value: &str) -> Result<DurabilityMode, String> {
    match value {
        "always" => Ok(DurabilityMode::Always),
        "os" => Ok(DurabilityMode::Os),
        other => match other.strip_prefix("batched:").and_then(|n| n.parse::<u64>().ok()) {
            Some(every_bytes) if every_bytes > 0 => Ok(DurabilityMode::Batched { every_bytes }),
            _ => Err(format!(
                "--durability must be 'always', 'batched:BYTES' (BYTES > 0), or 'os'; got {other}"
            )),
        },
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data: "./softrep-data".into(),
        proto: "127.0.0.1:7007".into(),
        web: "127.0.0.1:7080".into(),
        pepper: String::new(),
        puzzle_difficulty: 12,
        analyzer_token: None,
        durability: DurabilityMode::default(),
        frontend: Frontend::default(),
        replica_of: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--data" => args.data = value("--data")?,
            "--proto" => args.proto = value("--proto")?,
            "--web" => args.web = value("--web")?,
            "--pepper" => args.pepper = value("--pepper")?,
            "--puzzle-difficulty" => {
                args.puzzle_difficulty = value("--puzzle-difficulty")?
                    .parse()
                    .map_err(|_| "--puzzle-difficulty must be 0-32".to_string())?;
            }
            "--analyzer-token" => args.analyzer_token = Some(value("--analyzer-token")?),
            "--durability" => args.durability = parse_durability(&value("--durability")?)?,
            "--frontend" => args.frontend = value("--frontend")?.parse()?,
            "--replica-of" => args.replica_of = Some(value("--replica-of")?),
            "--help" | "-h" => {
                println!(
                    "softrep-serverd --data DIR --proto ADDR --web ADDR \
                     [--pepper SECRET] [--puzzle-difficulty N] [--analyzer-token TOKEN] \
                     [--durability always|batched:BYTES|os] [--frontend threads|epoll] \
                     [--replica-of ADDR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.pepper.is_empty() {
        return Err(
            "--pepper is required: the secret string that protects stored e-mail hashes (§2.2). \
             Losing it invalidates duplicate detection; leaking it enables dictionary attacks."
                .into(),
        );
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    let store_options = StoreOptions { durability: args.durability, ..StoreOptions::default() };
    let store = match Store::open_with(&args.data, store_options) {
        Ok(store) => Arc::new(store),
        Err(e) => {
            eprintln!("error: cannot open data directory {}: {e}", args.data);
            std::process::exit(1);
        }
    };
    let db =
        ReputationDb::new(Arc::clone(&store), SecretPepper::new(args.pepper.as_bytes().to_vec()));

    // Seed the RNG from the OS for production use.
    let seed = {
        use rand::RngCore;
        rand::rngs::OsRng.next_u64()
    };
    let server = Arc::new(ReputationServer::new(
        db,
        Arc::new(SystemClock),
        ServerConfig {
            puzzle_difficulty: args.puzzle_difficulty,
            analyzer_token: args.analyzer_token,
            pseudonym_key_bits: 1024,
            ..ServerConfig::default()
        },
        seed,
    ));

    let tcp_config = TcpServerConfig {
        frontend: args.frontend,
        replica_of: args.replica_of.clone(),
        ..TcpServerConfig::default()
    };
    let tcp = match FrontendServer::spawn_with(Arc::clone(&server), args.proto.as_str(), tcp_config)
    {
        Ok(tcp) => tcp,
        Err(e) => {
            eprintln!("error: cannot bind protocol address {}: {e}", args.proto);
            std::process::exit(1);
        }
    };
    let web = match WebServer::spawn(Arc::clone(&server), args.web.as_str()) {
        Ok(web) => web,
        Err(e) => {
            eprintln!("error: cannot bind web address {}: {e}", args.web);
            std::process::exit(1);
        }
    };

    // A replica pulls the primary's log for as long as the process lives;
    // the handle is only dropped (joining the tail) at process exit.
    let _tail = match &args.replica_of {
        Some(primary) => match ReplicaTail::spawn(Arc::clone(&server), primary.clone()) {
            Ok(tail) => Some(tail),
            Err(e) => {
                eprintln!("error: cannot start replication tail: {e}");
                std::process::exit(1);
            }
        },
        None => None,
    };

    println!("softwareputation server");
    println!("  data      {}", args.data);
    println!("  protocol  {}", tcp.local_addr());
    println!("  web       http://{}", web.local_addr());
    println!("  frontend  {:?}", args.frontend);
    if let Some(primary) = &args.replica_of {
        println!("  replica-of {primary}");
    }
    println!("  puzzles   difficulty {}", args.puzzle_difficulty);
    println!("  durability {:?}", args.durability);
    println!("  pseudonym credentials: 1024-bit blind-signature key");
    let stats = server.db().deployment_stats();
    println!(
        "  database  {} users, {} software, {} votes",
        stats.users, stats.software, stats.votes
    );

    // Maintenance loop: aggregation schedule, session pruning, periodic
    // compaction + fsync. Ctrl-C terminates the process; the WAL makes
    // that safe at any instant.
    let mut iterations = 0u64;
    let is_replica = args.replica_of.is_some();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
        // Replicas receive rating records through the log like any other
        // data; running aggregation locally would race the primary's.
        if !is_replica {
            let recomputed = server.tick();
            if recomputed > 0 {
                println!("aggregation batch: {recomputed} ratings recomputed");
            }
        }
        let _ = store.sync();
        iterations += 1;
        if iterations.is_multiple_of(60) {
            match store.compact() {
                Ok(()) => println!("store compacted"),
                Err(e) => eprintln!("compaction failed: {e}"),
            }
        }
    }
}
