#![warn(missing_docs)]

//! # softwareputation
//!
//! A production-quality Rust reproduction of *"Preventing Privacy-Invasive
//! Software Using Collaborative Reputation Systems"* (Boldt, Carlsson,
//! Larsson, Lindén — SDM 2007, co-located with VLDB 2007).
//!
//! The paper proposes a collaborative reputation system for software: a
//! desktop client intercepts every program execution, identifies the
//! executable by a content hash, fetches other users' ratings and comments
//! from a central server, and lets the user (or an automated policy)
//! decide whether the program runs. This crate is the facade over the full
//! implementation:
//!
//! | module | crate | what it is |
//! |--------|-------|------------|
//! | [`core`] | `softrep-core` | the reputation system: trust factors, 24 h aggregation, the PIS taxonomy, the reputation database |
//! | [`server`] | `softrep-server` | sessions, puzzle-gated registration, flood guard, request dispatch, TCP transport |
//! | [`client`] | `softrep-client` | execution hook, white/black lists, rating prompts, signature whitelisting, policy enforcement |
//! | [`policy`] | `softrep-policy` | the §4.2 policy-manager DSL |
//! | [`proto`] | `softrep-proto` | the XML wire protocol |
//! | [`storage`] | `softrep-storage` | the embedded storage engine (WAL + snapshots) |
//! | [`crypto`] | `softrep-crypto` | SHA-1/SHA-256, HMAC, salted digests, client puzzles, hash-based signatures |
//! | [`anonymity`] | `softrep-anonymity` | the Tor-style mix network of §2.2 |
//! | [`baseline`] | `softrep-baseline` | the §4.3 anti-virus comparison engine |
//! | [`sim`] | `softrep-sim` | the agent simulation and every experiment of EXPERIMENTS.md |
//! | [`analysis`] | `softrep-analysis` | the §5 runtime-analysis sandbox feeding hard evidence |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use softwareputation::core::clock::SimClock;
//! use softwareputation::core::db::ReputationDb;
//! use softwareputation::core::identity::SyntheticExecutable;
//! use softwareputation::server::{ReputationServer, ServerConfig};
//! use softwareputation::client::{InProcessConnector, ReputationClient};
//!
//! // Stand up a server on a simulated clock.
//! let clock = SimClock::new();
//! let server = Arc::new(ReputationServer::new(
//!     ReputationDb::in_memory("pepper"),
//!     Arc::new(clock.clone()),
//!     ServerConfig { puzzle_difficulty: 2, ..ServerConfig::default() },
//!     42,
//! ));
//!
//! // A client joins the community (puzzle → register → activate → login).
//! let connector = InProcessConnector::new(Arc::clone(&server), "10.0.0.1");
//! let mut client = ReputationClient::new(connector, Arc::new(clock.clone()));
//! client.register_and_login("alice", "pw", "alice@example.com").unwrap();
//!
//! // An executable is identified by its content hash.
//! let exe = SyntheticExecutable::new("weatherbar.exe", "Acme", "1.0", vec![1, 2, 3]);
//! assert_eq!(exe.id_sha1().to_hex().len(), 40);
//! ```
//!
//! See `examples/` for complete scenarios and `DESIGN.md` / `EXPERIMENTS.md`
//! for the system inventory and the reproduced tables.

pub use softrep_analysis as analysis;
pub use softrep_anonymity as anonymity;
pub use softrep_baseline as baseline;
pub use softrep_client as client;
pub use softrep_core as core;
pub use softrep_crypto as crypto;
pub use softrep_policy as policy;
pub use softrep_proto as proto;
pub use softrep_server as server;
pub use softrep_sim as sim;
pub use softrep_storage as storage;
