//! A real networked deployment: framed XML over TCP sockets.
//!
//! Starts the server on an ephemeral local port, connects three client
//! processes' worth of traffic through real `TcpStream`s, and prints the
//! execution-time report a client renders from the wire messages —
//! exactly the §3.2 topology ("the clients communicate with the server
//! through a web-server"), minus HTTP.
//!
//! Run with `cargo run --example networked_deployment`.

use std::sync::Arc;

use softwareputation::core::clock::SystemClock;
use softwareputation::core::db::ReputationDb;
use softwareputation::core::identity::SyntheticExecutable;
use softwareputation::crypto::puzzle::Challenge;
use softwareputation::proto::{Request, Response};
use softwareputation::server::tcp::{TcpClient, TcpServer};
use softwareputation::server::{ReputationServer, ServerConfig};

fn join(client: &mut TcpClient, name: &str) -> String {
    let Response::Puzzle { challenge } = client.call(&Request::GetPuzzle).unwrap() else {
        panic!("expected puzzle")
    };
    let (solution, cost) = Challenge::decode(&challenge).unwrap().solve();
    println!("{name}: solved registration puzzle in {cost} hash evaluations");
    let resp = client
        .call(&Request::Register {
            username: name.into(),
            password: "pw".into(),
            email: format!("{name}@example.com"),
            puzzle_challenge: challenge,
            puzzle_solution: solution.nonce,
        })
        .unwrap();
    let Response::Registered { activation_token } = resp else { panic!("{resp:?}") };
    client.call(&Request::Activate { username: name.into(), token: activation_token }).unwrap();
    let Response::Session { token } =
        client.call(&Request::Login { username: name.into(), password: "pw".into() }).unwrap()
    else {
        panic!("login failed")
    };
    token
}

fn main() {
    // The server binary: real clock, puzzle difficulty 8.
    let server = Arc::new(ReputationServer::new(
        ReputationDb::in_memory("tcp-pepper"),
        Arc::new(SystemClock),
        ServerConfig { puzzle_difficulty: 8, ..ServerConfig::default() },
        2007,
    ));
    let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").expect("bind");
    println!("reputation server listening on {}", tcp.local_addr());

    let toolbar = SyntheticExecutable::new(
        "search-toolbar.exe",
        "BrightAds Media",
        "4.2",
        b"toolbar with a tracking beacon".to_vec(),
    );
    let id = toolbar.id_sha1().to_hex();

    // Two raters connect over real sockets.
    for (name, score, behaviour) in [("raterA", 3u8, "tracking"), ("raterB", 2u8, "popup_ads")] {
        let mut client = TcpClient::connect(tcp.local_addr()).expect("connect");
        let session = join(&mut client, name);
        client
            .call(&Request::RegisterSoftware {
                software_id: id.clone(),
                file_name: toolbar.file_name.clone(),
                file_size: toolbar.file_size(),
                company: toolbar.company.clone(),
                version: toolbar.version.clone(),
            })
            .unwrap();
        let resp = client
            .call(&Request::SubmitVote {
                session,
                software_id: id.clone(),
                score,
                behaviours: vec![behaviour.into()],
            })
            .unwrap();
        assert_eq!(resp, Response::Ok);
        println!("{name}: voted {score}/10 over TCP");
    }

    // Publish the rating (in production the 24 h scheduler does this).
    server.db().force_aggregation(server.now()).unwrap();

    // A third client queries before running the toolbar.
    let mut client = TcpClient::connect(tcp.local_addr()).expect("connect");
    let resp = client.call(&Request::QuerySoftware { software_id: id.clone() }).unwrap();
    let Response::Software(info) = resp else { panic!("{resp:?}") };
    println!("\nexecution-time report for {}:", info.file_name.as_deref().unwrap_or("?"));
    println!("  vendor:  {}", info.company.as_deref().unwrap_or("(stripped)"));
    println!("  rating:  {:.1}/10 from {} votes", info.rating.unwrap(), info.vote_count);
    println!("  reports: {}", info.behaviours.join(", "));
    assert!(info.rating.unwrap() < 4.0);
    println!("\nverdict: a cautious user blocks this installer.");

    tcp.shutdown();
}
