//! §2.2 end to end: a privacy-preserving deployment.
//!
//! A member routes every protocol message through a 3-hop Tor-style
//! circuit, the server stores only the privacy-minimal schema, and a
//! simulated database breach demonstrates what the §2.2 design denies the
//! attacker: e-mail addresses (peppered hashes) and user↔host linkage
//! (no IPs stored, circuits hide the origin).
//!
//! Run with `cargo run --example anonymous_community`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use softwareputation::anonymity::{MixNetwork, RelayDirectory};
use softwareputation::core::clock::SimClock;
use softwareputation::core::db::ReputationDb;
use softwareputation::crypto::salted::SecretPepper;
use softwareputation::proto::{Request, Response};
use softwareputation::server::{ReputationServer, ServerConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(2007);

    // The reputation server, reachable as the mix network's destination.
    let clock = SimClock::new();
    let server = Arc::new(ReputationServer::new(
        ReputationDb::in_memory("a-pepper-the-attacker-never-sees"),
        Arc::new(clock.clone()),
        ServerConfig { puzzle_difficulty: 0, ..ServerConfig::default() },
        11,
    ));

    // A directory of 12 relays.
    let network = MixNetwork::new(RelayDirectory::with_relays(12, &mut rng));
    println!("mix network up: {} relays", network.directory().len());

    // The member registers; every message goes through a fresh circuit.
    let client_host = "client-laptop-83.254.11.9";
    let through_tor = |request: &Request, rng: &mut StdRng| -> Response {
        let circuit = network.directory().build_circuit(3, rng).expect("relays available");
        println!("  circuit: {} → … → {}", circuit.entry(), circuit.exit());
        let outcome = network
            .route(client_host, &circuit, request.encode().as_bytes(), rng)
            .expect("routing succeeds");
        // The server sees the request arriving from the *exit relay*.
        let seen_source = outcome.source_seen_by_destination.clone();
        assert_ne!(seen_source, client_host);
        let decoded =
            Request::decode(std::str::from_utf8(&outcome.delivered_payload).unwrap()).unwrap();
        server.handle(&decoded, &seen_source)
    };

    let resp = through_tor(
        &Request::Register {
            username: "anon_member".into(),
            password: "pw".into(),
            email: "whistleblower@example.org".into(),
            puzzle_challenge: String::new(),
            puzzle_solution: 0,
        },
        &mut rng,
    );
    let Response::Registered { activation_token } = resp else { panic!("{resp:?}") };
    through_tor(
        &Request::Activate { username: "anon_member".into(), token: activation_token },
        &mut rng,
    );
    let Response::Session { token } = through_tor(
        &Request::Login { username: "anon_member".into(), password: "pw".into() },
        &mut rng,
    ) else {
        panic!("login failed")
    };
    println!("anon_member registered, activated and logged in — all via circuits");

    // Vote on a program, still through circuits.
    let sw = "ab".repeat(20);
    through_tor(
        &Request::RegisterSoftware {
            software_id: sw.clone(),
            file_name: "tracker-toolbar.exe".into(),
            file_size: 123_456,
            company: Some("BrightAds Media".into()),
            version: Some("4.0".into()),
        },
        &mut rng,
    );
    through_tor(
        &Request::SubmitVote {
            session: token,
            software_id: sw.clone(),
            score: 2,
            behaviours: vec!["tracking".into()],
        },
        &mut rng,
    );
    println!("vote submitted anonymously");

    // --- Now the breach -------------------------------------------------
    println!("\n-- simulated database breach --");
    let record = server.db().user("anon_member").unwrap().unwrap();
    println!("stolen user record: {record:?}");
    println!(
        "  plaintext e-mail present: no (digest only: {}…)",
        softwareputation::server::web::truncate_chars(&record.email_digest, 12)
    );
    println!("  IP address present: no such field exists");

    // Dictionary attack on the stored digest without the pepper.
    let guesses = ["whistleblower@example.org", "anon_member@gmail.com", "admin@example.org"];
    let hits = guesses
        .iter()
        .filter(|g| SecretPepper::email_digest_unpeppered(g).to_hex() == record.email_digest)
        .count();
    println!(
        "  dictionary attack on the digest (pepper unknown): {hits}/{} guesses verified",
        guesses.len()
    );
    assert_eq!(hits, 0);

    println!(
        "\nthe §2.2 guarantees hold: the breach yields votes linked to a pseudonym, nothing more"
    );
}
