//! The §4.2 policy manager: corporate software-execution policies driven
//! by the reputation system.
//!
//! Builds a small community, lets it rate a mixed corpus, then walks a
//! corporate workstation through the same corpus twice — once with the
//! paper's example policy, once with a strict lockdown — printing every
//! automated decision.
//!
//! Run with `cargo run --example policy_manager`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use softwareputation::client::client::{PromptContext, RatingSubmission, UserAgent, UserChoice};
use softwareputation::client::{InProcessConnector, ReputationClient};
use softwareputation::proto::message::SoftwareInfo;
use softwareputation::sim::harness::{HarnessConfig, SimHarness};
use softwareputation::sim::population::{build_population, DEFAULT_MIX};
use softwareputation::sim::universe::{Universe, UniverseConfig};

/// The IT help desk: whoever still gets asked, asks the user; here the
/// user just counts interruptions and allows.
struct HelpDesk {
    interruptions: u32,
}

impl UserAgent for HelpDesk {
    fn decide(&mut self, ctx: &PromptContext) -> UserChoice {
        self.interruptions += 1;
        println!("    [help desk ticket] {} needs a manual decision", ctx.file_name);
        UserChoice::AllowOnce
    }

    fn rate(&mut self, _f: &str, _r: Option<&SoftwareInfo>) -> Option<RatingSubmission> {
        None
    }
}

fn main() {
    // Community phase: 60 members rate 50 programs for four weeks.
    let mut rng = StdRng::seed_from_u64(2007);
    let universe = Universe::generate(
        &UniverseConfig { programs: 50, vendors: 8, ..Default::default() },
        &mut rng,
    );
    let users = build_population(60, &DEFAULT_MIX, universe.len(), 15, &mut rng);
    let mut harness = SimHarness::new(universe, users, &HarnessConfig::default());
    for week in 0..4 {
        harness.run_week(3, 0.3, 1);
        println!("community week {week}: {} votes in the database", harness.db().vote_count());
    }
    harness.db().force_aggregation(harness.now()).unwrap();

    let policies = [
        (
            "paper example (§4.2)",
            r#"
            allow if signed_by_trusted
            deny  if rating <= 4
            allow if rating > 7.5 and not behaviour("popup_ads")
            ask otherwise
            "#,
        ),
        (
            "strict corporate lockdown",
            r#"
            deny  if behaviour("keylogger") or behaviour("data_exfiltration")
            deny  if behaviour("popup_ads") or vendor_stripped
            deny  if not has_rating
            allow if rating >= 6.5 and vote_count >= 3
            deny otherwise
            "#,
        ),
    ];

    for (label, policy_text) in policies {
        println!("\n=== workstation under policy: {label} ===");
        let connector = InProcessConnector::new(Arc::clone(&harness.server), "workstation");
        let mut workstation = ReputationClient::new(connector, Arc::new(harness.clock.clone()));
        workstation
            .register_and_login(
                &format!("wkst-{}", label.len()),
                "pw",
                &format!("wkst{}@corp.example", label.len()),
            )
            .expect("workstation joins");
        workstation.set_policy_text(policy_text).expect("policy compiles");

        let mut help_desk = HelpDesk { interruptions: 0 };
        let mut allowed = 0;
        let mut denied = 0;
        for spec in harness.universe.specs.clone() {
            let outcome = workstation.handle_execution(&spec.exe, None, &mut help_desk);
            if outcome.allowed {
                allowed += 1;
            } else {
                denied += 1;
            }
        }
        println!(
            "  {allowed} allowed, {denied} denied, {} help-desk tickets out of {} executions",
            help_desk.interruptions,
            harness.universe.len()
        );
        let stats = workstation.stats();
        println!(
            "  policy decided {} executions automatically; {} server queries, {} cache hits",
            stats.policy_decisions, stats.server_queries, stats.cache_hits
        );
    }
}
