//! §2.1 live: a Sybil discrediting campaign against a community, with the
//! paper's countermeasures switched on one by one.
//!
//! Run with `cargo run --example attack_and_defense`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use softwareputation::sim::attack::{
    pick_discredit_targets, run_sybil_attack, AttackPlan, Defenses,
};
use softwareputation::sim::harness::{HarnessConfig, SimHarness};
use softwareputation::sim::metrics;
use softwareputation::sim::population::{build_population, DEFAULT_MIX};
use softwareputation::sim::universe::{Universe, UniverseConfig};

fn fresh_community(puzzle_difficulty: u8) -> SimHarness {
    let mut rng = StdRng::seed_from_u64(1906); // the Pure Food and Drug Act
    let universe = Universe::generate(
        &UniverseConfig { programs: 40, vendors: 6, ..Default::default() },
        &mut rng,
    );
    let users = build_population(50, &DEFAULT_MIX, universe.len(), 12, &mut rng);
    let mut harness = SimHarness::new(
        universe,
        users,
        &HarnessConfig { seed: 1906, puzzle_difficulty, ..Default::default() },
    );
    for _ in 0..3 {
        harness.run_week(2, 0.3, 2);
    }
    harness.db().force_aggregation(harness.now()).unwrap();
    harness
}

fn main() {
    let scenarios = [
        ("no defences", Defenses { email_dedup: false, puzzle_difficulty: 0 }),
        ("e-mail dedup", Defenses { email_dedup: true, puzzle_difficulty: 0 }),
        ("dedup + puzzles (d=10)", Defenses { email_dedup: true, puzzle_difficulty: 10 }),
    ];

    println!("attacker resources: wants 60 accounts, owns 10 e-mail addresses, 30k hash budget\n");
    for (label, defenses) in scenarios {
        let mut harness = fresh_community(defenses.puzzle_difficulty);
        let targets = pick_discredit_targets(&harness, 3);
        let before: Vec<f64> = targets
            .iter()
            .filter_map(|&t| metrics::published_rating(harness.db(), &harness.universe, t))
            .collect();

        let outcome = run_sybil_attack(
            &mut harness,
            &AttackPlan {
                targets: targets.clone(),
                desired_accounts: 60,
                emails_available: 10,
                hash_budget: 30_000,
                push_score: 1,
            },
            &defenses,
        );
        harness.db().force_aggregation(harness.now()).unwrap();
        let after: Vec<f64> = targets
            .iter()
            .filter_map(|&t| metrics::published_rating(harness.db(), &harness.universe, t))
            .collect();

        let distortion: f64 = before.iter().zip(&after).map(|(b, a)| (b - a).abs()).sum::<f64>()
            / before.len().max(1) as f64;

        println!("=== {label} ===");
        println!(
            "  sybil accounts: {} | e-mails burned: {} | hashes spent: {}",
            outcome.accounts_created, outcome.emails_used, outcome.hash_cost
        );
        println!("  mean rating distortion on the 3 best programs: {distortion:.2} points");
        for (i, (&b, &a)) in before.iter().zip(&after).enumerate() {
            println!("    target {i}: {b:.2} → {a:.2}");
        }
        println!();
    }
    println!("(one vote per account per program and the +5/week trust cap are always enforced)");
}
