//! §5 future work, live: a runtime-analysis sandbox turns unobserved
//! behaviour into hard evidence, and an expert feed protects subscribers
//! at cold start.
//!
//! Run with `cargo run --example runtime_analysis`.

use std::sync::Arc;

use softwareputation::analysis::markers::embed_markers;
use softwareputation::analysis::{AnalysisService, Sandbox};
use softwareputation::client::client::{PromptContext, RatingSubmission, UserAgent, UserChoice};
use softwareputation::client::{InProcessConnector, ReputationClient};
use softwareputation::core::clock::SimClock;
use softwareputation::core::db::ReputationDb;
use softwareputation::core::identity::SyntheticExecutable;
use softwareputation::proto::message::SoftwareInfo;
use softwareputation::proto::{Request, Response};
use softwareputation::server::{ReputationServer, ServerConfig};

struct Quiet;
impl UserAgent for Quiet {
    fn decide(&mut self, _ctx: &PromptContext) -> UserChoice {
        UserChoice::AllowOnce
    }
    fn rate(&mut self, _f: &str, _r: Option<&SoftwareInfo>) -> Option<RatingSubmission> {
        None
    }
}

fn main() {
    let clock = SimClock::new();
    let server = Arc::new(ReputationServer::new(
        ReputationDb::in_memory("analysis-pepper"),
        Arc::new(clock.clone()),
        ServerConfig {
            puzzle_difficulty: 0,
            analyzer_token: Some("lab-shared-secret".into()),
            ..ServerConfig::default()
        },
        5,
    ));

    // A "free codec pack" that quietly exfiltrates data. Nobody has voted
    // on it yet — the §1 problem case.
    let mut body = vec![0u8; 200];
    embed_markers(&mut body, &["popup_ads".into(), "data_exfiltration".into()]);
    let codec = SyntheticExecutable::new("free-codec-pack.exe", "QuickMedia", "1.1", body);
    println!("fresh release: {} ({})", codec.file_name, codec.id_sha1().short());

    // --- The sandbox analyses it and submits hard evidence --------------
    let transport = {
        let server = Arc::clone(&server);
        move |req: &Request| -> Response { server.handle(req, "analysis-lab") }
    };
    let mut lab =
        AnalysisService::new(Sandbox::default(), "sandbox-v1", "lab-shared-secret", transport);
    let report = lab.analyse_and_submit(&codec);
    println!(
        "sandbox observed: {:?} in {} instructions (truncated: {})",
        report.behaviours, report.instructions_executed, report.truncated
    );
    assert_eq!(lab.submitted(), 1);

    // --- A client's policy acts on the verified evidence -----------------
    let connector = InProcessConnector::new(Arc::clone(&server), "workstation");
    let mut client = ReputationClient::new(connector, Arc::new(clock.clone()));
    client
        .set_policy_text(
            r#"
            deny if verified("data_exfiltration") or verified("keylogger")
            ask otherwise
            "#,
        )
        .unwrap();
    let outcome = client.handle_execution(&codec, None, &mut Quiet);
    println!(
        "policy verdict on first-ever execution: {} (source {:?})",
        if outcome.allowed { "RAN" } else { "BLOCKED" },
        outcome.source
    );
    assert!(!outcome.allowed, "verified exfiltration blocks without a single vote");

    // --- An expert feed protects a subscriber too (§4.2) -----------------
    let connector = InProcessConnector::new(Arc::clone(&server), "expert-host");
    let mut expert = ReputationClient::new(connector, Arc::new(clock.clone()));
    expert.register_and_login("sec_team", "pw", "sec@corp.example").unwrap();
    expert.create_feed("sec-advisories").unwrap();
    expert
        .publish_feed_entry(
            "sec-advisories",
            &codec.id_sha1().to_hex(),
            1.5,
            vec!["data_exfiltration".into()],
        )
        .unwrap();
    println!("sec_team published a 1.5/10 advisory into feed 'sec-advisories'");

    let connector = InProcessConnector::new(Arc::clone(&server), "subscriber-host");
    let mut subscriber = ReputationClient::new(connector, Arc::new(clock.clone()));
    subscriber.subscribe_feed("sec-advisories");
    subscriber.set_policy_text("deny if feed_rating <= 4\nask otherwise").unwrap();
    let outcome = subscriber.handle_execution(&codec, None, &mut Quiet);
    println!(
        "subscriber verdict: {} (source {:?})",
        if outcome.allowed { "RAN" } else { "BLOCKED" },
        outcome.source
    );
    assert!(!outcome.allowed);

    println!(
        "\nboth §4.2 subscriptions and §5 hard evidence protect before any community votes exist"
    );
}
