//! Quickstart: the paper's §3.1 flow, end to end, in one file.
//!
//! 1. Stand up a reputation server.
//! 2. Two users join the community and rate a bundled adware installer.
//! 3. The 24 h aggregation batch publishes the rating.
//! 4. A third user's client intercepts the installer's execution, shows
//!    the community's verdict, and the user blocks it — before it ever
//!    runs ("allowing them to stop questionable software before it enters
//!    their computer", §1).
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;

use softwareputation::client::client::{PromptContext, RatingSubmission, UserAgent, UserChoice};
use softwareputation::client::{DecisionSource, InProcessConnector, ReputationClient};
use softwareputation::core::clock::SimClock;
use softwareputation::core::db::ReputationDb;
use softwareputation::core::identity::SyntheticExecutable;
use softwareputation::proto::message::SoftwareInfo;
use softwareputation::proto::{Request, Response};
use softwareputation::server::{ReputationServer, ServerConfig};

/// A user who reads the dialog and blocks anything rated 4 or below.
struct CautiousUser;

impl UserAgent for CautiousUser {
    fn decide(&mut self, ctx: &PromptContext) -> UserChoice {
        println!("  [dialog] {} — pending execution", ctx.file_name);
        if let Some(report) = &ctx.report {
            if let Some(rating) = report.rating {
                println!(
                    "  [dialog] community rating: {rating:.1}/10 from {} votes",
                    report.vote_count
                );
            }
            for behaviour in &report.behaviours {
                println!("  [dialog] reported behaviour: {behaviour}");
            }
            for comment in &report.comments {
                println!("  [dialog] \"{}\" — {}", comment.text, comment.author);
            }
            if report.rating.is_some_and(|r| r <= 4.0) {
                println!("  [dialog] user clicks DENY (and blacklists it)");
                return UserChoice::DenyAlways;
            }
        } else {
            println!("  [dialog] no community information yet");
        }
        println!("  [dialog] user clicks ALLOW");
        UserChoice::AllowOnce
    }

    fn rate(&mut self, _file: &str, _report: Option<&SoftwareInfo>) -> Option<RatingSubmission> {
        None
    }
}

fn main() {
    // --- 1. The server --------------------------------------------------
    let clock = SimClock::new();
    let server = Arc::new(ReputationServer::new(
        ReputationDb::in_memory("quickstart-pepper"),
        Arc::new(clock.clone()),
        ServerConfig { puzzle_difficulty: 4, ..ServerConfig::default() },
        7,
    ));
    println!("server up (registration puzzles at difficulty 4)");

    // --- 2. The questionable installer ----------------------------------
    let installer = SyntheticExecutable::new(
        "free-smileys-setup.exe",
        "BrightAds Media",
        "2.4",
        b"installer bytes bundling an ad engine".to_vec(),
    );
    println!("installer fingerprint (SHA-1): {}", installer.id_sha1().to_hex());

    // --- 3. Early adopters rate it --------------------------------------
    for (name, score, behaviours, comment) in [
        (
            "erika",
            2u8,
            vec!["popup_ads", "tracking"],
            "Shows pop-ups every few minutes and phones home.",
        ),
        (
            "sven",
            3u8,
            vec!["popup_ads", "incomplete_uninstall"],
            "The uninstaller leaves the ad engine behind.",
        ),
    ] {
        let connector = InProcessConnector::new(Arc::clone(&server), name);
        let mut member = ReputationClient::new(connector, Arc::new(clock.clone()));
        member.register_and_login(name, "pw", &format!("{name}@example.se")).expect("member joins");

        // Report the metadata + vote through the protocol.
        let session_vote = Request::SubmitVote {
            session: String::new(), // filled below via the raw API for clarity
            software_id: installer.id_sha1().to_hex(),
            score,
            behaviours: behaviours.iter().map(|s| s.to_string()).collect(),
        };
        // The client API wraps all of this; here we drive the raw
        // protocol once so the example shows the wire messages too.
        let _ = &session_vote;
        server
            .db()
            .register_software(
                &installer.id_sha1().to_hex(),
                &installer.file_name,
                installer.file_size(),
                installer.company.clone(),
                installer.version.clone(),
                server.now(),
            )
            .unwrap();
        server
            .db()
            .submit_vote(
                name,
                &installer.id_sha1().to_hex(),
                score,
                behaviours.iter().map(|s| s.to_string()).collect(),
                server.now(),
            )
            .unwrap();
        server
            .db()
            .submit_comment(name, &installer.id_sha1().to_hex(), comment, server.now())
            .unwrap();
        println!("{name} voted {score}/10 and commented");
    }

    // --- 4. The 24 h batch publishes the rating --------------------------
    clock.advance_days(1);
    let recomputed = server.tick();
    println!("aggregation batch ran: {recomputed} rating(s) recomputed");

    // --- 5. A new user's client intercepts the execution ----------------
    let connector = InProcessConnector::new(Arc::clone(&server), "newcomer-host");
    let mut newcomer = ReputationClient::new(connector, Arc::new(clock.clone()));
    newcomer.register_and_login("newcomer", "pw", "newcomer@example.se").expect("newcomer joins");

    println!("\nnewcomer double-clicks {} …", installer.file_name);
    let outcome = newcomer.handle_execution(&installer, None, &mut CautiousUser);
    println!(
        "\nverdict: {} (decided by {:?})",
        if outcome.allowed { "RAN" } else { "BLOCKED" },
        outcome.source
    );
    assert!(!outcome.allowed, "the community warning prevents the installation");

    // The blacklist now decides instantly, with no server round-trip.
    let outcome = newcomer.handle_execution(&installer, None, &mut CautiousUser);
    assert_eq!(outcome.source, DecisionSource::Blacklist);
    println!("second attempt auto-blocked by the local blacklist");

    // And the server never learned anything that links the newcomer to a
    // host: the stored record is username + hashes + timestamps only.
    let record = server.db().user("newcomer").unwrap().unwrap();
    assert!(!record.email_digest.contains('@'));
    println!("\nstored user record is privacy-minimal: {record:?}");

    // Show what actually travels on the wire.
    let query = Request::QuerySoftware { software_id: installer.id_sha1().to_hex() };
    println!("\nwire request:  {}", query.encode());
    let response = server.handle(&query, "demo");
    if let Response::Software(info) = &response {
        println!("wire response: {}", Response::Software(info.clone()).encode());
    }
}
