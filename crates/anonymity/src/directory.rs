//! The relay directory clients build circuits from.

use rand::seq::SliceRandom;
use rand::RngCore;

use softrep_crypto::stream::StreamKey;

use crate::circuit::Circuit;
use crate::relay::{Relay, RelayId};

/// A directory of available relays.
#[derive(Default)]
pub struct RelayDirectory {
    relays: Vec<Relay>,
}

impl RelayDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        RelayDirectory::default()
    }

    /// Bootstrap a directory with `n` fresh relays.
    pub fn with_relays(n: usize, rng: &mut impl RngCore) -> Self {
        let mut dir = RelayDirectory::new();
        for i in 0..n {
            dir.register(Relay::new(format!("relay-{i:03}"), StreamKey::random(rng)));
        }
        dir
    }

    /// Add a relay. Replaces any previous relay with the same id.
    pub fn register(&mut self, relay: Relay) {
        self.relays.retain(|r| r.id() != relay.id());
        self.relays.push(relay);
    }

    /// Number of registered relays.
    pub fn len(&self) -> usize {
        self.relays.len()
    }

    /// True when no relays are registered.
    pub fn is_empty(&self) -> bool {
        self.relays.is_empty()
    }

    /// Look up a relay by id.
    pub fn get(&self, id: &str) -> Option<&Relay> {
        self.relays.iter().find(|r| r.id() == id)
    }

    /// All relay ids.
    pub fn ids(&self) -> Vec<RelayId> {
        self.relays.iter().map(|r| r.id().clone()).collect()
    }

    /// Build a circuit over `hops` distinct random relays (Tor's default
    /// is 3). Returns `None` when the directory is too small.
    pub fn build_circuit(&self, hops: usize, rng: &mut impl RngCore) -> Option<Circuit> {
        if hops == 0 || self.relays.len() < hops {
            return None;
        }
        let chosen: Vec<&Relay> = self.relays.choose_multiple(rng, hops).collect();
        Some(Circuit::new(chosen.iter().map(|r| (r.id().clone(), *r.key())).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn with_relays_creates_distinct_ids() {
        let mut rng = StdRng::seed_from_u64(1);
        let dir = RelayDirectory::with_relays(10, &mut rng);
        assert_eq!(dir.len(), 10);
        let ids: HashSet<_> = dir.ids().into_iter().collect();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn build_circuit_uses_distinct_relays() {
        let mut rng = StdRng::seed_from_u64(2);
        let dir = RelayDirectory::with_relays(10, &mut rng);
        for _ in 0..20 {
            let circuit = dir.build_circuit(3, &mut rng).unwrap();
            let path = circuit.path();
            let distinct: HashSet<_> = path.iter().collect();
            assert_eq!(distinct.len(), 3, "no relay may appear twice in a path");
        }
    }

    #[test]
    fn build_circuit_fails_when_too_small() {
        let mut rng = StdRng::seed_from_u64(3);
        let dir = RelayDirectory::with_relays(2, &mut rng);
        assert!(dir.build_circuit(3, &mut rng).is_none());
        assert!(dir.build_circuit(0, &mut rng).is_none());
        assert!(dir.build_circuit(2, &mut rng).is_some());
    }

    #[test]
    fn register_replaces_same_id() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut dir = RelayDirectory::new();
        assert!(dir.is_empty());
        dir.register(Relay::new("a", StreamKey::random(&mut rng)));
        let new_key = StreamKey::random(&mut rng);
        dir.register(Relay::new("a", new_key));
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.get("a").unwrap().key().as_bytes(), new_key.as_bytes());
        assert!(dir.get("missing").is_none());
    }
}
