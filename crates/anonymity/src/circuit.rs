//! Client-side circuit construction: layered onion wrapping.

use rand::RngCore;

use softrep_crypto::stream::{seal, StreamKey};

use crate::relay::{RelayId, LAYER_MAGIC, TAG_EXIT, TAG_FORWARD};

/// A built circuit: an ordered relay path with the per-hop layer keys.
///
/// The first element is the entry (guard) relay, the last is the exit.
#[derive(Clone)]
pub struct Circuit {
    hops: Vec<(RelayId, StreamKey)>,
}

impl Circuit {
    /// Build a circuit over the given hops (entry first). Panics on an
    /// empty path — a zero-hop circuit is a direct connection, which is
    /// exactly what the caller is trying to avoid.
    pub fn new(hops: Vec<(RelayId, StreamKey)>) -> Self {
        assert!(!hops.is_empty(), "a circuit needs at least one hop");
        Circuit { hops }
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True when the circuit has no hops (cannot occur after `new`).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The entry relay the client talks to directly.
    pub fn entry(&self) -> &RelayId {
        &self.hops[0].0
    }

    /// The exit relay that delivers to the destination.
    pub fn exit(&self) -> &RelayId {
        &self.hops[self.hops.len() - 1].0
    }

    /// The relay path, entry first.
    pub fn path(&self) -> Vec<RelayId> {
        self.hops.iter().map(|(id, _)| id.clone()).collect()
    }

    /// Wrap `payload` in one layer per hop; the result is handed to the
    /// entry relay. Layers are applied innermost (exit) first.
    pub fn wrap(&self, payload: &[u8], rng: &mut impl RngCore) -> Vec<u8> {
        let (_, exit_key) = &self.hops[self.hops.len() - 1];
        let mut layer = Vec::with_capacity(payload.len() + 5);
        layer.extend_from_slice(LAYER_MAGIC);
        layer.push(TAG_EXIT);
        layer.extend_from_slice(payload);
        let mut onion = seal(exit_key, &layer, rng);

        // Walk back from the next-to-last hop to the entry, each layer
        // naming its successor.
        for window in self.hops.windows(2).rev() {
            let (_, key) = &window[0];
            let (next_id, _) = &window[1];
            let mut layer = Vec::with_capacity(onion.len() + next_id.len() + 7);
            layer.extend_from_slice(LAYER_MAGIC);
            layer.push(TAG_FORWARD);
            layer.extend_from_slice(&(next_id.len() as u16).to_be_bytes());
            layer.extend_from_slice(next_id.as_bytes());
            layer.extend_from_slice(&onion);
            onion = seal(key, &layer, rng);
        }
        onion
    }
}

impl std::fmt::Debug for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Circuit({})", self.path().join(" → "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay::{PeeledLayer, Relay};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn relays(n: usize, rng: &mut StdRng) -> Vec<Relay> {
        (0..n).map(|i| Relay::new(format!("relay-{i}"), StreamKey::random(rng))).collect()
    }

    fn circuit_over(relays: &[Relay]) -> Circuit {
        Circuit::new(relays.iter().map(|r| (r.id().clone(), *r.key())).collect())
    }

    #[test]
    fn three_hop_onion_peels_in_order() {
        let mut rng = StdRng::seed_from_u64(7);
        let relays = relays(3, &mut rng);
        let circuit = circuit_over(&relays);
        assert_eq!(circuit.len(), 3);
        assert_eq!(circuit.entry(), "relay-0");
        assert_eq!(circuit.exit(), "relay-2");

        let onion = circuit.wrap(b"GET /rating/abc", &mut rng);

        let step1 = relays[0].peel(&onion).unwrap();
        let PeeledLayer::Forward { next, onion } = step1 else { panic!("expected forward") };
        assert_eq!(next, "relay-1");

        let step2 = relays[1].peel(&onion).unwrap();
        let PeeledLayer::Forward { next, onion } = step2 else { panic!("expected forward") };
        assert_eq!(next, "relay-2");

        let step3 = relays[2].peel(&onion).unwrap();
        assert_eq!(step3, PeeledLayer::Exit { payload: b"GET /rating/abc".to_vec() });
    }

    #[test]
    fn single_hop_circuit_is_just_an_exit() {
        let mut rng = StdRng::seed_from_u64(8);
        let relays = relays(1, &mut rng);
        let circuit = circuit_over(&relays);
        let onion = circuit.wrap(b"payload", &mut rng);
        assert_eq!(
            relays[0].peel(&onion).unwrap(),
            PeeledLayer::Exit { payload: b"payload".to_vec() }
        );
    }

    #[test]
    fn out_of_order_peeling_fails() {
        let mut rng = StdRng::seed_from_u64(9);
        let relays = relays(3, &mut rng);
        let circuit = circuit_over(&relays);
        let onion = circuit.wrap(b"x", &mut rng);
        // Middle and exit relays cannot peel the outer layer.
        assert!(relays[1].peel(&onion).is_none());
        assert!(relays[2].peel(&onion).is_none());
    }

    #[test]
    fn layers_hide_payload_from_intermediate_relays() {
        let mut rng = StdRng::seed_from_u64(10);
        let relays = relays(3, &mut rng);
        let circuit = circuit_over(&relays);
        let payload = b"very identifiable plaintext payload";
        let onion = circuit.wrap(payload, &mut rng);

        // Neither the outer onion nor the intermediate onions contain the
        // plaintext.
        fn contains(haystack: &[u8], needle: &[u8]) -> bool {
            haystack.windows(needle.len()).any(|w| w == needle)
        }
        assert!(!contains(&onion, payload));
        let PeeledLayer::Forward { onion, .. } = relays[0].peel(&onion).unwrap() else { panic!() };
        assert!(!contains(&onion, payload));
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_circuit_panics() {
        let _ = Circuit::new(Vec::new());
    }

    #[test]
    fn debug_renders_path() {
        let mut rng = StdRng::seed_from_u64(11);
        let relays = relays(2, &mut rng);
        let circuit = circuit_over(&relays);
        assert_eq!(format!("{circuit:?}"), "Circuit(relay-0 → relay-1)");
    }
}
