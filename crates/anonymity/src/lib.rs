#![warn(missing_docs)]

//! Tor-style anonymity substrate (§2.2 of the paper).
//!
//! "Protection of users' anonymity could be established by utilizing
//! distributed anonymity services, such as Tor, for all communication
//! between the client and the server. This would further increase users'
//! privacy by \[hiding\] their IP address from the reputation system owner."
//!
//! The crate implements the onion-routing core needed to *demonstrate*
//! that property end-to-end (experiment D8):
//!
//! * [`relay`] — a relay holds a symmetric layer key and can peel exactly
//!   one layer off an onion, learning only its predecessor and successor.
//! * [`circuit`] — the client-side builder: pick a path, wrap the payload
//!   in one encryption layer per hop (innermost = exit).
//! * [`directory`] — the relay directory clients choose paths from.
//! * [`network`] — a simulated network that routes onions hop by hop and
//!   records exactly what every party observed, so the linkability audit
//!   can be run as an assertion rather than an argument.
//!
//! DESIGN.md invariant 9: only the designated relay can peel each layer;
//! the exit message equals the original plaintext; relays learn
//! predecessor and successor only.

pub mod circuit;
pub mod directory;
pub mod network;
pub mod relay;

pub use circuit::Circuit;
pub use directory::RelayDirectory;
pub use network::{MixNetwork, Observation, RouteOutcome};
pub use relay::{PeeledLayer, Relay, RelayId};
