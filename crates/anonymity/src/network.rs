//! A simulated routed network with full observation logging.
//!
//! Routes an onion from a named client through the relay path to the
//! destination, recording what **every** party could observe: each relay
//! sees its predecessor and successor; the destination sees only the exit
//! relay and the plaintext. Experiment D8 asserts over these logs instead
//! of arguing informally.

use rand::RngCore;

use crate::circuit::Circuit;
use crate::directory::RelayDirectory;
use crate::relay::{PeeledLayer, RelayId};

/// One party's view of one message transit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// The observing party ("relay-007" or "destination").
    pub observer: String,
    /// Who handed the observer the message (an address it can see).
    pub previous_hop: String,
    /// Where the observer sent it next (None for the destination).
    pub next_hop: Option<String>,
    /// Whether the observer could read the plaintext payload.
    pub saw_plaintext: bool,
}

/// Result of routing one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteOutcome {
    /// Plaintext delivered to the destination.
    pub delivered_payload: Vec<u8>,
    /// The source address as seen by the destination.
    pub source_seen_by_destination: String,
    /// Every party's observation, in transit order.
    pub observations: Vec<Observation>,
}

/// Routing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A named relay is not in the directory.
    UnknownRelay(RelayId),
    /// A relay failed to peel its layer (corruption or mis-addressing).
    PeelFailed(RelayId),
    /// The path exceeded the hop budget (routing loop).
    TooManyHops,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownRelay(id) => write!(f, "unknown relay {id}"),
            RouteError::PeelFailed(id) => write!(f, "relay {id} could not peel its layer"),
            RouteError::TooManyHops => f.write_str("hop budget exceeded"),
        }
    }
}

impl std::error::Error for RouteError {}

/// The simulated mix network.
pub struct MixNetwork {
    directory: RelayDirectory,
    max_hops: usize,
}

impl MixNetwork {
    /// Wrap a directory into a routable network.
    pub fn new(directory: RelayDirectory) -> Self {
        MixNetwork { directory, max_hops: 16 }
    }

    /// The relay directory (for circuit building).
    pub fn directory(&self) -> &RelayDirectory {
        &self.directory
    }

    /// Send `payload` from `client_address` through `circuit`; the exit
    /// delivers to the destination. Returns the delivery plus the complete
    /// observation log.
    pub fn route(
        &self,
        client_address: &str,
        circuit: &Circuit,
        payload: &[u8],
        rng: &mut impl RngCore,
    ) -> Result<RouteOutcome, RouteError> {
        let mut onion = circuit.wrap(payload, rng);
        let mut current = circuit.entry().clone();
        let mut previous = client_address.to_string();
        let mut observations = Vec::new();

        for _ in 0..self.max_hops {
            let relay = self
                .directory
                .get(&current)
                .ok_or_else(|| RouteError::UnknownRelay(current.clone()))?;
            match relay.peel(&onion).ok_or_else(|| RouteError::PeelFailed(current.clone()))? {
                PeeledLayer::Forward { next, onion: inner } => {
                    observations.push(Observation {
                        observer: current.clone(),
                        previous_hop: previous.clone(),
                        next_hop: Some(next.clone()),
                        saw_plaintext: false,
                    });
                    previous = current;
                    current = next;
                    onion = inner;
                }
                PeeledLayer::Exit { payload: delivered } => {
                    observations.push(Observation {
                        observer: current.clone(),
                        previous_hop: previous.clone(),
                        next_hop: Some("destination".into()),
                        // The exit relay forwards plaintext — Tor's known
                        // property; the payload itself must not identify
                        // the client.
                        saw_plaintext: true,
                    });
                    observations.push(Observation {
                        observer: "destination".into(),
                        previous_hop: current.clone(),
                        next_hop: None,
                        saw_plaintext: true,
                    });
                    return Ok(RouteOutcome {
                        delivered_payload: delivered,
                        source_seen_by_destination: current,
                        observations,
                    });
                }
            }
        }
        Err(RouteError::TooManyHops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network(relays: usize, seed: u64) -> (MixNetwork, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dir = RelayDirectory::with_relays(relays, &mut rng);
        (MixNetwork::new(dir), rng)
    }

    #[test]
    fn delivery_preserves_payload() {
        let (net, mut rng) = network(8, 1);
        let circuit = net.directory().build_circuit(3, &mut rng).unwrap();
        let outcome =
            net.route("10.0.0.42", &circuit, b"<request type=\"query\"/>", &mut rng).unwrap();
        assert_eq!(outcome.delivered_payload, b"<request type=\"query\"/>");
    }

    #[test]
    fn destination_never_sees_client_address() {
        let (net, mut rng) = network(8, 2);
        for _ in 0..10 {
            let circuit = net.directory().build_circuit(3, &mut rng).unwrap();
            let outcome = net.route("203.0.113.7", &circuit, b"payload", &mut rng).unwrap();
            assert_eq!(&outcome.source_seen_by_destination, circuit.exit());
            assert_ne!(outcome.source_seen_by_destination, "203.0.113.7");
            // The client address appears only in the entry relay's view.
            let seers: Vec<&Observation> =
                outcome.observations.iter().filter(|o| o.previous_hop == "203.0.113.7").collect();
            assert_eq!(seers.len(), 1);
            assert_eq!(&seers[0].observer, circuit.entry());
            assert!(!seers[0].saw_plaintext, "the entry relay cannot read the payload");
        }
    }

    #[test]
    fn only_exit_and_destination_see_plaintext() {
        let (net, mut rng) = network(8, 3);
        let circuit = net.directory().build_circuit(3, &mut rng).unwrap();
        let outcome = net.route("client", &circuit, b"secret", &mut rng).unwrap();
        let plaintext_seers: Vec<&str> = outcome
            .observations
            .iter()
            .filter(|o| o.saw_plaintext)
            .map(|o| o.observer.as_str())
            .collect();
        assert_eq!(plaintext_seers, vec![circuit.exit().as_str(), "destination"]);
    }

    #[test]
    fn each_relay_sees_only_neighbours() {
        let (net, mut rng) = network(8, 4);
        let circuit = net.directory().build_circuit(3, &mut rng).unwrap();
        let path = circuit.path();
        let outcome = net.route("client", &circuit, b"x", &mut rng).unwrap();
        // Middle relay: previous = entry, next = exit; never the client.
        let middle = &outcome.observations[1];
        assert_eq!(middle.observer, path[1]);
        assert_eq!(middle.previous_hop, path[0]);
        assert_eq!(middle.next_hop.as_deref(), Some(path[2].as_str()));
    }

    #[test]
    fn unknown_relay_is_an_error() {
        let (net, mut rng) = network(3, 5);
        let mut bad_rng = StdRng::seed_from_u64(99);
        let foreign_dir = RelayDirectory::with_relays(20, &mut bad_rng);
        // Build a circuit over relays the network doesn't know (ids beyond
        // relay-002 exist only in the foreign directory).
        let circuit = foreign_dir.build_circuit(5, &mut bad_rng).unwrap();
        let result = net.route("client", &circuit, b"x", &mut rng);
        assert!(matches!(
            result,
            Err(RouteError::UnknownRelay(_)) | Err(RouteError::PeelFailed(_))
        ));
    }

    #[test]
    fn direct_connection_baseline_reveals_client() {
        // The contrast case for experiment D8: without the mix network the
        // destination sees the client address directly. Modelled here as a
        // 1-hop "circuit" owned by the destination itself.
        let (net, mut rng) = network(4, 6);
        let circuit = net.directory().build_circuit(1, &mut rng).unwrap();
        let outcome = net.route("198.51.100.9", &circuit, b"x", &mut rng).unwrap();
        // With a single hop the entry == exit relay sees both the client
        // address and the plaintext — the linkability the paper warns of.
        let entry_view = &outcome.observations[0];
        assert_eq!(entry_view.previous_hop, "198.51.100.9");
        assert!(entry_view.saw_plaintext);
    }
}
