//! Relays: one symmetric layer key, one peel operation.

use softrep_crypto::stream::{open, StreamKey};

/// Relay identifier (its "address" in the simulated network).
pub type RelayId = String;

/// What a relay finds after peeling its layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeeledLayer {
    /// Pass the remaining onion to the next relay.
    Forward {
        /// The successor relay.
        next: RelayId,
        /// The remaining onion bytes.
        onion: Vec<u8>,
    },
    /// This relay is the exit: deliver the plaintext to the destination.
    Exit {
        /// The original request plaintext.
        payload: Vec<u8>,
    },
}

/// Layer-type tags inside the decrypted layer.
pub(crate) const TAG_FORWARD: u8 = 0;
pub(crate) const TAG_EXIT: u8 = 1;

/// Magic prefix authenticated-by-structure: a layer decrypted with the
/// wrong key matches these four bytes with probability 2^-32, which makes
/// "only the designated relay can peel" hold in practice even though the
/// stream cipher itself is unauthenticated.
pub(crate) const LAYER_MAGIC: &[u8; 4] = b"ONI1";

/// A mix relay.
#[derive(Clone)]
pub struct Relay {
    id: RelayId,
    key: StreamKey,
}

impl Relay {
    /// Create a relay with identifier `id` and layer key `key`.
    pub fn new(id: impl Into<RelayId>, key: StreamKey) -> Self {
        Relay { id: id.into(), key }
    }

    /// This relay's identifier.
    pub fn id(&self) -> &RelayId {
        &self.id
    }

    /// The layer key (needed by circuit builders; in a real deployment
    /// this would be negotiated per circuit via key exchange).
    pub fn key(&self) -> &StreamKey {
        &self.key
    }

    /// Peel one layer. Returns `None` when the onion was not encrypted to
    /// this relay (wrong key) or is structurally invalid — invariant 9's
    /// "only the designated relay can peel each layer".
    pub fn peel(&self, onion: &[u8]) -> Option<PeeledLayer> {
        let layer = open(&self.key, onion)?;
        let rest = layer.strip_prefix(LAYER_MAGIC.as_slice())?;
        let (&tag, rest) = rest.split_first()?;
        match tag {
            TAG_FORWARD => {
                if rest.len() < 2 {
                    return None;
                }
                let id_len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
                let rest = &rest[2..];
                if rest.len() < id_len {
                    return None;
                }
                let next = String::from_utf8(rest[..id_len].to_vec()).ok()?;
                Some(PeeledLayer::Forward { next, onion: rest[id_len..].to_vec() })
            }
            TAG_EXIT => Some(PeeledLayer::Exit { payload: rest.to_vec() }),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Relay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Relay({})", self.id) // never print key material
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use softrep_crypto::stream::seal;

    #[test]
    fn peel_rejects_wrong_key() {
        let mut rng = StdRng::seed_from_u64(1);
        let r1 = Relay::new("r1", StreamKey::random(&mut rng));
        let r2 = Relay::new("r2", StreamKey::random(&mut rng));

        let mut layer = LAYER_MAGIC.to_vec();
        layer.push(TAG_EXIT);
        layer.extend_from_slice(b"payload");
        let onion = seal(r1.key(), &layer, &mut rng);

        assert_eq!(r1.peel(&onion), Some(PeeledLayer::Exit { payload: b"payload".to_vec() }));
        // Wrong key fails the layer-magic check (probability 2^-32 of a
        // false accept; deterministic here with the fixed seed).
        assert!(r2.peel(&onion).is_none());
    }

    #[test]
    fn peel_rejects_truncated_onions() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = Relay::new("r", StreamKey::random(&mut rng));
        assert!(r.peel(&[]).is_none());
        assert!(r.peel(&[0u8; 10]).is_none());
    }

    #[test]
    fn forward_layer_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = Relay::new("r", StreamKey::random(&mut rng));
        let mut layer = LAYER_MAGIC.to_vec();
        layer.push(TAG_FORWARD);
        layer.extend_from_slice(&(4u16).to_be_bytes());
        layer.extend_from_slice(b"next");
        layer.extend_from_slice(b"inner onion bytes");
        let onion = seal(r.key(), &layer, &mut rng);
        match r.peel(&onion).unwrap() {
            PeeledLayer::Forward { next, onion } => {
                assert_eq!(next, "next");
                assert_eq!(onion, b"inner onion bytes");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn debug_never_leaks_keys() {
        let mut rng = StdRng::seed_from_u64(4);
        let r = Relay::new("guard-1", StreamKey::random(&mut rng));
        let rendered = format!("{r:?}");
        assert_eq!(rendered, "Relay(guard-1)");
    }
}
