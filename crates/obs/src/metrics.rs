//! Lock-cheap metrics: counters, gauges, log-linear histograms, and the
//! registry that renders them as a Prometheus-style text exposition.
//!
//! Every metric is a fistful of `AtomicU64`s behind an `Arc`. Call sites
//! register once (a short mutex acquisition on a startup path) and keep
//! the `Arc`; recording afterwards is relaxed atomics only, so metrics can
//! be updated inside existing critical sections without widening them.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depths, tracked-set
/// sizes, lag).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile error
/// at `2^-SUB_BITS` (12.5%).
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range: the first `SUB` values map
/// directly, then `64 - SUB_BITS` octaves of `SUB` sub-buckets each.
pub const HISTOGRAM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// The bucket index recording value `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    // v >= SUB, so leading_zeros <= 60 and exp >= SUB_BITS.
    let exp = 63 - v.leading_zeros();
    let sub = ((v >> (exp - SUB_BITS)) as usize) - SUB;
    SUB + (exp - SUB_BITS) as usize * SUB + sub
}

/// The largest value mapping to bucket `i` (the bucket's inclusive upper
/// bound, i.e. the Prometheus `le` edge).
fn bucket_bound(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let exp = SUB_BITS + ((i - SUB) / SUB) as u32;
    let sub = ((i - SUB) % SUB) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    let lower = (1u64 << exp).saturating_add(sub.saturating_mul(width));
    lower.saturating_add(width - 1)
}

/// A log-linear histogram over `u64` samples (latencies in microseconds,
/// depths, byte counts). Fixed bucket layout, all-atomic recording, 12.5%
/// worst-case relative error on quantile readout.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample. Three relaxed atomic adds; never blocks.
    pub fn record(&self, v: u64) {
        if let Some(bucket) = self.buckets.get(bucket_index(v)) {
            bucket.fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy (bucket counts are read individually, so a
    /// snapshot taken during concurrent recording may be mid-update by a
    /// handful of samples; totals are recomputed from the buckets so the
    /// snapshot is always self-consistent).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot { buckets, count, sum: self.sum.load(Ordering::Relaxed) }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).finish()
    }
}

/// A frozen copy of a [`Histogram`], supporting quantile readout and
/// merging (shard aggregation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: vec![0; HISTOGRAM_BUCKETS], count: 0, sum: 0 }
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The `q`-quantile (0.0–1.0) as the upper bound of the bucket holding
    /// the rank-`⌈q·n⌉` sample — an overestimate by at most the bucket
    /// width (12.5% relative). 0 for an empty snapshot; `q` outside
    /// [0, 1] is clamped.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(*n);
            if cumulative >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Pointwise sum of two snapshots (commutative and associative, which
    /// is what makes per-shard histograms mergeable — property-tested in
    /// `tests/properties.rs`).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> =
            self.buckets.iter().zip(&other.buckets).map(|(a, b)| a.saturating_add(*b)).collect();
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
        }
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs, in
    /// ascending bound order — the exposition's `le` series.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            if *n > 0 {
                cumulative = cumulative.saturating_add(*n);
                out.push((bucket_bound(i), cumulative));
            }
        }
        out
    }

    /// Inclusive upper bound of the bucket that recorded value `v` (test
    /// support: the tightest claim a quantile readout can make).
    pub fn bound_of(v: u64) -> u64 {
        bucket_bound(bucket_index(v))
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The metric registry: named metrics, registered once, rendered as one
/// text exposition. Registration takes the registry mutex; recording
/// through the returned `Arc`s never does.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<&'static str, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, creating it on first use. A name
    /// previously registered as a different kind returns a detached
    /// metric (recorded values go nowhere) rather than panicking.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock();
        match metrics.entry(name).or_insert_with(|| Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::default()),
        }
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock();
        match metrics.entry(name).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::default()),
        }
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock();
        match metrics.entry(name).or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Render every registered metric in Prometheus text exposition
    /// format, families sorted by name. Histograms render their non-empty
    /// cumulative `le` buckets, `_sum`, `_count`, and `_p50`/`_p95`/`_p99`
    /// gauge series (quantiles precomputed server-side so a bare `curl`
    /// answers the latency question without a query engine).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        for (name, metric) in self.metrics.lock().iter() {
            render_metric(&mut out, name, metric);
        }
        out
    }
}

fn render_metric(out: &mut String, name: &str, metric: &Metric) {
    match metric {
        Metric::Counter(c) => {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        Metric::Gauge(g) => {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        Metric::Histogram(h) => {
            let snap = h.snapshot();
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (bound, cumulative) in snap.cumulative_buckets() {
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count());
            let _ = writeln!(out, "{name}_sum {}", snap.sum());
            let _ = writeln!(out, "{name}_count {}", snap.count());
            let quantiles = [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)];
            for (suffix, q) in quantiles {
                let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
                let _ = writeln!(out, "{name}_{suffix} {}", snap.quantile(q));
            }
        }
    }
}

/// Append one externally-snapshotted gauge series to an exposition buffer
/// — how the pre-existing coherent snapshots (`ServerStats`,
/// `Store::stats`, `AggregationStats`, the flood guard) fold into the
/// same `/metrics` page without being re-homed into atomics.
pub fn render_external_gauge(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Counter-typed sibling of [`render_external_gauge`].
pub fn render_external_counter(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bound_agree() {
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 65_535, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < HISTOGRAM_BUCKETS, "index {i} out of range for {v}");
            assert!(bucket_bound(i) >= v, "bound {} below value {v}", bucket_bound(i));
            if i > 0 {
                assert!(bucket_bound(i - 1) < v, "value {v} should not fit bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn bounds_are_strictly_increasing() {
        let mut previous = None;
        for i in 0..HISTOGRAM_BUCKETS {
            let bound = bucket_bound(i);
            if let Some(p) = previous {
                assert!(bound > p, "bucket {i} bound {bound} <= previous {p}");
            }
            previous = Some(bound);
        }
        assert_eq!(bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("softrep_test_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("softrep_test_depth");
        g.set(42);
        assert_eq!(g.get(), 42);
        g.set(3);
        assert_eq!(g.get(), 3);
        // Re-registration returns the same underlying metric.
        assert_eq!(r.counter("softrep_test_total").get(), 5);
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum(), 500_500);
        // p50 covers the median (500) within one bucket width.
        let p50 = snap.quantile(0.5);
        assert!(p50 >= 500, "p50 {p50} below the true median");
        assert!(p50 <= 640, "p50 {p50} overshoots the 12.5% bucket error");
        assert!(snap.quantile(1.0) >= 1000);
        assert_eq!(snap.quantile(0.0), HistogramSnapshot::bound_of(1));
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.99), 0);
        assert!(snap.cumulative_buckets().is_empty());
    }

    #[test]
    fn merge_is_pointwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(10_000);
        b.record(10);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 10_020);
        assert_eq!(merged, b.snapshot().merge(&a.snapshot()), "merge commutes");
    }

    #[test]
    fn kind_collision_yields_detached_metric_not_panic() {
        let r = Registry::new();
        let c = r.counter("softrep_test_kind");
        c.inc();
        let g = r.gauge("softrep_test_kind"); // wrong kind: detached
        g.set(99);
        assert_eq!(r.counter("softrep_test_kind").get(), 1, "original survives");
    }

    #[test]
    fn exposition_is_well_formed() {
        let r = Registry::new();
        r.counter("softrep_requests_total").add(7);
        r.gauge("softrep_depth").set(3);
        let h = r.histogram("softrep_latency_us");
        h.record(120);
        h.record(50_000);
        let text = r.render();
        assert!(text.contains("# TYPE softrep_requests_total counter"));
        assert!(text.contains("softrep_requests_total 7"));
        assert!(text.contains("# TYPE softrep_latency_us histogram"));
        assert!(text.contains("softrep_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("softrep_latency_us_count 2"));
        assert!(text.contains("softrep_latency_us_p99"));
        // Every non-comment line is `name[{labels}] value` with a numeric
        // value — the shape the ci.sh smoke shard asserts too.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').unwrap_or_default();
            assert!(value.parse::<f64>().is_ok(), "unparseable exposition line: {line}");
        }
    }
}
