//! Observability substrate: metrics registry, tracing spans, slow-op log.
//!
//! The paper's deployment story (§2.1, §4) is a reputation server
//! absorbing vote floods and periodic aggregation under adversarial load.
//! Benchmarks prove the steady state; this crate is what makes the *live*
//! system inspectable: every layer records counters, gauges and latency
//! histograms into one process-wide [`Registry`], and the web front end
//! renders the whole thing as a Prometheus-style text exposition
//! (`GET /metrics`).
//!
//! Design constraints, in order:
//!
//! 1. **Non-blocking on hot paths.** Every record operation is a handful
//!    of relaxed atomic adds on pre-registered metrics; the only mutex in
//!    the crate guards metric *registration* (startup) and the slow-op
//!    ring (touched only when an op actually exceeded the threshold).
//!    Request-latency spans are *sampled* (default 1 in 64, see
//!    [`span::SpanFamily`]) so the two monotonic clock reads they cost
//!    stay off the nanosecond-scale request path.
//! 2. **Zero dependencies.** Like the rest of the workspace, everything —
//!    the log-linear histogram, the exposition writer — is hand-rolled.
//! 3. **No panics.** The crate is under softrep-lint's no-panic rule: a
//!    metrics bug must never take down the serving path it observes.
//!
//! Knobs (read once, at first use of the global registry):
//!
//! * `SOFTREP_SLOW_OP_MS` — spans slower than this land in the slow-op
//!   ring buffer (default 500 ms).
//! * `SOFTREP_SPAN_SAMPLE` — sample 1 in N span timings for families
//!   constructed with [`span::SpanFamily::sampled`] (default 64, clamped
//!   to a power of two; 1 = time every span).

pub mod metrics;
pub mod span;
pub mod time;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use span::{RequestScope, SlowOp, Span, SpanFamily};

use std::sync::OnceLock;

/// The process-wide registry every subsystem records into. First use
/// initialises it (and reads the env knobs); the handle is `'static`, so
/// call sites can cache the `Arc`s they register once and touch only
/// atomics afterwards.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-wide slow-op log (see [`span::SlowOpLog`]).
pub fn slow_ops() -> &'static span::SlowOpLog {
    static GLOBAL: OnceLock<span::SlowOpLog> = OnceLock::new();
    GLOBAL.get_or_init(span::SlowOpLog::from_env)
}

/// Parse a `u64` environment knob, falling back to `default` when unset
/// or malformed (observability must never abort startup).
pub(crate) fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_a_singleton() {
        let a = registry() as *const Registry;
        let b = registry() as *const Registry;
        assert_eq!(a, b);
    }

    #[test]
    fn env_u64_falls_back_on_garbage() {
        assert_eq!(env_u64("SOFTREP_OBS_TEST_UNSET_KNOB", 7), 7);
        std::env::set_var("SOFTREP_OBS_TEST_BAD_KNOB", "not-a-number");
        assert_eq!(env_u64("SOFTREP_OBS_TEST_BAD_KNOB", 9), 9);
        std::env::set_var("SOFTREP_OBS_TEST_GOOD_KNOB", " 250 ");
        assert_eq!(env_u64("SOFTREP_OBS_TEST_GOOD_KNOB", 9), 250);
    }
}
