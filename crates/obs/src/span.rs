//! Tracing spans: sampled latency timing with request-id propagation and
//! a slow-op ring buffer.
//!
//! A [`SpanFamily`] names one operation (e.g. `request`, `wal_fsync`) and
//! owns the histogram its timings land in. Families come in two speeds:
//!
//! * [`SpanFamily::sampled`] — for nanosecond-scale hot paths where even
//!   the two monotonic clock reads of a timing would show up in the
//!   benchmarks. A relaxed ticker admits 1 in N spans (N a power of two,
//!   `SOFTREP_SPAN_SAMPLE`, default 64); the rest cost one relaxed
//!   `fetch_add` and a mask.
//! * [`SpanFamily::always`] — for microsecond-and-up operations (fsync,
//!   aggregation runs) where the clock reads are noise.
//!
//! A [`Span`] records on drop, so timing wraps a scope without explicit
//! bookkeeping. Spans slower than the process-wide threshold
//! (`SOFTREP_SLOW_OP_MS`) are additionally pushed — with the current
//! request id — into the [`SlowOpLog`] ring, the "what was slow lately"
//! answer that aggregate histograms cannot give.
//!
//! Request ids are process-unique `u64`s minted at accept time and carried
//! in a thread-local by [`RequestScope`]; because the server handles each
//! connection on its own thread, a thread-local is exact, not approximate.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::Histogram;
use crate::time::Stopwatch;

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// Mint a process-unique request id (non-zero; 0 means "no request").
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// The request id active on this thread, or 0 outside any request.
pub fn current_request_id() -> u64 {
    CURRENT_REQUEST.with(|c| c.get())
}

/// Guard installing a request id as this thread's current request; the
/// previous id is restored on drop, so nested scopes compose.
pub struct RequestScope {
    previous: u64,
}

impl RequestScope {
    /// Enter `request_id` on this thread.
    pub fn enter(request_id: u64) -> Self {
        let previous = CURRENT_REQUEST.with(|c| c.replace(request_id));
        RequestScope { previous }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQUEST.with(|c| c.set(self.previous));
    }
}

/// A named span family: one operation, one latency histogram, one
/// sampling policy. Construct once, store next to the code it measures.
pub struct SpanFamily {
    name: &'static str,
    hist: Arc<Histogram>,
    /// Admission mask: a span starts when `ticker & mask == 0`.
    mask: u64,
    ticker: AtomicU64,
}

impl SpanFamily {
    /// A family timing every span — for operations slow enough that two
    /// clock reads are noise.
    pub fn always(name: &'static str, hist: Arc<Histogram>) -> Self {
        SpanFamily { name, hist, mask: 0, ticker: AtomicU64::new(0) }
    }

    /// A family timing 1 in `SOFTREP_SPAN_SAMPLE` spans (default 64;
    /// values are rounded down to a power of two, minimum 1). Sampling is
    /// deterministic round-robin, not random: it needs no RNG and spreads
    /// admissions evenly under steady load.
    pub fn sampled(name: &'static str, hist: Arc<Histogram>) -> Self {
        let n = crate::env_u64("SOFTREP_SPAN_SAMPLE", 64).max(1);
        // Round down to a power of two so admission is a single mask.
        let pow2 = 1u64 << (63 - n.leading_zeros());
        SpanFamily { name, hist, mask: pow2 - 1, ticker: AtomicU64::new(0) }
    }

    /// Start a span if this one is admitted by the sampling policy. The
    /// non-admitted path is one relaxed `fetch_add` and a mask — cheap
    /// enough for the request hot path.
    pub fn maybe_start(&self) -> Option<Span<'_>> {
        if self.ticker.fetch_add(1, Ordering::Relaxed) & self.mask != 0 {
            return None;
        }
        Some(Span { family: self, watch: Stopwatch::start() })
    }

    /// The family's latency histogram (for exposition wiring).
    pub fn histogram(&self) -> &Arc<Histogram> {
        &self.hist
    }
}

impl std::fmt::Debug for SpanFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanFamily")
            .field("name", &self.name)
            .field("sample_every", &(self.mask + 1))
            .finish()
    }
}

/// A live timing; records its elapsed microseconds into the family
/// histogram on drop, and into the slow-op log if over threshold.
pub struct Span<'f> {
    family: &'f SpanFamily,
    watch: Stopwatch,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let micros = self.watch.elapsed_micros();
        self.family.hist.record(micros);
        crate::slow_ops().observe(self.family.name, micros);
    }
}

/// One operation that exceeded the slow-op threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOp {
    /// Span family name.
    pub op: &'static str,
    /// Request id active when the span ended (0 if outside a request).
    pub request_id: u64,
    /// Measured duration.
    pub micros: u64,
}

/// Capacity of the slow-op ring: enough recent history to answer "what
/// just got slow" without unbounded growth.
const SLOW_OP_CAPACITY: usize = 128;

/// Bounded ring of recent slow operations. The mutex is only taken when
/// an op actually exceeded the threshold (or on readout), so it is never
/// on a healthy hot path.
pub struct SlowOpLog {
    threshold_us: u64,
    ring: Mutex<VecDeque<SlowOp>>,
    dropped: AtomicU64,
}

impl SlowOpLog {
    /// A log with an explicit threshold (µs). `u64::MAX` disables it.
    pub fn with_threshold_us(threshold_us: u64) -> Self {
        SlowOpLog {
            threshold_us,
            ring: Mutex::new(VecDeque::with_capacity(SLOW_OP_CAPACITY)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Threshold from `SOFTREP_SLOW_OP_MS` (default 500 ms).
    pub fn from_env() -> Self {
        let ms = crate::env_u64("SOFTREP_SLOW_OP_MS", 500);
        SlowOpLog::with_threshold_us(ms.saturating_mul(1_000))
    }

    /// Record `micros` for `op` if it crossed the threshold.
    pub fn observe(&self, op: &'static str, micros: u64) {
        if micros < self.threshold_us {
            return;
        }
        let entry = SlowOp { op, request_id: current_request_id(), micros };
        let mut ring = self.ring.lock();
        if ring.len() == SLOW_OP_CAPACITY {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
    }

    /// The retained slow ops, oldest first.
    pub fn recent(&self) -> Vec<SlowOp> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Slow ops evicted from the ring to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The active threshold in microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_scope_nests_and_restores() {
        assert_eq!(current_request_id(), 0);
        let outer = next_request_id();
        let inner = next_request_id();
        assert_ne!(outer, inner);
        {
            let _a = RequestScope::enter(outer);
            assert_eq!(current_request_id(), outer);
            {
                let _b = RequestScope::enter(inner);
                assert_eq!(current_request_id(), inner);
            }
            assert_eq!(current_request_id(), outer);
        }
        assert_eq!(current_request_id(), 0);
    }

    #[test]
    fn always_family_times_every_span() {
        let hist = Arc::new(Histogram::new());
        let family = SpanFamily::always("test_always", Arc::clone(&hist));
        for _ in 0..10 {
            let span = family.maybe_start();
            assert!(span.is_some());
        }
        assert_eq!(hist.count(), 10);
    }

    #[test]
    fn sampled_family_admits_one_in_n() {
        let hist = Arc::new(Histogram::new());
        // Environment-independent: build the mask directly via `always`
        // semantics by checking the admission arithmetic of `sampled`
        // with the default knob.
        let family = SpanFamily::sampled("test_sampled", Arc::clone(&hist));
        let every = family.mask + 1;
        assert!(every.is_power_of_two());
        let mut admitted = 0;
        for _ in 0..(every * 4) {
            if let Some(_span) = family.maybe_start() {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 4, "exactly 1 in {every} spans admitted");
        assert_eq!(hist.count(), 4);
    }

    #[test]
    fn slow_op_log_thresholds_and_bounds() {
        let log = SlowOpLog::with_threshold_us(1_000);
        log.observe("fast", 999);
        assert!(log.recent().is_empty());
        for i in 0..(SLOW_OP_CAPACITY as u64 + 5) {
            log.observe("slow", 1_000 + i);
        }
        let recent = log.recent();
        assert_eq!(recent.len(), SLOW_OP_CAPACITY);
        assert_eq!(log.dropped(), 5);
        let newest = recent.last().cloned();
        assert_eq!(
            newest.map(|s| s.micros),
            Some(1_000 + SLOW_OP_CAPACITY as u64 + 4),
            "ring keeps the newest entries"
        );
    }

    #[test]
    fn slow_op_carries_request_id() {
        let log = SlowOpLog::with_threshold_us(0);
        let id = next_request_id();
        {
            let _scope = RequestScope::enter(id);
            log.observe("tagged", 123);
        }
        log.observe("untagged", 456);
        let recent = log.recent();
        assert_eq!(recent.first().map(|s| s.request_id), Some(id));
        assert_eq!(recent.get(1).map(|s| s.request_id), Some(0));
    }
}
