//! Monotonic time for latency measurement.
//!
//! This module is the **only** place outside `crates/core/src/clock.rs`
//! allowed to read an OS clock (softrep-lint's `clock` rule names both).
//! The separation is deliberate: `core::clock` models *simulated calendar
//! time* — everything the paper's semantics depend on (24 h batches,
//! weekly trust caps) is driven by an injected `Clock` so experiments stay
//! deterministic. Latency measurement is the opposite animal: it must
//! observe *real* elapsed wall time of real I/O, and injecting a simulated
//! clock into it would only ever report zeros. Keeping the monotonic read
//! behind [`Stopwatch`] means no other module grows its own `Instant::now`
//! habit, and the lint keeps every caller honest.

use std::time::Instant;

/// A started monotonic stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start measuring now.
    pub fn start() -> Self {
        Stopwatch { started: Instant::now() }
    }

    /// Microseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX` (a ~585 000-year span; saturation keeps the no-panic
    /// guarantee rather than guarding a case that cannot occur).
    pub fn elapsed_micros(&self) -> u64 {
        let micros = self.started.elapsed().as_micros();
        u64::try_from(micros).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_micros();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = sw.elapsed_micros();
        assert!(b >= a);
        assert!(b >= 2_000, "2ms sleep must register at least 2000µs, got {b}");
    }
}
