//! Client-side network chaos: a scripted fault proxy plays one planned
//! misbehaviour per accepted connection — drop before responding, truncate
//! the response frame, stall past the call deadline, answer garbage — and
//! the connector's retry taxonomy is asserted exactly: transport faults
//! retry and surface as `Exhausted` only when the budget runs out;
//! protocol violations are `Fatal` after precisely one attempt.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use softrep_client::{CallError, RetryPolicy, TcpConnector};
use softrep_proto::framing::{read_frame, write_frame};
use softrep_proto::{Request, Response};

/// What the proxy does with one accepted connection, after reading the
/// request frame.
#[derive(Clone, Copy, Debug)]
enum Plan {
    /// Answer with a well-formed response.
    Respond,
    /// Close without answering (connection drop mid-exchange).
    CloseBeforeResponse,
    /// Write a response header promising more bytes than are sent, then
    /// close (torn response frame).
    TruncateResponse,
    /// Go silent for the given milliseconds (without answering), forcing
    /// the client's call deadline to fire.
    StallMs(u64),
    /// Answer with a well-framed body that is not a protocol message.
    GarbageResponse,
    /// Answer with a frame header above the 1 MiB protocol cap.
    OversizedHeader,
    /// Answer with a well-framed body that is not UTF-8.
    NotUtf8Response,
}

/// A TCP endpoint that consumes one [`Plan`] per accepted connection (the
/// last plan repeats once the script is exhausted) and counts connections,
/// so tests can assert exactly how many attempts the connector made.
struct ChaosEndpoint {
    addr: std::net::SocketAddr,
    accepted: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosEndpoint {
    fn spawn(plans: Vec<Plan>) -> Self {
        assert!(!plans.is_empty(), "need at least one plan");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let script = Arc::new(Mutex::new(plans.into_iter().collect::<Vec<_>>()));

        let t_accepted = Arc::clone(&accepted);
        let t_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if t_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                let n = t_accepted.fetch_add(1, Ordering::SeqCst);
                let plan = {
                    let s = script.lock();
                    *s.get(n).unwrap_or_else(|| s.last().expect("non-empty script"))
                };
                // One thread per connection: a stalling plan must not
                // block the accept loop, or the client's retry could time
                // out waiting in the backlog instead of being served.
                std::thread::spawn(move || serve_one(stream, plan));
            }
        });
        ChaosEndpoint { addr, accepted, stop, thread: Some(thread) }
    }

    fn connections(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }
}

impl Drop for ChaosEndpoint {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept so the thread observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_one(stream: TcpStream, plan: Plan) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    if read_frame(&mut reader).is_err() {
        return;
    }
    match plan {
        Plan::Respond => {
            let body = Response::error("chaos-ok", "scripted success").encode();
            let _ = write_frame(&mut writer, &body);
        }
        Plan::CloseBeforeResponse => {}
        Plan::TruncateResponse => {
            let body = Response::error("chaos-torn", "you will never read this").encode();
            let _ = writer.write_all(&(body.len() as u32).to_be_bytes());
            let _ = writer.write_all(&body.as_bytes()[..body.len() / 2]);
            let _ = writer.flush();
        }
        Plan::StallMs(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
        }
        Plan::GarbageResponse => {
            let _ = write_frame(&mut writer, "<not-a-response>");
        }
        Plan::OversizedHeader => {
            let _ = writer.write_all(&(8 * 1024 * 1024u32).to_be_bytes());
            let _ = writer.flush();
        }
        Plan::NotUtf8Response => {
            let _ = writer.write_all(&4u32.to_be_bytes());
            let _ = writer.write_all(&[0xff, 0xfe, 0xfd, 0xfc]);
            let _ = writer.flush();
        }
    }
}

fn policy(max_attempts: u32, call_timeout: Duration) -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(500),
        call_timeout,
        max_attempts,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        jitter: 0.5,
        jitter_seed: 7,
    }
}

fn query() -> Request {
    Request::QuerySoftware { software_id: "cd".repeat(20) }
}

fn is_chaos_ok(response: &Response) -> bool {
    matches!(response, Response::Error { code, .. } if code == "chaos-ok")
}

/// Drops on every attempt: the budget is spent attempt-by-attempt (one
/// connection each) and the failure is `Exhausted` — explicitly retryable
/// later, with the true attempt count reported.
#[test]
fn persistent_drops_exhaust_the_budget_and_stay_retryable() {
    let endpoint = ChaosEndpoint::spawn(vec![Plan::CloseBeforeResponse]);
    let mut connector =
        TcpConnector::new(endpoint.addr, policy(3, Duration::from_secs(2))).unwrap();

    match connector.try_call(&query()) {
        Err(e @ CallError::Exhausted { attempts, .. }) => {
            assert_eq!(attempts, 3);
            assert!(e.is_retryable());
        }
        other => panic!("expected Exhausted after persistent drops, got {other:?}"),
    }
    assert_eq!(endpoint.connections(), 3, "one fresh connection per attempt");
}

/// Transient faults — a drop, then a torn response — are absorbed by the
/// retry budget: the third attempt lands and the caller sees only success.
#[test]
fn drop_then_torn_response_are_retried_to_success() {
    let endpoint = ChaosEndpoint::spawn(vec![
        Plan::CloseBeforeResponse,
        Plan::TruncateResponse,
        Plan::Respond,
    ]);
    let mut connector =
        TcpConnector::new(endpoint.addr, policy(5, Duration::from_secs(2))).unwrap();

    let response = connector.try_call(&query()).expect("retries must absorb transient chaos");
    assert!(is_chaos_ok(&response), "unexpected response: {response:?}");
    assert_eq!(endpoint.connections(), 3, "exactly two faulted attempts before success");
}

/// A stall past the call deadline is a *retryable* fault: the read times
/// out, the connection is abandoned, and the next attempt succeeds.
#[test]
fn stall_past_the_call_deadline_is_retried_not_fatal() {
    let deadline = Duration::from_millis(200);
    let endpoint = ChaosEndpoint::spawn(vec![Plan::StallMs(1_000), Plan::Respond]);
    let mut connector = TcpConnector::new(endpoint.addr, policy(4, deadline)).unwrap();

    let started = Instant::now();
    let response = connector.try_call(&query()).expect("stall must be retried");
    assert!(is_chaos_ok(&response));
    assert!(started.elapsed() >= deadline, "success cannot predate the first attempt's deadline");
    assert_eq!(endpoint.connections(), 2);
}

/// Protocol violations are fatal after exactly one attempt: a peer
/// answering garbage will answer garbage again, so the connector must not
/// spend its budget finding out. One test per violation class.
#[test]
fn garbage_response_is_fatal_after_one_attempt() {
    let endpoint = ChaosEndpoint::spawn(vec![Plan::GarbageResponse, Plan::Respond]);
    let mut connector =
        TcpConnector::new(endpoint.addr, policy(5, Duration::from_secs(2))).unwrap();

    match connector.try_call(&query()) {
        Err(e @ CallError::Fatal(_)) => assert!(!e.is_retryable()),
        other => panic!("expected Fatal on garbage, got {other:?}"),
    }
    assert_eq!(
        endpoint.connections(),
        1,
        "a protocol violation must not be retried (the Respond plan stays unused)"
    );
}

#[test]
fn oversized_response_header_is_fatal_after_one_attempt() {
    let endpoint = ChaosEndpoint::spawn(vec![Plan::OversizedHeader, Plan::Respond]);
    let mut connector =
        TcpConnector::new(endpoint.addr, policy(5, Duration::from_secs(2))).unwrap();

    match connector.try_call(&query()) {
        Err(CallError::Fatal(msg)) => {
            assert!(msg.contains("exceeds limit"), "unexpected fatal cause: {msg}")
        }
        other => panic!("expected Fatal on oversized header, got {other:?}"),
    }
    assert_eq!(endpoint.connections(), 1);
}

#[test]
fn non_utf8_response_is_fatal_after_one_attempt() {
    let endpoint = ChaosEndpoint::spawn(vec![Plan::NotUtf8Response, Plan::Respond]);
    let mut connector =
        TcpConnector::new(endpoint.addr, policy(5, Duration::from_secs(2))).unwrap();

    match connector.try_call(&query()) {
        Err(CallError::Fatal(msg)) => {
            assert!(msg.contains("UTF-8"), "unexpected fatal cause: {msg}")
        }
        other => panic!("expected Fatal on non-UTF-8 body, got {other:?}"),
    }
    assert_eq!(endpoint.connections(), 1);
}

/// After a fatal error the connector is still usable: the poisoned stream
/// was dropped, and the next call dials fresh and succeeds when the peer
/// behaves.
#[test]
fn connector_recovers_with_a_fresh_dial_after_a_fatal_error() {
    let endpoint = ChaosEndpoint::spawn(vec![Plan::GarbageResponse, Plan::Respond]);
    let mut connector =
        TcpConnector::new(endpoint.addr, policy(3, Duration::from_secs(2))).unwrap();

    assert!(matches!(connector.try_call(&query()), Err(CallError::Fatal(_))));
    assert!(!connector.is_connected(), "the desynchronized stream must be dropped");
    let response = connector.try_call(&query()).expect("fresh dial after fatal");
    assert!(is_chaos_ok(&response));
    assert_eq!(endpoint.connections(), 2);
}
