//! Socket-level tests for the resilient TCP connector: reconnect across a
//! server restart, the retryable-vs-fatal taxonomy over real sockets, and
//! interplay with the server's load shedding.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use softrep_client::{CallError, Connector, RetryPolicy, TcpConnector};
use softrep_core::clock::SimClock;
use softrep_core::db::ReputationDb;
use softrep_proto::framing::{read_frame, write_frame};
use softrep_proto::{Request, Response};
use softrep_server::tcp::{FrontendServer, TcpServer, TcpServerConfig};
use softrep_server::{ReputationServer, ServerConfig};

fn reputation_server() -> Arc<ReputationServer> {
    Arc::new(ReputationServer::new(
        ReputationDb::in_memory("client-transport-pepper"),
        Arc::new(SimClock::new()),
        ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            ..ServerConfig::default()
        },
        11,
    ))
}

fn quick_policy() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(500),
        call_timeout: Duration::from_secs(5),
        max_attempts: 8,
        base_backoff: Duration::from_millis(20),
        max_backoff: Duration::from_millis(200),
        jitter: 0.5,
        jitter_seed: 42,
    }
}

fn query() -> Request {
    Request::QuerySoftware { software_id: "ef".repeat(20) }
}

/// The headline resilience property: a connector that was mid-conversation
/// when the server restarted reconnects on the next call — the caller sees
/// only a successful response.
#[test]
fn connector_survives_a_server_restart_on_the_same_port() {
    let server = reputation_server();
    let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let addr = tcp.local_addr();

    let mut conn = TcpConnector::connect(addr, quick_policy()).unwrap();
    let resp = conn.try_call(&query()).unwrap();
    assert!(matches!(resp, Response::UnknownSoftware { .. }));
    assert!(conn.is_connected());

    // Restart: full shutdown (joins every worker), then rebind the same
    // port. SO_REUSEADDR makes the rebind race-free on Unix.
    tcp.shutdown();
    let tcp = TcpServer::spawn(Arc::clone(&server), addr).unwrap();

    // The connector's cached stream is dead; the call must detect the
    // disconnect, back off, reconnect, and succeed — invisibly.
    let resp = conn.try_call(&query()).unwrap();
    assert!(matches!(resp, Response::UnknownSoftware { .. }));
    tcp.shutdown();
}

/// While the server is down entirely, calls exhaust as retryable; once it
/// is back, the same connector recovers without being rebuilt.
#[test]
fn downtime_is_retryable_and_recovery_is_automatic() {
    let server = reputation_server();
    let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let addr = tcp.local_addr();

    let mut conn = TcpConnector::connect(addr, quick_policy()).unwrap();
    conn.try_call(&query()).unwrap();
    tcp.shutdown();

    // Server gone: every attempt is refused → Exhausted, is_retryable().
    let err = conn.try_call(&query()).expect_err("server is down");
    assert!(err.is_retryable(), "downtime must be retryable: {err}");
    let CallError::Exhausted { attempts, .. } = err else { panic!("{err}") };
    assert_eq!(attempts, 8, "every configured attempt was spent");
    assert!(!conn.is_connected());

    // Server back on the same port: next call just works.
    let tcp = TcpServer::spawn(Arc::clone(&server), addr).unwrap();
    let resp = conn.try_call(&query()).unwrap();
    assert!(matches!(resp, Response::UnknownSoftware { .. }));
    tcp.shutdown();
}

/// A peer that answers with well-framed garbage is a protocol violation:
/// fatal on the first occurrence, no retry storm against a broken server.
#[test]
fn garbage_response_is_fatal_not_retried() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let bogus = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let _ = read_frame(&mut reader).unwrap();
        write_frame(&mut writer, "<<<not a protocol message>>>").unwrap();
    });

    let mut conn = TcpConnector::connect(addr, quick_policy()).unwrap();
    let err = conn.try_call(&query()).expect_err("garbage must not parse");
    assert!(matches!(err, CallError::Fatal(_)), "got {err}");
    assert!(!err.is_retryable());
    // The poisoned stream was dropped — the connector won't silently reuse
    // a desynchronized connection.
    assert!(!conn.is_connected());
    bogus.join().unwrap();

    // The infallible facade surfaces the same failure as an error
    // response with the protocol code (now also Exhausted → unavailable,
    // since nothing listens any more — either way, never a panic).
    let resp = Connector::call(&mut conn, &query());
    assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
}

/// `TcpConnector::connect` (the eager variant) retries the initial
/// connection too: a server that comes up a moment late is not fatal.
#[test]
fn eager_connect_retries_until_the_server_is_up() {
    // Reserve a port, then free it so the connector's first attempts fail.
    let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = placeholder.local_addr().unwrap();
    drop(placeholder);

    let server = reputation_server();
    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        TcpServer::spawn(server, addr).unwrap()
    });

    let policy = RetryPolicy { max_attempts: 20, ..quick_policy() };
    let mut conn = TcpConnector::connect(addr, policy).expect("server comes up mid-retry");
    let resp = conn.try_call(&query()).unwrap();
    assert!(matches!(resp, Response::UnknownSoftware { .. }));
    starter.join().unwrap().shutdown();
}

/// The connector presents the peer's IP (not ip:port) to the server-side
/// flood guard exactly like any client: reconnecting through the resilient
/// path cannot launder a flooder's identity.
#[test]
fn reconnects_do_not_reset_the_server_side_flood_bucket() {
    let server = Arc::new(ReputationServer::new(
        ReputationDb::in_memory("client-flood-pepper"),
        Arc::new(SimClock::new()),
        ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: 2,
            flood_refill_per_hour: 1,
            ..ServerConfig::default()
        },
        11,
    ));
    let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").unwrap();

    let mut throttled = 0;
    for _ in 0..5 {
        // A brand-new connector (fresh socket, fresh ephemeral port) per
        // request — the strongest version of the reconnect trick.
        let mut conn = TcpConnector::connect(tcp.local_addr(), quick_policy()).unwrap();
        let resp = conn.try_call(&query()).unwrap();
        if matches!(resp, Response::Error { ref code, .. } if code == "throttled") {
            throttled += 1;
        }
    }
    assert_eq!(throttled, 3, "burst of 2, then throttled despite reconnects");
    assert_eq!(server.flood_guard().tracked_identities(), 1);
    tcp.shutdown();
}

/// Deadlines propagate to the socket: a server that accepts but never
/// answers trips the call timeout instead of hanging the client forever.
#[test]
fn silent_server_trips_the_call_deadline() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let silent = std::thread::spawn(move || {
        // Accept and hold the connection open, reading nothing, saying
        // nothing, until the client gives up.
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(2));
        drop(stream);
    });

    let policy =
        RetryPolicy { call_timeout: Duration::from_millis(200), max_attempts: 2, ..quick_policy() };
    let mut conn = TcpConnector::connect(addr, policy).unwrap();
    let err = conn.try_call(&query()).expect_err("silence must not hang");
    assert!(err.is_retryable(), "a timeout is worth retrying later: {err}");
    silent.join().unwrap();
}

/// A write sent to a read replica comes back as a `not-primary` redirect;
/// the connector follows it (one hop) and the caller transparently gets
/// the primary's answer. Subsequent calls go straight to the primary.
#[test]
fn connector_follows_a_not_primary_redirect_to_the_primary() {
    let primary = reputation_server();
    let primary_tcp = TcpServer::spawn(Arc::clone(&primary), "127.0.0.1:0").unwrap();

    let replica = reputation_server();
    let replica_tcp = FrontendServer::spawn_with(
        replica,
        "127.0.0.1:0",
        TcpServerConfig {
            replica_of: Some(primary_tcp.local_addr().to_string()),
            ..TcpServerConfig::default()
        },
    )
    .unwrap();

    // GetPuzzle is primary-only (it starts the write flow); pointed at
    // the replica, the connector must still land it on the primary.
    let mut conn = TcpConnector::connect(replica_tcp.local_addr(), quick_policy()).unwrap();
    let resp = conn.try_call(&Request::GetPuzzle).unwrap();
    assert!(matches!(resp, Response::Puzzle { .. }), "{resp:?}");
    assert_eq!(conn.addr(), primary_tcp.local_addr(), "connector re-points at the primary");

    // Reads never needed the redirect in the first place, and now go to
    // the primary too.
    let resp = conn.try_call(&query()).unwrap();
    assert!(matches!(resp, Response::UnknownSoftware { .. }));

    replica_tcp.shutdown();
    primary_tcp.shutdown();
}

/// The redirect is loop-guarded: two replicas misconfigured to point at
/// each other produce one hop and then surface the second redirect to the
/// caller instead of bouncing between the nodes forever.
#[test]
fn redirect_loops_are_cut_after_one_hop() {
    let a = reputation_server();
    let a_tcp = TcpServer::spawn(Arc::clone(&a), "127.0.0.1:0").unwrap();
    let b = reputation_server();
    let b_tcp = TcpServer::spawn(Arc::clone(&b), "127.0.0.1:0").unwrap();
    a.repl_state().set_replica_of(b_tcp.local_addr().to_string());
    b.repl_state().set_replica_of(a_tcp.local_addr().to_string());

    let mut conn = TcpConnector::connect(a_tcp.local_addr(), quick_policy()).unwrap();
    let resp = conn.try_call(&Request::GetPuzzle).unwrap();
    let Response::NotPrimary { primary } = resp else {
        panic!("the second redirect must reach the caller, got {resp:?}")
    };
    assert_eq!(primary, a_tcp.local_addr().to_string(), "b redirects back to a");

    a_tcp.shutdown();
    b_tcp.shutdown();
}

/// Sanity: the raw `TcpStream` path and the connector agree on the wire
/// format (no connector-specific framing drift).
#[test]
fn connector_and_raw_framing_interoperate() {
    let server = reputation_server();
    let tcp = TcpServer::spawn(server, "127.0.0.1:0").unwrap();

    // Raw client writes the frame by hand…
    let stream = TcpStream::connect(tcp.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_frame(&mut writer, &query().encode()).unwrap();
    let raw = Response::decode(&read_frame(&mut reader).unwrap()).unwrap();

    // …and the connector gets the identical answer.
    let mut conn = TcpConnector::connect(tcp.local_addr(), quick_policy()).unwrap();
    let via_conn = conn.try_call(&query()).unwrap();
    assert_eq!(raw, via_conn);
    tcp.shutdown();
}
