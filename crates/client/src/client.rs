//! The full execution-time client flow (§3.1).
//!
//! Decision pipeline for every pending execution:
//!
//! 1. **White/black lists** — listed software is decided locally, with no
//!    server round-trip and no dialog (DESIGN.md invariant 8).
//! 2. **Signature check** — a valid signature from a trusted vendor
//!    auto-allows and whitelists (§4.2).
//! 3. **Server query** — fetch the aggregated report (registering the
//!    executable's metadata if the server has never seen it).
//! 4. **Policy manager** — if the user installed a policy, it may decide
//!    without interaction (§4.2).
//! 5. **User dialog** — otherwise the user decides, optionally updating
//!    the lists ("allow always" / "deny always").
//!
//! After an allowed execution the rating-prompt policy may ask the user to
//! rate the program (§3.1's 50-execution / 2-per-week rules); ratings are
//! submitted as votes.

use std::collections::HashMap;
use std::sync::Arc;

use softrep_core::clock::{Clock, Timestamp};
use softrep_core::identity::SyntheticExecutable;
use softrep_policy::{evaluate, parse_policy, Action, ExecutionContext, Policy, PolicyError};
use softrep_proto::message::SoftwareInfo;
use softrep_proto::{Request, Response};

use crate::connector::Connector;
use crate::lists::{ListEntry, WhiteBlackLists};
use crate::os::{ExecutionHook, HookVerdict};
use crate::prompt::RatingPromptPolicy;
use crate::signature::{CodeSignature, SignatureStatus, TrustedVendorRegistry};

/// How the user answers the execution dialog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserChoice {
    /// Run it this time.
    AllowOnce,
    /// Run it and whitelist it.
    AllowAlways,
    /// Block it this time.
    DenyOnce,
    /// Block it and blacklist it.
    DenyAlways,
}

/// Everything shown in the execution dialog.
#[derive(Debug, Clone)]
pub struct PromptContext {
    /// File name of the pending executable.
    pub file_name: String,
    /// Vendor declared in the binary.
    pub company: Option<String>,
    /// The server's report, if the software is known.
    pub report: Option<SoftwareInfo>,
    /// Signature verification result.
    pub signature: SignatureStatus,
}

/// A rating the user chose to submit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatingSubmission {
    /// Score 1–10.
    pub score: u8,
    /// Observed behaviours.
    pub behaviours: Vec<String>,
    /// Optional free-text comment.
    pub comment: Option<String>,
}

/// The human (or simulated agent) behind the keyboard.
pub trait UserAgent {
    /// Answer the execution dialog.
    fn decide(&mut self, ctx: &PromptContext) -> UserChoice;

    /// Answer a rating prompt; `None` dismisses it.
    fn rate(&mut self, file_name: &str, report: Option<&SoftwareInfo>) -> Option<RatingSubmission>;
}

/// Which pipeline stage decided an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionSource {
    /// Local white list.
    Whitelist,
    /// Local black list.
    Blacklist,
    /// Trusted vendor signature.
    TrustedSignature,
    /// The policy manager.
    Policy,
    /// The interactive dialog.
    User,
}

/// Result of one execution attempt through the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Was the program allowed to run?
    pub allowed: bool,
    /// Which stage decided.
    pub source: DecisionSource,
    /// Did the user see the allow/deny dialog?
    pub asked_user: bool,
    /// Was a rating prompt shown after execution?
    pub rating_prompted: bool,
    /// Did a vote reach the server?
    pub rating_submitted: bool,
}

/// Interaction counters (experiments D5 and D9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Execution attempts handled.
    pub executions: u64,
    /// Decisions taken from the lists.
    pub list_decisions: u64,
    /// Auto-allows from trusted signatures.
    pub signature_allows: u64,
    /// Decisions taken by the policy manager.
    pub policy_decisions: u64,
    /// Times the dialog was shown.
    pub user_prompts: u64,
    /// Rating prompts shown.
    pub rating_prompts: u64,
    /// Votes submitted.
    pub votes_submitted: u64,
    /// Server queries issued.
    pub server_queries: u64,
    /// Report-cache hits.
    pub cache_hits: u64,
}

/// The reputation client.
pub struct ReputationClient<C: Connector> {
    connector: C,
    clock: Arc<dyn Clock>,
    session: Option<String>,
    username: Option<String>,
    lists: WhiteBlackLists,
    registry: TrustedVendorRegistry,
    prompt_policy: RatingPromptPolicy,
    policy: Option<Policy>,
    report_cache: HashMap<String, (Timestamp, Option<SoftwareInfo>)>,
    vendor_cache: HashMap<String, (Timestamp, Option<f64>)>,
    feed_cache: FeedCache,
    subscribed_feeds: Vec<String>,
    cache_ttl_secs: u64,
    stats: ClientStats,
}

/// Cached feed verdicts: (feed, software id) → fetched-at + optional
/// (rating, behaviours).
type FeedCache = HashMap<(String, String), (Timestamp, Option<(f64, Vec<String>)>)>;

/// Client-side failures surfaced to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client error: {}", self.0)
    }
}

impl std::error::Error for ClientError {}

impl<C: Connector> ReputationClient<C> {
    /// A client with the paper's default prompt policy and a 1 h report
    /// cache.
    pub fn new(connector: C, clock: Arc<dyn Clock>) -> Self {
        ReputationClient {
            connector,
            clock,
            session: None,
            username: None,
            lists: WhiteBlackLists::new(),
            registry: TrustedVendorRegistry::new(),
            prompt_policy: RatingPromptPolicy::default(),
            policy: None,
            report_cache: HashMap::new(),
            vendor_cache: HashMap::new(),
            feed_cache: FeedCache::new(),
            subscribed_feeds: Vec::new(),
            cache_ttl_secs: 3_600,
            stats: ClientStats::default(),
        }
    }

    /// Replace the rating-prompt policy (experiment D5 sweeps this).
    pub fn set_prompt_policy(&mut self, policy: RatingPromptPolicy) {
        self.prompt_policy = policy;
    }

    /// Install (or replace) the policy-manager program.
    pub fn set_policy_text(&mut self, text: &str) -> Result<(), PolicyError> {
        self.policy = Some(parse_policy(text)?);
        Ok(())
    }

    /// Remove the policy manager.
    pub fn clear_policy(&mut self) {
        self.policy = None;
    }

    /// Subscribe to a published rating feed (§4.2): its verdicts become
    /// visible to the policy engine as `feed_rating` and merge into the
    /// behaviour set.
    pub fn subscribe_feed(&mut self, feed: impl Into<String>) {
        let feed = feed.into();
        if !self.subscribed_feeds.contains(&feed) {
            self.subscribed_feeds.push(feed);
        }
    }

    /// Drop a feed subscription.
    pub fn unsubscribe_feed(&mut self, feed: &str) {
        self.subscribed_feeds.retain(|f| f != feed);
        self.feed_cache.retain(|(f, _), _| f != feed);
    }

    /// The feeds currently subscribed.
    pub fn subscribed_feeds(&self) -> &[String] {
        &self.subscribed_feeds
    }

    /// Create a feed owned by the logged-in user.
    pub fn create_feed(&mut self, name: &str) -> Result<(), ClientError> {
        let Some(session) = self.session.clone() else {
            return Err(ClientError("must be logged in to create a feed".into()));
        };
        match self.connector.call(&Request::CreateFeed { session, name: name.into() }) {
            Response::Ok => Ok(()),
            Response::Error { code, message } => {
                Err(ClientError(format!("create-feed failed ({code}): {message}")))
            }
            other => Err(ClientError(format!("unexpected response {other:?}"))),
        }
    }

    /// Publish a verdict into a feed the logged-in user owns.
    pub fn publish_feed_entry(
        &mut self,
        feed: &str,
        software_id: &str,
        rating: f64,
        behaviours: Vec<String>,
    ) -> Result<(), ClientError> {
        let Some(session) = self.session.clone() else {
            return Err(ClientError("must be logged in to publish".into()));
        };
        match self.connector.call(&Request::PublishFeedEntry {
            session,
            feed: feed.into(),
            software_id: software_id.into(),
            rating,
            behaviours,
        }) {
            Response::Ok => Ok(()),
            Response::Error { code, message } => {
                Err(ClientError(format!("publish failed ({code}): {message}")))
            }
            other => Err(ClientError(format!("unexpected response {other:?}"))),
        }
    }

    /// The local lists (mutable, e.g. to pre-whitelist OS components).
    pub fn lists_mut(&mut self) -> &mut WhiteBlackLists {
        &mut self.lists
    }

    /// The trusted-vendor registry.
    pub fn registry_mut(&mut self) -> &mut TrustedVendorRegistry {
        &mut self.registry
    }

    /// Interaction counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The logged-in username, if any.
    pub fn username(&self) -> Option<&str> {
        self.username.as_deref()
    }

    /// Full account setup: puzzle → register → activate → login.
    ///
    /// The activation token is returned by the server in-band (the
    /// simulated e-mail loop); a production deployment would read it from
    /// the user's inbox instead.
    pub fn register_and_login(
        &mut self,
        username: &str,
        password: &str,
        email: &str,
    ) -> Result<(), ClientError> {
        let challenge = match self.connector.call(&Request::GetPuzzle) {
            Response::Puzzle { challenge } => challenge,
            other => return Err(ClientError(format!("expected puzzle, got {other:?}"))),
        };
        let parsed = softrep_crypto::puzzle::Challenge::decode(&challenge)
            .ok_or_else(|| ClientError("server sent malformed challenge".into()))?;
        let (solution, _cost) = parsed.solve();

        let resp = self.connector.call(&Request::Register {
            username: username.into(),
            password: password.into(),
            email: email.into(),
            puzzle_challenge: challenge,
            puzzle_solution: solution.nonce,
        });
        let token = match resp {
            Response::Registered { activation_token } => activation_token,
            Response::Error { code, message } => {
                return Err(ClientError(format!("registration failed ({code}): {message}")))
            }
            other => return Err(ClientError(format!("unexpected response {other:?}"))),
        };
        match self.connector.call(&Request::Activate { username: username.into(), token }) {
            Response::Ok => {}
            other => return Err(ClientError(format!("activation failed: {other:?}"))),
        }
        self.login(username, password)
    }

    /// Log in to an existing, activated account.
    pub fn login(&mut self, username: &str, password: &str) -> Result<(), ClientError> {
        match self
            .connector
            .call(&Request::Login { username: username.into(), password: password.into() })
        {
            Response::Session { token } => {
                self.session = Some(token);
                self.username = Some(username.to_string());
                Ok(())
            }
            Response::Error { code, message } => {
                Err(ClientError(format!("login failed ({code}): {message}")))
            }
            other => Err(ClientError(format!("unexpected response {other:?}"))),
        }
    }

    /// The §3.1 execution flow. `signature` is the detached code signature
    /// shipped with the binary, if any.
    pub fn handle_execution(
        &mut self,
        exe: &SyntheticExecutable,
        signature: Option<&CodeSignature>,
        user: &mut dyn UserAgent,
    ) -> ExecOutcome {
        self.stats.executions += 1;
        let id_hex = exe.id_sha1().to_hex();
        let now = self.clock.now();

        // Stage 1: the lists decide without any traffic or interaction.
        match self.lists.lookup(&id_hex) {
            ListEntry::White => {
                self.stats.list_decisions += 1;
                return self.after_allow(
                    &id_hex,
                    exe,
                    None,
                    DecisionSource::Whitelist,
                    false,
                    user,
                    now,
                );
            }
            ListEntry::Black => {
                self.stats.list_decisions += 1;
                return ExecOutcome {
                    allowed: false,
                    source: DecisionSource::Blacklist,
                    asked_user: false,
                    rating_prompted: false,
                    rating_submitted: false,
                };
            }
            ListEntry::Unlisted => {}
        }

        // Stage 2: trusted signatures auto-allow and whitelist.
        let sig_status = self.registry.verify(&exe.to_bytes(), signature);
        if sig_status == SignatureStatus::SignedTrusted {
            self.stats.signature_allows += 1;
            self.lists.whitelist(&id_hex);
            return self.after_allow(
                &id_hex,
                exe,
                None,
                DecisionSource::TrustedSignature,
                false,
                user,
                now,
            );
        }

        // Stage 3: consult the server.
        let report = self.fetch_report(&id_hex, exe, now);

        // Stage 4: the policy manager, if installed.
        if let Some(policy) = self.policy.clone() {
            let ctx = self.build_policy_context(&id_hex, exe, &report, sig_status, now);
            match evaluate(&policy, &ctx) {
                Action::Allow => {
                    self.stats.policy_decisions += 1;
                    return self.after_allow(
                        &id_hex,
                        exe,
                        report,
                        DecisionSource::Policy,
                        false,
                        user,
                        now,
                    );
                }
                Action::Deny => {
                    self.stats.policy_decisions += 1;
                    return ExecOutcome {
                        allowed: false,
                        source: DecisionSource::Policy,
                        asked_user: false,
                        rating_prompted: false,
                        rating_submitted: false,
                    };
                }
                Action::Ask => {}
            }
        }

        // Stage 5: the dialog.
        self.stats.user_prompts += 1;
        let ctx = PromptContext {
            file_name: exe.file_name.clone(),
            company: exe.company.clone(),
            report: report.clone(),
            signature: sig_status,
        };
        match user.decide(&ctx) {
            UserChoice::AllowOnce => {
                self.after_allow(&id_hex, exe, report, DecisionSource::User, true, user, now)
            }
            UserChoice::AllowAlways => {
                self.lists.whitelist(&id_hex);
                self.after_allow(&id_hex, exe, report, DecisionSource::User, true, user, now)
            }
            UserChoice::DenyOnce => ExecOutcome {
                allowed: false,
                source: DecisionSource::User,
                asked_user: true,
                rating_prompted: false,
                rating_submitted: false,
            },
            UserChoice::DenyAlways => {
                self.lists.blacklist(&id_hex);
                ExecOutcome {
                    allowed: false,
                    source: DecisionSource::User,
                    asked_user: true,
                    rating_prompted: false,
                    rating_submitted: false,
                }
            }
        }
    }

    /// Shared allowed-path tail: execution counting + rating prompt.
    ///
    /// Rating prompts apply to every *ran* program regardless of how it was
    /// allowed — the paper asks users to rate "the software that they use
    /// most frequently", which is precisely the whitelisted software.
    #[allow(clippy::too_many_arguments)]
    fn after_allow(
        &mut self,
        id_hex: &str,
        exe: &SyntheticExecutable,
        report: Option<SoftwareInfo>,
        source: DecisionSource,
        asked_user: bool,
        user: &mut dyn UserAgent,
        now: Timestamp,
    ) -> ExecOutcome {
        let mut rating_prompted = false;
        let mut rating_submitted = false;
        if self.prompt_policy.on_execution(id_hex, now) {
            rating_prompted = true;
            self.stats.rating_prompts += 1;
            if let Some(submission) = user.rate(&exe.file_name, report.as_ref()) {
                rating_submitted = self.submit_rating(id_hex, exe, &submission);
                if rating_submitted {
                    self.prompt_policy.mark_rated(id_hex);
                }
            }
        }
        ExecOutcome { allowed: true, source, asked_user, rating_prompted, rating_submitted }
    }

    fn submit_rating(
        &mut self,
        id_hex: &str,
        exe: &SyntheticExecutable,
        submission: &RatingSubmission,
    ) -> bool {
        let Some(session) = self.session.clone() else { return false };
        // Make sure the server knows the executable before voting on it.
        self.ensure_registered(id_hex, exe);
        let resp = self.connector.call(&Request::SubmitVote {
            session: session.clone(),
            software_id: id_hex.to_string(),
            score: submission.score,
            behaviours: submission.behaviours.clone(),
        });
        if resp != Response::Ok {
            return false;
        }
        self.stats.votes_submitted += 1;
        if let Some(comment) = &submission.comment {
            let _ = self.connector.call(&Request::SubmitComment {
                session,
                software_id: id_hex.to_string(),
                text: comment.clone(),
            });
        }
        // The published rating changed only for the next batch; drop the
        // cached report anyway so tests observe fresh data.
        self.report_cache.remove(id_hex);
        true
    }

    fn ensure_registered(&mut self, id_hex: &str, exe: &SyntheticExecutable) {
        let _ = self.connector.call(&Request::RegisterSoftware {
            software_id: id_hex.to_string(),
            file_name: exe.file_name.clone(),
            file_size: exe.file_size(),
            company: exe.company.clone(),
            version: exe.version.clone(),
        });
    }

    fn fetch_report(
        &mut self,
        id_hex: &str,
        exe: &SyntheticExecutable,
        now: Timestamp,
    ) -> Option<SoftwareInfo> {
        if let Some((cached_at, report)) = self.report_cache.get(id_hex) {
            if now.since(*cached_at) < self.cache_ttl_secs {
                self.stats.cache_hits += 1;
                return report.clone();
            }
        }
        self.stats.server_queries += 1;
        let report = match self
            .connector
            .call(&Request::QuerySoftware { software_id: id_hex.to_string() })
        {
            Response::Software(info) => Some(info),
            Response::UnknownSoftware { .. } => {
                self.ensure_registered(id_hex, exe);
                None
            }
            _ => None,
        };
        self.report_cache.insert(id_hex.to_string(), (now, report.clone()));
        report
    }

    fn vendor_rating(&mut self, vendor: &str, now: Timestamp) -> Option<f64> {
        if let Some((cached_at, rating)) = self.vendor_cache.get(vendor) {
            if now.since(*cached_at) < self.cache_ttl_secs {
                return *rating;
            }
        }
        self.stats.server_queries += 1;
        let rating = match self.connector.call(&Request::QueryVendor { vendor: vendor.to_string() })
        {
            Response::Vendor { rating, .. } => rating,
            _ => None,
        };
        self.vendor_cache.insert(vendor.to_string(), (now, rating));
        rating
    }

    /// The first subscribed feed's verdict covering `software_id`, if any
    /// (subscription order is priority order).
    fn feed_verdict(&mut self, software_id: &str, now: Timestamp) -> Option<(f64, Vec<String>)> {
        for feed in self.subscribed_feeds.clone() {
            let key = (feed.clone(), software_id.to_string());
            if let Some((cached_at, verdict)) = self.feed_cache.get(&key) {
                if now.since(*cached_at) < self.cache_ttl_secs {
                    if let Some(v) = verdict {
                        return Some(v.clone());
                    }
                    continue;
                }
            }
            self.stats.server_queries += 1;
            let verdict = match self.connector.call(&Request::QueryFeedEntry {
                feed: feed.clone(),
                software_id: software_id.to_string(),
            }) {
                Response::FeedEntry { rating, behaviours, .. } => Some((rating, behaviours)),
                _ => None,
            };
            self.feed_cache.insert(key, (now, verdict.clone()));
            if let Some(v) = verdict {
                return Some(v);
            }
        }
        None
    }

    fn build_policy_context(
        &mut self,
        id_hex: &str,
        exe: &SyntheticExecutable,
        report: &Option<SoftwareInfo>,
        sig_status: SignatureStatus,
        now: Timestamp,
    ) -> ExecutionContext {
        let vendor_rating =
            exe.company.as_deref().and_then(|vendor| self.vendor_rating(vendor, now));
        let feed_verdict = self.feed_verdict(id_hex, now);
        let mut behaviours = report.as_ref().map(|r| r.behaviours.clone()).unwrap_or_default();
        if let Some((_, feed_behaviours)) = &feed_verdict {
            for b in feed_behaviours {
                if !behaviours.contains(b) {
                    behaviours.push(b.clone());
                }
            }
        }
        ExecutionContext {
            rating: report.as_ref().and_then(|r| r.rating),
            vote_count: report.as_ref().map_or(0, |r| r.vote_count),
            vendor_rating,
            file_size: exe.file_size(),
            behaviours,
            verified_behaviours: report
                .as_ref()
                .map(|r| r.verified_behaviours.clone())
                .unwrap_or_default(),
            feed_rating: feed_verdict.map(|(rating, _)| rating),
            vendor: exe.company.clone(),
            signed: matches!(
                sig_status,
                SignatureStatus::SignedTrusted | SignatureStatus::SignedUntrusted
            ),
            signed_by_trusted: sig_status == SignatureStatus::SignedTrusted,
            known: report.is_some(),
        }
    }
}

/// Adapter wiring a client + user agent + signature store to the OS hook
/// point, so [`crate::os::SimOs::launch`] drives the full pipeline.
pub struct ClientHook<'a, C: Connector> {
    client: &'a mut ReputationClient<C>,
    user: &'a mut dyn UserAgent,
    /// Detached signatures by software id hex.
    signatures: &'a HashMap<String, CodeSignature>,
    /// Outcome of the last decision, for caller inspection.
    pub last_outcome: Option<ExecOutcome>,
}

impl<'a, C: Connector> ClientHook<'a, C> {
    /// Assemble the adapter.
    pub fn new(
        client: &'a mut ReputationClient<C>,
        user: &'a mut dyn UserAgent,
        signatures: &'a HashMap<String, CodeSignature>,
    ) -> Self {
        ClientHook { client, user, signatures, last_outcome: None }
    }
}

impl<C: Connector> ExecutionHook for ClientHook<'_, C> {
    fn on_execute(&mut self, image: &SyntheticExecutable) -> HookVerdict {
        let signature = self.signatures.get(&image.id_sha1().to_hex());
        let outcome = self.client.handle_execution(image, signature, self.user);
        self.last_outcome = Some(outcome);
        if outcome.allowed {
            HookVerdict::Allow
        } else {
            HookVerdict::Deny
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::InProcessConnector;
    use softrep_core::clock::SimClock;
    use softrep_core::db::ReputationDb;
    use softrep_server::{ReputationServer, ServerConfig};

    /// A scripted user agent for tests.
    struct ScriptedUser {
        choice: UserChoice,
        rating: Option<RatingSubmission>,
        decisions: u64,
        rating_prompts: u64,
    }

    impl ScriptedUser {
        fn new(choice: UserChoice) -> Self {
            ScriptedUser { choice, rating: None, decisions: 0, rating_prompts: 0 }
        }

        fn with_rating(mut self, score: u8) -> Self {
            self.rating = Some(RatingSubmission {
                score,
                behaviours: vec!["popup_ads".into()],
                comment: None,
            });
            self
        }
    }

    impl UserAgent for ScriptedUser {
        fn decide(&mut self, _ctx: &PromptContext) -> UserChoice {
            self.decisions += 1;
            self.choice
        }

        fn rate(
            &mut self,
            _file: &str,
            _report: Option<&SoftwareInfo>,
        ) -> Option<RatingSubmission> {
            self.rating_prompts += 1;
            self.rating.clone()
        }
    }

    fn setup() -> (ReputationClient<InProcessConnector>, Arc<ReputationServer>, SimClock) {
        let clock = SimClock::new();
        let server = Arc::new(ReputationServer::new(
            ReputationDb::in_memory("client-test"),
            Arc::new(clock.clone()),
            ServerConfig {
                puzzle_difficulty: 2,
                flood_capacity: 100_000,
                flood_refill_per_hour: 100_000,
                ..ServerConfig::default()
            },
            42,
        ));
        let connector = InProcessConnector::new(Arc::clone(&server), "10.0.0.1");
        let client = ReputationClient::new(connector, Arc::new(clock.clone()));
        (client, server, clock)
    }

    fn exe(name: &str) -> SyntheticExecutable {
        SyntheticExecutable::new(name, "Acme", "1.0", name.as_bytes().to_vec())
    }

    #[test]
    fn register_and_login_full_flow() {
        let (mut client, server, _) = setup();
        client.register_and_login("alice", "pw", "alice@example.com").unwrap();
        assert_eq!(client.username(), Some("alice"));
        assert_eq!(server.db().user_count(), 1);
        // Wrong credentials surface as errors.
        assert!(client.login("alice", "wrong").is_err());
    }

    #[test]
    fn whitelisted_software_runs_without_traffic_or_prompts() {
        let (mut client, _server, _) = setup();
        let app = exe("app.exe");
        client.lists_mut().whitelist(&app.id_sha1().to_hex());
        let mut user = ScriptedUser::new(UserChoice::DenyAlways); // must never be asked

        let outcome = client.handle_execution(&app, None, &mut user);
        assert!(outcome.allowed);
        assert_eq!(outcome.source, DecisionSource::Whitelist);
        assert!(!outcome.asked_user);
        assert_eq!(user.decisions, 0);
        assert_eq!(client.stats().server_queries, 0, "invariant 8: no round-trip");
    }

    #[test]
    fn blacklisted_software_is_denied_silently() {
        let (mut client, _server, _) = setup();
        let app = exe("spy.exe");
        client.lists_mut().blacklist(&app.id_sha1().to_hex());
        let mut user = ScriptedUser::new(UserChoice::AllowAlways);
        let outcome = client.handle_execution(&app, None, &mut user);
        assert!(!outcome.allowed);
        assert_eq!(outcome.source, DecisionSource::Blacklist);
        assert_eq!(user.decisions, 0);
    }

    #[test]
    fn unknown_software_asks_the_user_and_registers_metadata() {
        let (mut client, server, _) = setup();
        let app = exe("newapp.exe");
        let mut user = ScriptedUser::new(UserChoice::AllowOnce);

        let outcome = client.handle_execution(&app, None, &mut user);
        assert!(outcome.allowed);
        assert_eq!(outcome.source, DecisionSource::User);
        assert!(outcome.asked_user);
        assert_eq!(user.decisions, 1);
        // The client reported the metadata so future voters have a target.
        let rec = server.db().software(&app.id_sha1().to_hex()).unwrap().unwrap();
        assert_eq!(rec.file_name, "newapp.exe");
        assert_eq!(rec.company.as_deref(), Some("Acme"));
    }

    #[test]
    fn allow_always_whitelists_and_deny_always_blacklists() {
        let (mut client, _server, _) = setup();
        let good = exe("good.exe");
        let bad = exe("bad.exe");

        let mut user = ScriptedUser::new(UserChoice::AllowAlways);
        client.handle_execution(&good, None, &mut user);
        let mut user = ScriptedUser::new(UserChoice::DenyAlways);
        client.handle_execution(&bad, None, &mut user);

        // Second executions hit the lists, not the dialog.
        let mut watcher = ScriptedUser::new(UserChoice::DenyAlways);
        assert!(client.handle_execution(&good, None, &mut watcher).allowed);
        assert!(!client.handle_execution(&bad, None, &mut watcher).allowed);
        assert_eq!(watcher.decisions, 0);
    }

    #[test]
    fn trusted_signature_auto_allows_and_whitelists() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use softrep_crypto::ots::WinternitzKeypair;

        let (mut client, _server, _) = setup();
        let app = exe("photoshop.exe");
        let mut rng = StdRng::seed_from_u64(77);
        let keypair = WinternitzKeypair::generate(&mut rng);
        let signature = CodeSignature {
            vendor: "Adobe".into(),
            public_key: keypair.public_key().clone(),
            signature: keypair.sign(&app.to_bytes()),
        };
        client.registry_mut().publish_key("Adobe", keypair.public_key());
        client.registry_mut().trust_vendor("Adobe");

        let mut user = ScriptedUser::new(UserChoice::DenyAlways);
        let outcome = client.handle_execution(&app, Some(&signature), &mut user);
        assert!(outcome.allowed);
        assert_eq!(outcome.source, DecisionSource::TrustedSignature);
        assert_eq!(user.decisions, 0);
        // Whitelisted for next time — no signature check needed.
        let outcome = client.handle_execution(&app, None, &mut user);
        assert_eq!(outcome.source, DecisionSource::Whitelist);
    }

    #[test]
    fn policy_decides_without_interaction() {
        let (mut client, server, clock) = setup();
        client.register_and_login("alice", "pw", "a@x.com").unwrap();
        client
            .set_policy_text(
                "deny if behaviour(\"popup_ads\")\nallow if rating >= 6\nask otherwise",
            )
            .unwrap();

        // Seed a rating: alice votes 8 on app1 via a raw server call.
        let app1 = exe("app1.exe");
        let id1 = app1.id_sha1().to_hex();
        server.db().register_software(&id1, "app1.exe", 1, None, None, clock.now()).unwrap();
        server.db().submit_vote("alice", &id1, 8, vec![], clock.now()).unwrap();
        server.db().force_aggregation(clock.now()).unwrap();

        let mut user = ScriptedUser::new(UserChoice::DenyAlways);
        let outcome = client.handle_execution(&app1, None, &mut user);
        assert!(outcome.allowed);
        assert_eq!(outcome.source, DecisionSource::Policy);
        assert_eq!(user.decisions, 0);

        // An unrated program falls through to the dialog.
        let app2 = exe("app2.exe");
        let mut user = ScriptedUser::new(UserChoice::DenyOnce);
        let outcome = client.handle_execution(&app2, None, &mut user);
        assert_eq!(outcome.source, DecisionSource::User);
        assert_eq!(user.decisions, 1);
    }

    #[test]
    fn rating_prompt_fires_after_threshold_and_submits_vote() {
        let (mut client, server, _) = setup();
        client.register_and_login("alice", "pw", "a@x.com").unwrap();
        client.set_prompt_policy(RatingPromptPolicy::new(3, 10));
        let app = exe("daily.exe");
        client.lists_mut().whitelist(&app.id_sha1().to_hex());

        let mut user = ScriptedUser::new(UserChoice::AllowOnce).with_rating(4);
        for _ in 0..3 {
            let outcome = client.handle_execution(&app, None, &mut user);
            assert!(!outcome.rating_prompted);
        }
        let outcome = client.handle_execution(&app, None, &mut user);
        assert!(outcome.rating_prompted);
        assert!(outcome.rating_submitted);
        assert_eq!(user.rating_prompts, 1);
        assert_eq!(server.db().vote_count(), 1);
        let vote = server.db().vote_of("alice", &app.id_sha1().to_hex()).unwrap().unwrap();
        assert_eq!(vote.score, 4);
        assert_eq!(vote.behaviours, vec!["popup_ads".to_string()]);

        // Rated software is never prompted again.
        for _ in 0..10 {
            let outcome = client.handle_execution(&app, None, &mut user);
            assert!(!outcome.rating_prompted);
        }
    }

    #[test]
    fn rating_prompt_without_login_cannot_submit() {
        let (mut client, server, _) = setup();
        client.set_prompt_policy(RatingPromptPolicy::new(1, 10));
        let app = exe("x.exe");
        client.lists_mut().whitelist(&app.id_sha1().to_hex());
        let mut user = ScriptedUser::new(UserChoice::AllowOnce).with_rating(7);
        client.handle_execution(&app, None, &mut user);
        let outcome = client.handle_execution(&app, None, &mut user);
        assert!(outcome.rating_prompted);
        assert!(!outcome.rating_submitted, "no session, no vote");
        assert_eq!(server.db().vote_count(), 0);
    }

    #[test]
    fn report_cache_avoids_repeated_queries() {
        let (mut client, _server, clock) = setup();
        let app = exe("cachetest.exe");
        let mut user = ScriptedUser::new(UserChoice::AllowOnce);
        client.handle_execution(&app, None, &mut user);
        let queries_after_first = client.stats().server_queries;
        client.handle_execution(&app, None, &mut user);
        assert_eq!(client.stats().server_queries, queries_after_first);
        assert!(client.stats().cache_hits >= 1);
        // After TTL the query is refreshed.
        clock.advance_secs(3_601);
        client.handle_execution(&app, None, &mut user);
        assert!(client.stats().server_queries > queries_after_first);
    }

    #[test]
    fn subscribed_feed_drives_policy_decisions() {
        let (mut client, server, clock) = setup();
        client.register_and_login("alice", "pw", "a@x.com").unwrap();

        // An expert publishes a feed verdict on an otherwise unrated app.
        let app = exe("niche-tool.exe");
        let id = app.id_sha1().to_hex();
        server.db().register_software(&id, "niche-tool.exe", 1, None, None, clock.now()).unwrap();
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let token = server
            .db()
            .register_user("sec_team", "pw", "sec@corp.example", clock.now(), &mut rng)
            .unwrap();
        server.db().activate_user("sec_team", &token).unwrap();
        server.db().create_feed("sec-team", "sec_team", clock.now()).unwrap();
        server
            .db()
            .publish_feed_entry(
                "sec_team",
                "sec-team",
                &id,
                2.0,
                vec!["tracking".into()],
                clock.now(),
            )
            .unwrap();

        // Without the subscription the policy cannot see feed data.
        client.set_policy_text("deny if feed_rating <= 4\nask otherwise").unwrap();
        let mut user = ScriptedUser::new(UserChoice::AllowOnce);
        let outcome = client.handle_execution(&app, None, &mut user);
        assert_eq!(outcome.source, DecisionSource::User, "no subscription, no feed data");

        // With the subscription the policy denies automatically.
        client.subscribe_feed("sec-team");
        assert_eq!(client.subscribed_feeds(), &["sec-team".to_string()]);
        let app2 = exe("niche-tool-2.exe");
        let id2 = app2.id_sha1().to_hex();
        server
            .db()
            .register_software(&id2, "niche-tool-2.exe", 1, None, None, clock.now())
            .unwrap();
        server
            .db()
            .publish_feed_entry("sec_team", "sec-team", &id2, 2.0, vec![], clock.now())
            .unwrap();
        let outcome = client.handle_execution(&app2, None, &mut user);
        assert!(!outcome.allowed);
        assert_eq!(outcome.source, DecisionSource::Policy);

        client.unsubscribe_feed("sec-team");
        assert!(client.subscribed_feeds().is_empty());
    }

    #[test]
    fn feed_behaviours_merge_into_policy_context() {
        let (mut client, server, clock) = setup();
        client.register_and_login("alice", "pw", "a@x.com").unwrap();
        client.create_feed("alice-feed").unwrap();

        let app = exe("merged.exe");
        let id = app.id_sha1().to_hex();
        server.db().register_software(&id, "merged.exe", 1, None, None, clock.now()).unwrap();
        client.publish_feed_entry("alice-feed", &id, 3.0, vec!["keylogger".into()]).unwrap();
        client.subscribe_feed("alice-feed");
        client.set_policy_text("deny if behaviour(\"keylogger\")\nask otherwise").unwrap();
        let mut user = ScriptedUser::new(UserChoice::AllowOnce);
        let outcome = client.handle_execution(&app, None, &mut user);
        assert!(!outcome.allowed, "feed-reported behaviour must reach the policy");
    }

    #[test]
    fn verified_evidence_reaches_the_policy() {
        let (mut client, server, clock) = setup();
        let app = exe("evidence.exe");
        let id = app.id_sha1().to_hex();
        server.db().register_software(&id, "evidence.exe", 1, None, None, clock.now()).unwrap();
        server
            .db()
            .record_evidence(&id, vec!["data_exfiltration".into()], "sandbox-v1", clock.now())
            .unwrap();

        client.set_policy_text("deny if verified(\"data_exfiltration\")\nask otherwise").unwrap();
        let mut user = ScriptedUser::new(UserChoice::AllowOnce);
        let outcome = client.handle_execution(&app, None, &mut user);
        assert!(!outcome.allowed);
        assert_eq!(outcome.source, DecisionSource::Policy);

        // `behaviour(...)` also matches verified evidence (strict upgrade).
        let mut client2 = {
            let connector = InProcessConnector::new(Arc::clone(&server), "10.0.0.2");
            ReputationClient::new(connector, Arc::new(clock.clone()))
        };
        client2.set_policy_text("deny if behaviour(\"data_exfiltration\")\nask otherwise").unwrap();
        let outcome = client2.handle_execution(&app, None, &mut user);
        assert!(!outcome.allowed);
    }

    #[test]
    fn client_hook_drives_sim_os() {
        use crate::os::{LaunchOutcome, SimOs};

        let (mut client, _server, _) = setup();
        let mut os = SimOs::new();
        let system = exe("kernel32.dll");
        os.mark_essential(&system.id_sha1().to_hex());

        // A deny-everything user crashes the OS by blocking an essential
        // component (§4.2's hazard)…
        let signatures = HashMap::new();
        let mut denier = ScriptedUser::new(UserChoice::DenyOnce);
        let mut hook = ClientHook::new(&mut client, &mut denier, &signatures);
        assert_eq!(os.launch(&system, &mut hook), LaunchOutcome::Crashed);

        // …which pre-whitelisting prevents.
        os.reboot();
        client.lists_mut().whitelist(&system.id_sha1().to_hex());
        let mut denier = ScriptedUser::new(UserChoice::DenyOnce);
        let mut hook = ClientHook::new(&mut client, &mut denier, &signatures);
        assert_eq!(os.launch(&system, &mut hook), LaunchOutcome::Ran);
        assert_eq!(hook.last_outcome.unwrap().source, DecisionSource::Whitelist);
    }
}
