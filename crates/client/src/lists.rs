//! Checksum-keyed white and black lists (§3.1).
//!
//! "The client uses different lists to keep track of which software have
//! been marked as safe (the white list) and which have been marked as
//! unsafe (the black list). These two lists are then used for
//! automatically allowing or denying software to run, without asking for
//! the user's permission every time." Lookups key on the content digest,
//! so a modified binary never inherits a listing (§3.3).

use std::collections::HashSet;

/// Which list (if any) an executable is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListEntry {
    /// On the white list: auto-allow.
    White,
    /// On the black list: auto-deny.
    Black,
    /// Unlisted: the full decision flow runs.
    Unlisted,
}

/// The client's persistent allow/deny state.
#[derive(Debug, Default, Clone)]
pub struct WhiteBlackLists {
    white: HashSet<String>,
    black: HashSet<String>,
}

impl WhiteBlackLists {
    /// Empty lists.
    pub fn new() -> Self {
        WhiteBlackLists::default()
    }

    /// Look up an executable by hex digest.
    pub fn lookup(&self, software_id_hex: &str) -> ListEntry {
        if self.white.contains(software_id_hex) {
            ListEntry::White
        } else if self.black.contains(software_id_hex) {
            ListEntry::Black
        } else {
            ListEntry::Unlisted
        }
    }

    /// Whitelist an executable (removing any blacklisting).
    pub fn whitelist(&mut self, software_id_hex: &str) {
        self.black.remove(software_id_hex);
        self.white.insert(software_id_hex.to_string());
    }

    /// Blacklist an executable (removing any whitelisting).
    pub fn blacklist(&mut self, software_id_hex: &str) {
        self.white.remove(software_id_hex);
        self.black.insert(software_id_hex.to_string());
    }

    /// Remove an executable from both lists.
    pub fn unlist(&mut self, software_id_hex: &str) {
        self.white.remove(software_id_hex);
        self.black.remove(software_id_hex);
    }

    /// (whitelisted, blacklisted) counts.
    pub fn counts(&self) -> (usize, usize) {
        (self.white.len(), self.black.len())
    }

    /// Export for persistence: `(id, is_white)` pairs, whites first, each
    /// group sorted.
    pub fn export(&self) -> Vec<(String, bool)> {
        let mut out: Vec<(String, bool)> = Vec::with_capacity(self.white.len() + self.black.len());
        let mut whites: Vec<&String> = self.white.iter().collect();
        whites.sort();
        out.extend(whites.into_iter().map(|id| (id.clone(), true)));
        let mut blacks: Vec<&String> = self.black.iter().collect();
        blacks.sort();
        out.extend(blacks.into_iter().map(|id| (id.clone(), false)));
        out
    }

    /// Rebuild from an [`export`](Self::export) dump.
    pub fn import(entries: &[(String, bool)]) -> Self {
        let mut lists = WhiteBlackLists::new();
        for (id, is_white) in entries {
            if *is_white {
                lists.whitelist(id);
            } else {
                lists.blacklist(id);
            }
        }
        lists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lookup_reflects_listing() {
        let mut lists = WhiteBlackLists::new();
        assert_eq!(lists.lookup("aa"), ListEntry::Unlisted);
        lists.whitelist("aa");
        assert_eq!(lists.lookup("aa"), ListEntry::White);
        lists.blacklist("bb");
        assert_eq!(lists.lookup("bb"), ListEntry::Black);
        assert_eq!(lists.counts(), (1, 1));
    }

    #[test]
    fn lists_are_mutually_exclusive() {
        let mut lists = WhiteBlackLists::new();
        lists.whitelist("aa");
        lists.blacklist("aa");
        assert_eq!(lists.lookup("aa"), ListEntry::Black);
        lists.whitelist("aa");
        assert_eq!(lists.lookup("aa"), ListEntry::White);
        assert_eq!(lists.counts(), (1, 0));
    }

    #[test]
    fn unlist_removes_from_both() {
        let mut lists = WhiteBlackLists::new();
        lists.whitelist("aa");
        lists.unlist("aa");
        assert_eq!(lists.lookup("aa"), ListEntry::Unlisted);
        lists.blacklist("aa");
        lists.unlist("aa");
        assert_eq!(lists.lookup("aa"), ListEntry::Unlisted);
    }

    #[test]
    fn export_import_roundtrip_shape() {
        let mut lists = WhiteBlackLists::new();
        lists.whitelist("w2");
        lists.whitelist("w1");
        lists.blacklist("b1");
        let dump = lists.export();
        assert_eq!(dump, vec![("w1".into(), true), ("w2".into(), true), ("b1".into(), false)]);
        let rebuilt = WhiteBlackLists::import(&dump);
        assert_eq!(rebuilt.lookup("w1"), ListEntry::White);
        assert_eq!(rebuilt.lookup("b1"), ListEntry::Black);
    }

    proptest! {
        #[test]
        fn import_export_identity(
            entries in proptest::collection::btree_map("[a-f0-9]{8}", any::<bool>(), 0..20)
        ) {
            let entries: Vec<(String, bool)> = entries.into_iter().collect();
            let lists = WhiteBlackLists::import(&entries);
            let rebuilt = WhiteBlackLists::import(&lists.export());
            prop_assert_eq!(lists.export(), rebuilt.export());
        }
    }
}
