#![warn(missing_docs)]

//! The desktop client of §3.1.
//!
//! "The most important functionality of the client is the ability to allow
//! its users to decide exactly what software is allowed to run on the
//! computer … Whenever software is trying to execute, the hooking device
//! informs the client about the pending execution, which in turn asks the
//! user for confirmation before actually running the software."
//!
//! * [`os`] — the simulated operating system + execution-hook substrate
//!   standing in for the `NtCreateSection` kernel driver, including the
//!   §4.2 hazard: blocking an essential system component crashes the OS.
//! * [`lists`] — checksum-keyed white/black lists; listed software never
//!   causes a server round-trip or a prompt (DESIGN.md invariant 8).
//! * [`signature`] — vendor code-signature verification against a
//!   trusted-vendor registry (§4.2's enhanced white listing).
//! * [`prompt`] — the rating-prompt policy: ask only after 50 executions,
//!   at most 2 prompts per week (§3.1).
//! * [`connector`] — the transport abstraction (in-process or framed TCP)
//!   the client talks to the server through; the TCP path retries with
//!   bounded exponential backoff + jitter and reconnects across server
//!   restarts.
//! * [`client`] — [`client::ReputationClient`]: the full execution-time
//!   flow: lists → signatures → server query → policy → user dialog, plus
//!   the rate-your-software flow.

pub mod client;
pub mod connector;
pub mod lists;
pub mod os;
pub mod prompt;
pub mod signature;

pub use client::{
    ClientHook, ClientStats, DecisionSource, ExecOutcome, ReputationClient, UserAgent, UserChoice,
};
pub use connector::{CallError, Connector, InProcessConnector, RetryPolicy, TcpConnector};
pub use lists::WhiteBlackLists;
pub use os::{HookVerdict, LaunchOutcome, SimOs};
pub use prompt::RatingPromptPolicy;
pub use signature::{CodeSignature, SignatureStatus, TrustedVendorRegistry};
