//! The rating-prompt policy (§3.1).
//!
//! "The user is only asked to rate software which he has executed more
//! than a predefined number of times, currently 50 times. … To minimize
//! the user interruption there is also a threshold on the number of
//! software the user is asked to rate each week, currently two ratings per
//! week. So, when the user has executed a specific software 50 times she
//! will be asked to rate it the next time it is started, unless two
//! software already has been rated that week."
//!
//! Experiment D5 sweeps both parameters.

use std::collections::{HashMap, HashSet};

use softrep_core::clock::Timestamp;

/// The paper's execution-count threshold.
pub const DEFAULT_EXECUTION_THRESHOLD: u64 = 50;
/// The paper's weekly prompt cap.
pub const DEFAULT_WEEKLY_PROMPT_CAP: u32 = 2;

/// Per-user rating-prompt state machine.
#[derive(Debug, Clone)]
pub struct RatingPromptPolicy {
    execution_threshold: u64,
    weekly_cap: u32,
    executions: HashMap<String, u64>,
    rated: HashSet<String>,
    current_week: u64,
    prompts_this_week: u32,
    total_prompts: u64,
}

impl Default for RatingPromptPolicy {
    fn default() -> Self {
        Self::new(DEFAULT_EXECUTION_THRESHOLD, DEFAULT_WEEKLY_PROMPT_CAP)
    }
}

impl RatingPromptPolicy {
    /// A policy with explicit parameters.
    pub fn new(execution_threshold: u64, weekly_cap: u32) -> Self {
        RatingPromptPolicy {
            execution_threshold,
            weekly_cap,
            executions: HashMap::new(),
            rated: HashSet::new(),
            current_week: 0,
            prompts_this_week: 0,
            total_prompts: 0,
        }
    }

    /// Record one execution of `software_id` at `now`; returns `true` when
    /// the client should ask the user to rate it at this start.
    pub fn on_execution(&mut self, software_id: &str, now: Timestamp) -> bool {
        let week = now.week_index();
        if week != self.current_week {
            self.current_week = week;
            self.prompts_this_week = 0;
        }

        let count = self.executions.entry(software_id.to_string()).or_insert(0);
        *count += 1;

        let should_prompt = *count > self.execution_threshold
            && !self.rated.contains(software_id)
            && self.prompts_this_week < self.weekly_cap;
        if should_prompt {
            self.prompts_this_week += 1;
            self.total_prompts += 1;
        }
        should_prompt
    }

    /// Record that the user rated (or explicitly declined to ever rate)
    /// `software_id`; it will not be prompted for again.
    pub fn mark_rated(&mut self, software_id: &str) {
        self.rated.insert(software_id.to_string());
    }

    /// Executions recorded for a software.
    pub fn execution_count(&self, software_id: &str) -> u64 {
        self.executions.get(software_id).copied().unwrap_or(0)
    }

    /// Prompts issued over this policy's lifetime.
    pub fn total_prompts(&self) -> u64 {
        self.total_prompts
    }

    /// The configured execution threshold.
    pub fn execution_threshold(&self) -> u64 {
        self.execution_threshold
    }

    /// The configured weekly cap.
    pub fn weekly_cap(&self) -> u32 {
        self.weekly_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrep_core::clock::WEEK_SECS;

    #[test]
    fn no_prompt_until_threshold_exceeded() {
        let mut policy = RatingPromptPolicy::new(50, 2);
        for i in 0..50 {
            assert!(!policy.on_execution("sw", Timestamp(i)), "execution {i}");
        }
        // §3.1: "when the user has executed a specific software 50 times
        // she will be asked to rate it the next time it is started".
        assert!(policy.on_execution("sw", Timestamp(50)));
        assert_eq!(policy.execution_count("sw"), 51);
    }

    #[test]
    fn rated_software_is_never_prompted_again() {
        let mut policy = RatingPromptPolicy::new(2, 10);
        for _ in 0..2 {
            policy.on_execution("sw", Timestamp(0));
        }
        assert!(policy.on_execution("sw", Timestamp(1)));
        policy.mark_rated("sw");
        for i in 0..20 {
            assert!(!policy.on_execution("sw", Timestamp(2 + i)));
        }
    }

    #[test]
    fn weekly_cap_limits_prompts() {
        let mut policy = RatingPromptPolicy::new(2, 2);
        // Three different programs reach (but do not exceed) the threshold
        // in week 0 — no prompts yet.
        for sw in ["a", "b", "c"] {
            assert!(!policy.on_execution(sw, Timestamp(0)));
            assert!(!policy.on_execution(sw, Timestamp(0)));
        }
        // Each next start would prompt, but only two fit this week.
        assert!(policy.on_execution("a", Timestamp(10)));
        assert!(policy.on_execution("b", Timestamp(11)));
        assert!(!policy.on_execution("c", Timestamp(12)), "cap reached");

        // Next week the third prompt goes out.
        assert!(policy.on_execution("c", Timestamp(WEEK_SECS + 1)));
        assert_eq!(policy.total_prompts(), 3);
    }

    #[test]
    fn unrated_over_threshold_prompts_on_every_start_within_cap() {
        // The paper prompts "the next time it is started"; if the user
        // dismisses without rating, the next start asks again (subject to
        // the weekly cap).
        let mut policy = RatingPromptPolicy::new(1, 10);
        policy.on_execution("sw", Timestamp(0));
        policy.on_execution("sw", Timestamp(0));
        assert!(policy.on_execution("sw", Timestamp(1)));
        assert!(policy.on_execution("sw", Timestamp(2)));
    }

    #[test]
    fn counters_are_per_software() {
        let mut policy = RatingPromptPolicy::new(3, 10);
        for _ in 0..3 {
            policy.on_execution("a", Timestamp(0));
        }
        assert!(!policy.on_execution("b", Timestamp(0)), "b is at 1 execution");
        assert!(policy.on_execution("a", Timestamp(0)));
        assert_eq!(policy.execution_count("a"), 4);
        assert_eq!(policy.execution_count("b"), 1);
        assert_eq!(policy.execution_count("never-run"), 0);
    }

    #[test]
    fn default_matches_paper_parameters() {
        let policy = RatingPromptPolicy::default();
        assert_eq!(policy.execution_threshold(), 50);
        assert_eq!(policy.weekly_cap(), 2);
    }
}
