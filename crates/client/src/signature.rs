//! Vendor code-signature verification (§4.2's enhanced white listing).
//!
//! "An enhanced white listing system … could examine the file about to
//! execute, to determine if it has been digitally signed by a trusted
//! vendor e.g., Microsoft or Adobe. In case the certificate is present and
//! valid, the file is automatically allowed to proceed with the
//! execution." Signatures are Winternitz one-time signatures over the file
//! bytes; the registry maps vendor names to the public-key fingerprints
//! they have published (one key per signed release, as OTS requires).

use std::collections::{HashMap, HashSet};

use softrep_crypto::ots::{WinternitzPublicKey, WinternitzSignature};

/// A detached code signature shipped alongside a release.
pub struct CodeSignature {
    /// The claimed signing vendor.
    pub vendor: String,
    /// The verifying key for this release.
    pub public_key: WinternitzPublicKey,
    /// Signature over the exact file bytes.
    pub signature: WinternitzSignature,
}

/// What signature verification concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureStatus {
    /// No signature shipped with the file.
    Unsigned,
    /// A signature exists but fails verification or key-registry checks.
    Invalid,
    /// Valid signature from a vendor the user has not marked trusted.
    SignedUntrusted,
    /// Valid signature from a trusted vendor — auto-allow material.
    SignedTrusted,
}

/// The client's registry of vendor keys and the user's trust choices.
///
/// §4.2 also proposes "a signature handling interface … that allows the
/// user to white list and blacklist different companies through their
/// digital signatures" — [`trust_vendor`](Self::trust_vendor) /
/// [`distrust_vendor`](Self::distrust_vendor) are that interface.
#[derive(Default)]
pub struct TrustedVendorRegistry {
    /// vendor → fingerprints of release keys published by that vendor.
    vendor_keys: HashMap<String, HashSet<[u8; 32]>>,
    /// Vendors the user auto-allows.
    trusted: HashSet<String>,
}

impl TrustedVendorRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        TrustedVendorRegistry::default()
    }

    /// Record that `vendor` published the release key `public_key`
    /// (distribution channel: vendor website, OS update, …).
    pub fn publish_key(&mut self, vendor: &str, public_key: &WinternitzPublicKey) {
        self.vendor_keys.entry(vendor.to_string()).or_default().insert(public_key.fingerprint());
    }

    /// Mark a vendor as trusted (auto-allow its valid signatures).
    pub fn trust_vendor(&mut self, vendor: &str) {
        self.trusted.insert(vendor.to_string());
    }

    /// Remove a vendor from the trusted set.
    pub fn distrust_vendor(&mut self, vendor: &str) {
        self.trusted.remove(vendor);
    }

    /// Is the vendor currently trusted?
    pub fn is_trusted(&self, vendor: &str) -> bool {
        self.trusted.contains(vendor)
    }

    /// Verify `signature` over `file_bytes` and classify the result.
    pub fn verify(&self, file_bytes: &[u8], signature: Option<&CodeSignature>) -> SignatureStatus {
        let Some(sig) = signature else { return SignatureStatus::Unsigned };
        // The key must be registered to the claimed vendor: a valid
        // signature under an unregistered key is an impersonation attempt.
        let registered = self
            .vendor_keys
            .get(&sig.vendor)
            .is_some_and(|keys| keys.contains(&sig.public_key.fingerprint()));
        if !registered || !sig.public_key.verify(file_bytes, &sig.signature) {
            return SignatureStatus::Invalid;
        }
        if self.trusted.contains(&sig.vendor) {
            SignatureStatus::SignedTrusted
        } else {
            SignatureStatus::SignedUntrusted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use softrep_crypto::ots::WinternitzKeypair;

    fn signed_release(
        vendor: &str,
        file: &[u8],
        rng: &mut StdRng,
    ) -> (CodeSignature, WinternitzKeypair) {
        let keypair = WinternitzKeypair::generate(rng);
        let signature = keypair.sign(file);
        (
            CodeSignature {
                vendor: vendor.into(),
                public_key: keypair.public_key().clone(),
                signature,
            },
            keypair,
        )
    }

    #[test]
    fn unsigned_files_classify_as_unsigned() {
        let registry = TrustedVendorRegistry::new();
        assert_eq!(registry.verify(b"bytes", None), SignatureStatus::Unsigned);
    }

    #[test]
    fn trusted_vendor_signature_auto_allows() {
        let mut rng = StdRng::seed_from_u64(1);
        let file = b"microsoft-update.exe contents";
        let (sig, _kp) = signed_release("Microsoft", file, &mut rng);

        let mut registry = TrustedVendorRegistry::new();
        registry.publish_key("Microsoft", &sig.public_key);
        registry.trust_vendor("Microsoft");

        assert_eq!(registry.verify(file, Some(&sig)), SignatureStatus::SignedTrusted);
        assert!(registry.is_trusted("Microsoft"));
    }

    #[test]
    fn valid_but_untrusted_vendor_is_flagged_separately() {
        let mut rng = StdRng::seed_from_u64(2);
        let file = b"shareware.exe";
        let (sig, _kp) = signed_release("SmallCo", file, &mut rng);
        let mut registry = TrustedVendorRegistry::new();
        registry.publish_key("SmallCo", &sig.public_key);
        assert_eq!(registry.verify(file, Some(&sig)), SignatureStatus::SignedUntrusted);
    }

    #[test]
    fn tampered_file_invalidates_signature() {
        let mut rng = StdRng::seed_from_u64(3);
        let file = b"original bytes";
        let (sig, _kp) = signed_release("Adobe", file, &mut rng);
        let mut registry = TrustedVendorRegistry::new();
        registry.publish_key("Adobe", &sig.public_key);
        registry.trust_vendor("Adobe");
        assert_eq!(
            registry.verify(b"original bytes + adware", Some(&sig)),
            SignatureStatus::Invalid
        );
    }

    #[test]
    fn impersonation_with_unregistered_key_is_invalid() {
        // Attacker signs their malware with their own key but claims to be
        // Microsoft.
        let mut rng = StdRng::seed_from_u64(4);
        let file = b"malware.exe";
        let (sig, _kp) = signed_release("Microsoft", file, &mut rng);
        let mut registry = TrustedVendorRegistry::new();
        registry.trust_vendor("Microsoft"); // trusted, but key never published
        assert_eq!(registry.verify(file, Some(&sig)), SignatureStatus::Invalid);
    }

    #[test]
    fn distrusting_a_vendor_downgrades_its_signatures() {
        let mut rng = StdRng::seed_from_u64(5);
        let file = b"toolbar.exe";
        let (sig, _kp) = signed_release("AdCo", file, &mut rng);
        let mut registry = TrustedVendorRegistry::new();
        registry.publish_key("AdCo", &sig.public_key);
        registry.trust_vendor("AdCo");
        assert_eq!(registry.verify(file, Some(&sig)), SignatureStatus::SignedTrusted);
        registry.distrust_vendor("AdCo");
        assert_eq!(registry.verify(file, Some(&sig)), SignatureStatus::SignedUntrusted);
    }
}
