//! The simulated operating system and execution-hook substrate.
//!
//! Stands in for the paper's kernel driver (Anton Bassov's "Soviet
//! Protector", hooking `NtCreateSection`): every process launch is paused
//! at the hook point, the registered hook decides, and the OS enforces the
//! verdict. The substitution preserves the driver's full observable
//! contract, including its sharpest edge (§4.2): "As we give the users the
//! ability to deny the execution of important system components, we also
//! handed them the ability to crash the entire system in a single mouse
//! click."

use std::collections::HashSet;

use softrep_core::identity::SyntheticExecutable;

/// The hook's verdict on a pending execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookVerdict {
    /// Let the process run.
    Allow,
    /// Block the process.
    Deny,
}

/// Anything that can sit at the hook point. The reputation client's
/// execution flow implements this via [`crate::client::ReputationClient`].
pub trait ExecutionHook {
    /// Decide the fate of `image`, which is about to execute.
    fn on_execute(&mut self, image: &SyntheticExecutable) -> HookVerdict;
}

/// Outcome of a launch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchOutcome {
    /// The process ran.
    Ran,
    /// The hook blocked it.
    Blocked,
    /// The hook blocked an essential system component — the OS crashed.
    Crashed,
    /// The OS is down (a previous crash without reboot).
    SystemDown,
}

/// The simulated OS.
#[derive(Debug, Default)]
pub struct SimOs {
    /// Hex software ids of essential system components.
    essential: HashSet<String>,
    crashed: bool,
    launches: u64,
    blocked: u64,
    crashes: u64,
}

impl SimOs {
    /// A fresh, healthy OS.
    pub fn new() -> Self {
        SimOs::default()
    }

    /// Mark an executable as an essential system component (blocking it
    /// brings the system down).
    pub fn mark_essential(&mut self, software_id_hex: &str) {
        self.essential.insert(software_id_hex.to_string());
    }

    /// Is the id registered as essential?
    pub fn is_essential(&self, software_id_hex: &str) -> bool {
        self.essential.contains(software_id_hex)
    }

    /// Attempt to launch `image`, routing the decision through `hook`.
    pub fn launch(
        &mut self,
        image: &SyntheticExecutable,
        hook: &mut dyn ExecutionHook,
    ) -> LaunchOutcome {
        if self.crashed {
            return LaunchOutcome::SystemDown;
        }
        self.launches += 1;
        match hook.on_execute(image) {
            HookVerdict::Allow => LaunchOutcome::Ran,
            HookVerdict::Deny => {
                self.blocked += 1;
                if self.essential.contains(&image.id_sha1().to_hex()) {
                    self.crashed = true;
                    self.crashes += 1;
                    LaunchOutcome::Crashed
                } else {
                    LaunchOutcome::Blocked
                }
            }
        }
    }

    /// Launch with no hook installed (the pre-client baseline: everything
    /// runs).
    pub fn launch_unprotected(&mut self, _image: &SyntheticExecutable) -> LaunchOutcome {
        if self.crashed {
            return LaunchOutcome::SystemDown;
        }
        self.launches += 1;
        LaunchOutcome::Ran
    }

    /// Bring a crashed system back up.
    pub fn reboot(&mut self) {
        self.crashed = false;
    }

    /// Is the system currently down?
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Total launch attempts (excluding those refused while down).
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Launches blocked by the hook.
    pub fn blocked(&self) -> u64 {
        self.blocked
    }

    /// Crashes caused by blocking essential components.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysDeny;
    impl ExecutionHook for AlwaysDeny {
        fn on_execute(&mut self, _image: &SyntheticExecutable) -> HookVerdict {
            HookVerdict::Deny
        }
    }

    struct AlwaysAllow;
    impl ExecutionHook for AlwaysAllow {
        fn on_execute(&mut self, _image: &SyntheticExecutable) -> HookVerdict {
            HookVerdict::Allow
        }
    }

    fn exe(name: &str) -> SyntheticExecutable {
        SyntheticExecutable::new(name, "Vendor", "1.0", name.as_bytes().to_vec())
    }

    #[test]
    fn allowed_processes_run() {
        let mut os = SimOs::new();
        assert_eq!(os.launch(&exe("app.exe"), &mut AlwaysAllow), LaunchOutcome::Ran);
        assert_eq!(os.launches(), 1);
        assert_eq!(os.blocked(), 0);
    }

    #[test]
    fn denied_processes_are_blocked() {
        let mut os = SimOs::new();
        assert_eq!(os.launch(&exe("spy.exe"), &mut AlwaysDeny), LaunchOutcome::Blocked);
        assert_eq!(os.blocked(), 1);
        assert!(!os.is_crashed());
    }

    #[test]
    fn blocking_essential_component_crashes_the_system() {
        let mut os = SimOs::new();
        let system_file = exe("csrss.exe");
        os.mark_essential(&system_file.id_sha1().to_hex());
        assert!(os.is_essential(&system_file.id_sha1().to_hex()));

        assert_eq!(os.launch(&system_file, &mut AlwaysDeny), LaunchOutcome::Crashed);
        assert!(os.is_crashed());
        assert_eq!(os.crashes(), 1);

        // Everything fails while down — even allowed programs.
        assert_eq!(os.launch(&exe("app.exe"), &mut AlwaysAllow), LaunchOutcome::SystemDown);

        os.reboot();
        assert_eq!(os.launch(&exe("app.exe"), &mut AlwaysAllow), LaunchOutcome::Ran);
    }

    #[test]
    fn allowing_essential_components_is_fine() {
        let mut os = SimOs::new();
        let system_file = exe("winlogon.exe");
        os.mark_essential(&system_file.id_sha1().to_hex());
        assert_eq!(os.launch(&system_file, &mut AlwaysAllow), LaunchOutcome::Ran);
        assert!(!os.is_crashed());
    }

    #[test]
    fn unprotected_baseline_runs_everything() {
        let mut os = SimOs::new();
        assert_eq!(os.launch_unprotected(&exe("anything.exe")), LaunchOutcome::Ran);
        assert_eq!(os.blocked(), 0);
    }
}
