//! Transport abstraction between client and server.
//!
//! The agent simulations run thousands of clients against one in-process
//! server; the networked examples speak framed XML over TCP. Both paths
//! carry the identical [`Request`]/[`Response`] messages, so the client
//! logic is transport-blind.
//!
//! The TCP path is resilient: [`TcpConnector`] owns connect/call
//! deadlines, bounded exponential backoff with jitter, and automatic
//! reconnect when the server restarts mid-conversation. Its error
//! taxonomy ([`CallError`]) separates transport failures that retrying
//! can fix from protocol violations that it cannot.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use softrep_proto::{Request, Response};
use softrep_server::tcp::TcpClient;
use softrep_server::ReputationServer;

/// Anything that can deliver a request and return the response.
pub trait Connector {
    /// Perform one request/response exchange.
    fn call(&mut self, request: &Request) -> Response;
}

/// Direct in-process calls into a shared server instance.
///
/// `source` is the transport identity handed to the server's flood guard —
/// for simulations this is the simulated client address, mirroring what a
/// TCP peer address provides in deployment.
pub struct InProcessConnector {
    server: Arc<ReputationServer>,
    source: String,
}

impl InProcessConnector {
    /// Connect "from" `source`.
    pub fn new(server: Arc<ReputationServer>, source: impl Into<String>) -> Self {
        InProcessConnector { server, source: source.into() }
    }

    /// The shared server (for test inspection).
    pub fn server(&self) -> &Arc<ReputationServer> {
        &self.server
    }
}

impl Connector for InProcessConnector {
    fn call(&mut self, request: &Request) -> Response {
        self.server.handle(request, &self.source)
    }
}

impl<F: FnMut(&Request) -> Response> Connector for F {
    fn call(&mut self, request: &Request) -> Response {
        self(request)
    }
}

/// Why a [`TcpConnector`] call ultimately failed.
#[derive(Debug)]
pub enum CallError {
    /// Every attempt hit a retryable transport failure (connection
    /// refused, reset, closed, timed out); the last one is carried along.
    /// Retrying later — e.g. after the server comes back — may succeed.
    Exhausted {
        /// Attempts made, including the first.
        attempts: u32,
        /// The final attempt's failure.
        last_error: String,
    },
    /// The peer violated the protocol (oversized frame, undecodable
    /// response, non-UTF-8 body). Retrying cannot help; something is
    /// wrong with the software on one end.
    Fatal(String),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Exhausted { attempts, last_error } => {
                write!(f, "transport failed after {attempts} attempt(s): {last_error}")
            }
            CallError::Fatal(e) => write!(f, "fatal protocol error: {e}"),
        }
    }
}

impl std::error::Error for CallError {}

impl CallError {
    /// Whether waiting and calling again could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CallError::Exhausted { .. })
    }
}

/// Retry/timeout tuning for [`TcpConnector`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for one request/response exchange (socket read timeout).
    pub call_timeout: Duration,
    /// Total attempts per call (first try plus retries), minimum 1.
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff * 2^(n-1)`, capped at
    /// [`RetryPolicy::max_backoff`], then jittered.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep (pre-jitter).
    pub max_backoff: Duration,
    /// Fraction of the backoff randomly shaved off (0.0 = none, 1.0 =
    /// full jitter down to zero), de-synchronizing reconnect stampedes.
    pub jitter: f64,
    /// Seed for the jitter RNG, so tests are reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            connect_timeout: Duration::from_secs(2),
            call_timeout: Duration::from_secs(10),
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter: 0.5,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry `retry` (1-based), jittered via `rng`.
    /// Bounded: never exceeds `max_backoff`, never negative.
    pub fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let exp = retry.saturating_sub(1).min(20);
        let raw = self.base_backoff.saturating_mul(2u32.saturating_pow(exp)).min(self.max_backoff);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let scale = 1.0 - jitter * rng.gen::<f64>();
        raw.mul_f64(scale)
    }
}

/// A framed-XML TCP connector with timeouts, bounded exponential backoff
/// with jitter, and automatic reconnect across server restarts.
pub struct TcpConnector {
    addr: SocketAddr,
    policy: RetryPolicy,
    client: Option<TcpClient>,
    rng: StdRng,
}

impl TcpConnector {
    /// Resolve `addr` and build a connector. No connection is attempted
    /// yet; the first call establishes (and re-establishes) it.
    pub fn new(addr: impl ToSocketAddrs, policy: RetryPolicy) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
        let rng = StdRng::seed_from_u64(policy.jitter_seed);
        Ok(TcpConnector { addr, policy, client: None, rng })
    }

    /// Build a connector and eagerly establish the first connection,
    /// retrying per the policy.
    pub fn connect(addr: impl ToSocketAddrs, policy: RetryPolicy) -> Result<Self, CallError> {
        let mut connector = TcpConnector::new(addr, policy)
            .map_err(|e| CallError::Fatal(format!("bad address: {e}")))?;
        let max = connector.policy.max_attempts.max(1);
        let mut last_error = String::new();
        for attempt in 1..=max {
            if attempt > 1 {
                let nap = connector.policy.backoff(attempt - 1, &mut connector.rng);
                std::thread::sleep(nap);
            }
            match connector.ensure_connected() {
                Ok(()) => return Ok(connector),
                Err(e) => last_error = e,
            }
        }
        Err(CallError::Exhausted { attempts: max, last_error })
    }

    /// The resolved server address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Is there a live (last we knew) connection?
    pub fn is_connected(&self) -> bool {
        self.client.is_some()
    }

    fn ensure_connected(&mut self) -> Result<(), String> {
        if self.client.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.policy.connect_timeout)
            .map_err(|e| format!("connect to {}: {e}", self.addr))?;
        let client = TcpClient::from_stream(stream).map_err(|e| format!("clone stream: {e}"))?;
        client
            .set_timeouts(Some(self.policy.call_timeout), Some(self.policy.call_timeout))
            .map_err(|e| format!("set deadlines: {e}"))?;
        self.client = Some(client);
        Ok(())
    }

    /// One attempt: connect if needed, exchange one frame pair.
    fn attempt(&mut self, request: &Request) -> Result<Response, AttemptFailure> {
        self.ensure_connected().map_err(AttemptFailure::Retryable)?;
        let Some(client) = self.client.as_mut() else {
            return Err(AttemptFailure::Retryable("no connection".to_string()));
        };
        match client.call(request) {
            Ok(response) => Ok(response),
            Err(e) if e.is_disconnect() => {
                // Reconnect on the next attempt; the old stream is dead.
                self.client = None;
                Err(AttemptFailure::Retryable(e.to_string()))
            }
            Err(e) => {
                // Protocol violation: the stream may be desynchronized, so
                // drop it — but do not retry, the peer is misbehaving.
                self.client = None;
                Err(AttemptFailure::Fatal(e.to_string()))
            }
        }
    }

    /// Perform one exchange with retries, backoff, and reconnect. A
    /// `not-primary` redirect (the peer is a read replica — see
    /// DESIGN.md §15) is followed once: the connector re-points at the
    /// carried primary address and repeats the call there, so a client
    /// configured against a replica still gets its writes through. The
    /// hop is taken at most once per call — two replicas pointing at each
    /// other surface the second redirect to the caller instead of
    /// bouncing forever.
    pub fn try_call(&mut self, request: &Request) -> Result<Response, CallError> {
        let response = self.call_with_retries(request)?;
        let Response::NotPrimary { primary } = response else {
            return Ok(response);
        };
        let Some(primary_addr) = primary.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
            // An unresolvable redirect target is not actionable; hand the
            // redirect to the caller as-is.
            return Ok(Response::NotPrimary { primary });
        };
        if primary_addr == self.addr {
            // The replica claims *we* are already talking to the primary:
            // a topology misconfiguration, not something retrying fixes.
            return Ok(Response::NotPrimary { primary });
        }
        // Re-point permanently: every subsequent call goes straight to
        // the primary instead of paying the redirect again.
        self.addr = primary_addr;
        self.client = None;
        self.call_with_retries(request)
    }

    /// The raw retry loop, redirect-blind.
    fn call_with_retries(&mut self, request: &Request) -> Result<Response, CallError> {
        let max = self.policy.max_attempts.max(1);
        let mut last_error = String::new();
        for attempt in 1..=max {
            if attempt > 1 {
                let nap = self.policy.backoff(attempt - 1, &mut self.rng);
                std::thread::sleep(nap);
            }
            match self.attempt(request) {
                Ok(response) => return Ok(response),
                Err(AttemptFailure::Retryable(e)) => last_error = e,
                Err(AttemptFailure::Fatal(e)) => return Err(CallError::Fatal(e)),
            }
        }
        Err(CallError::Exhausted { attempts: max, last_error })
    }
}

enum AttemptFailure {
    Retryable(String),
    Fatal(String),
}

impl Connector for TcpConnector {
    /// Infallible facade over [`TcpConnector::try_call`]: transport
    /// failures degrade into protocol-level error responses, so callers
    /// built against [`Connector`] keep working over a flaky network.
    fn call(&mut self, request: &Request) -> Response {
        match self.try_call(request) {
            Ok(response) => response,
            Err(e @ CallError::Exhausted { .. }) => {
                Response::error("transport-unavailable", e.to_string())
            }
            Err(e @ CallError::Fatal(_)) => Response::error("transport-protocol", e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrep_core::clock::SimClock;
    use softrep_core::db::ReputationDb;
    use softrep_server::ServerConfig;

    #[test]
    fn in_process_connector_round_trips() {
        let server = Arc::new(ReputationServer::new(
            ReputationDb::in_memory("p"),
            Arc::new(SimClock::new()),
            ServerConfig::default(),
            1,
        ));
        let mut conn = InProcessConnector::new(server, "10.0.0.1");
        let resp = conn.call(&Request::QuerySoftware { software_id: "ab".repeat(20) });
        assert!(matches!(resp, Response::UnknownSoftware { .. }));
        assert_eq!(conn.server().flood_guard().rejected_count(), 0);
    }

    #[test]
    fn closures_are_connectors() {
        let mut conn = |_req: &Request| Response::Ok;
        assert_eq!(Connector::call(&mut conn, &Request::GetPuzzle), Response::Ok);
    }

    #[test]
    fn backoff_is_exponential_bounded_and_jitter_free_when_disabled() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(450),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(100));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(200));
        assert_eq!(policy.backoff(3, &mut rng), Duration::from_millis(400));
        // Capped thereafter — even for absurd retry counts.
        assert_eq!(policy.backoff(4, &mut rng), Duration::from_millis(450));
        assert_eq!(policy.backoff(40, &mut rng), Duration::from_millis(450));
    }

    #[test]
    fn jitter_only_ever_shortens_the_backoff() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(80),
            max_backoff: Duration::from_secs(1),
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        for retry in 1..10 {
            let nap = policy.backoff(retry, &mut rng);
            let ceiling = policy
                .base_backoff
                .saturating_mul(2u32.saturating_pow(retry - 1))
                .min(policy.max_backoff);
            assert!(nap <= ceiling, "jitter must never lengthen the sleep");
            assert!(nap >= ceiling.mul_f64(0.5), "jitter shaves at most the configured fraction");
        }
    }

    #[test]
    fn unreachable_server_exhausts_as_retryable() {
        // A port from the ephemeral range with nothing listening:
        // connection refused, which is retryable — and must be reported
        // as Exhausted, not Fatal.
        let policy = RetryPolicy {
            max_attempts: 2,
            connect_timeout: Duration::from_millis(200),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let mut conn = TcpConnector::new("127.0.0.1:9", policy).expect("resolve");
        let err = conn.try_call(&Request::GetPuzzle).expect_err("nothing listens on port 9");
        assert!(err.is_retryable(), "refused connection must be retryable: {err}");
        let CallError::Exhausted { attempts, .. } = err else { panic!("{err}") };
        assert_eq!(attempts, 2);
        // The infallible facade degrades the same failure into an error
        // response instead of panicking the caller.
        let resp = Connector::call(&mut conn, &Request::GetPuzzle);
        assert!(
            matches!(resp, Response::Error { ref code, .. } if code == "transport-unavailable"),
            "{resp:?}"
        );
    }
}
