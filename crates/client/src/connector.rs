//! Transport abstraction between client and server.
//!
//! The agent simulations run thousands of clients against one in-process
//! server; the networked examples speak framed XML over TCP. Both paths
//! carry the identical [`Request`]/[`Response`] messages, so the client
//! logic is transport-blind.

use std::sync::Arc;

use softrep_proto::{Request, Response};
use softrep_server::ReputationServer;

/// Anything that can deliver a request and return the response.
pub trait Connector {
    /// Perform one request/response exchange.
    fn call(&mut self, request: &Request) -> Response;
}

/// Direct in-process calls into a shared server instance.
///
/// `source` is the transport identity handed to the server's flood guard —
/// for simulations this is the simulated client address, mirroring what a
/// TCP peer address provides in deployment.
pub struct InProcessConnector {
    server: Arc<ReputationServer>,
    source: String,
}

impl InProcessConnector {
    /// Connect "from" `source`.
    pub fn new(server: Arc<ReputationServer>, source: impl Into<String>) -> Self {
        InProcessConnector { server, source: source.into() }
    }

    /// The shared server (for test inspection).
    pub fn server(&self) -> &Arc<ReputationServer> {
        &self.server
    }
}

impl Connector for InProcessConnector {
    fn call(&mut self, request: &Request) -> Response {
        self.server.handle(request, &self.source)
    }
}

impl<F: FnMut(&Request) -> Response> Connector for F {
    fn call(&mut self, request: &Request) -> Response {
        self(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrep_core::clock::SimClock;
    use softrep_core::db::ReputationDb;
    use softrep_server::ServerConfig;

    #[test]
    fn in_process_connector_round_trips() {
        let server = Arc::new(ReputationServer::new(
            ReputationDb::in_memory("p"),
            Arc::new(SimClock::new()),
            ServerConfig::default(),
            1,
        ));
        let mut conn = InProcessConnector::new(server, "10.0.0.1");
        let resp = conn.call(&Request::QuerySoftware { software_id: "ab".repeat(20) });
        assert!(matches!(resp, Response::UnknownSoftware { .. }));
        assert_eq!(conn.server().flood_guard().rejected_count(), 0);
    }

    #[test]
    fn closures_are_connectors() {
        let mut conn = |_req: &Request| Response::Ok;
        assert_eq!(Connector::call(&mut conn, &Request::GetPuzzle), Response::Ok);
    }
}
