//! Shared helpers for the experiment harnesses and micro-benchmarks.
//!
//! The `benches/experiments.rs` target regenerates every table and figure
//! of EXPERIMENTS.md (`cargo bench -p softrep-bench --bench experiments`);
//! the criterion targets cover experiment D10 (system performance).

/// Experiment scale selector.
///
/// * `SOFTREP_SCALE=quick` — the test-sized configurations (seconds).
/// * default — the `full()` configurations recorded in EXPERIMENTS.md.
pub fn use_quick_scale() -> bool {
    std::env::var("SOFTREP_SCALE").map(|v| v == "quick").unwrap_or(false)
}

/// Print an experiment header followed by its tables.
pub fn print_tables(id: &str, tables: &[softrep_sim::TextTable]) {
    println!("\n######## {id} ########");
    for table in tables {
        println!("{}", table.render());
    }
}

/// Wall-clock one closure, printing the duration after the experiment id.
pub fn timed<T>(id: &str, f: impl FnOnce() -> T) -> T {
    // Measures the harness itself, not simulated time — the one legitimate
    // raw-clock read outside softrep-core's clock module.
    let start = std::time::Instant::now(); // lint: allow(clock, "wall-clock duration of a bench run is the measurement itself")
    let out = f();
    println!("[{id} completed in {:.1?}]", start.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_selector_reads_env() {
        // Unset by default in the test environment.
        if std::env::var("SOFTREP_SCALE").is_err() {
            assert!(!use_quick_scale());
        }
    }

    #[test]
    fn timed_returns_value() {
        assert_eq!(timed("t", || 42), 42);
    }
}
