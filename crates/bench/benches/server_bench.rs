//! D10 (server): request throughput and the 24 h aggregation batch cost as
//! the database grows — the numbers behind the claim that a single modest
//! server sustains the paper's deployment. D11 (reactor, BENCH_REACTOR in
//! EXPERIMENTS.md): the front-end concurrency sweep A/B-ing the
//! thread-per-connection pool against the epoll reactor under mixed
//! idle+active connection loads, plus a steady-state allocation probe
//! backed by a counting global allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use softrep_core::clock::{SimClock, Timestamp};
use softrep_core::db::ReputationDb;
use softrep_proto::{Request, Response};
use softrep_server::flood::FloodGuard;
use softrep_server::tcp::{Frontend, FrontendServer, TcpClient, TcpServer, TcpServerConfig};
use softrep_server::{ReputationServer, ServerConfig};

/// Counts every heap allocation in the process so the sweep can report
/// allocations-per-request for each front end. Counting is a single
/// relaxed `fetch_add`; the measured deltas compare front ends against
/// each other under identical client-side behaviour, so the client's own
/// allocations cancel out of the A/B difference.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn sw_id(i: u64) -> String {
    format!("{:040x}", i)
}

/// Seed a database with `users` members, `programs` titles and `votes`
/// ballots via the direct DB API (setup cost, not the measured path).
fn seeded_db(users: usize, programs: usize, votes: usize, seed: u64) -> ReputationDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = ReputationDb::in_memory("bench");
    for u in 0..users {
        let name = format!("user{u:05}");
        let token = db
            .register_user(&name, "pw", &format!("{name}@b.example"), Timestamp(0), &mut rng)
            .unwrap();
        db.activate_user(&name, &token).unwrap();
    }
    for p in 0..programs {
        db.register_software(
            &sw_id(p as u64),
            "app.exe",
            1_000,
            Some("Acme".into()),
            None,
            Timestamp(0),
        )
        .unwrap();
    }
    for v in 0..votes {
        let user = format!("user{:05}", v % users);
        let program = sw_id(rng.gen_range(0..programs) as u64);
        let score = rng.gen_range(1..=10);
        db.submit_vote(&user, &program, score, vec!["popup_ads".into()], Timestamp(1)).unwrap();
    }
    db
}

fn server_over(db: ReputationDb) -> ReputationServer {
    ReputationServer::new(
        db,
        Arc::new(SimClock::new()),
        ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            ..ServerConfig::default()
        },
        9,
    )
}

fn bench_request_throughput(c: &mut Criterion) {
    let db = seeded_db(200, 500, 5_000, 1);
    db.force_aggregation(Timestamp(2)).unwrap();
    let server = server_over(db);

    // A live session for the vote path.
    let Response::Session { token } = server.handle(
        &Request::Login { username: "user00000".into(), password: "pw".into() },
        "bench-client",
    ) else {
        panic!("login failed")
    };

    let mut group = c.benchmark_group("server_requests");
    group.throughput(Throughput::Elements(1));
    let query = Request::QuerySoftware { software_id: sw_id(7) };
    group.bench_function("query_software", |b| {
        b.iter(|| server.handle(black_box(&query), "bench-client"))
    });
    let vendor = Request::QueryVendor { vendor: "Acme".into() };
    group.bench_function("query_vendor", |b| {
        b.iter(|| server.handle(black_box(&vendor), "bench-client"))
    });
    let mut i = 0u64;
    group.bench_function("submit_vote", |b| {
        b.iter(|| {
            i += 1;
            let vote = Request::SubmitVote {
                session: token.clone(),
                software_id: sw_id(i % 500),
                score: ((i % 10) + 1) as u8,
                behaviours: vec![],
            };
            server.handle(&vote, "bench-client")
        })
    });
    group.finish();
}

/// Parallel report queries against a warm cache: the report cache is a
/// `RwLock`, so concurrent hits share the read lock instead of queueing
/// on the mutex the cache used before the concurrent-storage work. One
/// element per read, at 1/4 threads.
fn bench_concurrent_cached_reads(c: &mut Criterion) {
    let reads_per_thread: usize =
        if std::env::var_os("SOFTREP_BENCH_SMOKE").is_some() { 200 } else { 5_000 };
    let db = seeded_db(50, 100, 1_000, 4);
    db.force_aggregation(Timestamp(2)).unwrap();
    // Warm the cache entries the readers will hit.
    for p in 0..16u64 {
        db.software_report(&sw_id(p)).unwrap();
    }

    let mut group = c.benchmark_group("server_cached_reads");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.throughput(Throughput::Elements((threads * reads_per_thread) as u64));
        group.bench_with_input(
            BenchmarkId::new("software_report_hit", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for t in 0..threads as u64 {
                            let db = &db;
                            s.spawn(move || {
                                for r in 0..reads_per_thread as u64 {
                                    let id = sw_id((r + t * 3) % 16);
                                    black_box(db.software_report(&id).unwrap());
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_batch");
    group.sample_size(10);
    for votes in [1_000usize, 10_000, 50_000] {
        let users = 200.min(votes);
        let programs = 500;
        let db = seeded_db(users, programs, votes, 2);
        group.throughput(Throughput::Elements(votes as u64));
        group.bench_with_input(BenchmarkId::new("force_aggregation", votes), &db, |b, db| {
            b.iter(|| db.force_aggregation(black_box(Timestamp(10))).unwrap())
        });
    }
    group.finish();
}

fn bench_registration_path(c: &mut Criterion) {
    let server = server_over(ReputationDb::in_memory("reg-bench"));
    let mut group = c.benchmark_group("server_registration");
    group.sample_size(20);
    let mut i = 0u64;
    group.bench_function("register_activate_login", |b| {
        b.iter(|| {
            i += 1;
            let name = format!("bench{i:08}");
            let resp = server.handle(
                &Request::Register {
                    username: name.clone(),
                    password: "pw".into(),
                    email: format!("{name}@b.example"),
                    puzzle_challenge: String::new(),
                    puzzle_solution: 0,
                },
                "bench-client",
            );
            let Response::Registered { activation_token } = resp else { panic!("{resp:?}") };
            server.handle(
                &Request::Activate { username: name.clone(), token: activation_token },
                "c",
            );
            server.handle(&Request::Login { username: name, password: "pw".into() }, "c")
        })
    });
    group.finish();
}

/// The TCP front end's framed round-trip: the in-process `server.handle`
/// numbers above, plus framing, the socket, and the worker pool. The
/// reconnect variant prices what the reconnect-per-request flooder pays
/// per attempt (connection setup dominates — throttling it is cheap for
/// us and expensive for them).
fn bench_tcp_round_trip(c: &mut Criterion) {
    let db = seeded_db(50, 100, 1_000, 3);
    db.force_aggregation(Timestamp(2)).unwrap();
    let server = Arc::new(server_over(db));
    let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let addr = tcp.local_addr();
    let query = Request::QuerySoftware { software_id: sw_id(7) };

    let mut group = c.benchmark_group("tcp_round_trip");
    group.throughput(Throughput::Elements(1));
    group.sample_size(20);
    let mut client = TcpClient::connect(addr).expect("connect");
    group.bench_function("persistent_connection", |b| {
        b.iter(|| client.call(black_box(&query)).expect("call"))
    });
    group.bench_function("reconnect_per_request", |b| {
        b.iter(|| {
            let mut fresh = TcpClient::connect(addr).expect("connect");
            fresh.call(black_box(&query)).expect("call")
        })
    });
    group.finish();
    drop(client);
    tcp.shutdown();
}

/// The flood guard's admission check, on the paths the TCP front end
/// actually exercises: a single hot identity (the common case — one
/// bucket lookup), and unique-identity churn pinned at the tracking bound
/// so every admission also pays the eviction sweep (the worst case an
/// identity-rotating attacker can force).
fn bench_flood_guard(c: &mut Criterion) {
    let mut group = c.benchmark_group("flood_guard");
    group.throughput(Throughput::Elements(1));

    let hot = FloodGuard::new(u32::MAX, u32::MAX);
    group.bench_function("single_identity", |b| {
        b.iter(|| hot.allow(black_box("10.0.0.1"), Timestamp(0)))
    });

    let bound = 1_024;
    let churn = FloodGuard::with_limits(4, 1, bound);
    let mut i = 0u64;
    group.bench_function("identity_churn_at_bound", |b| {
        b.iter(|| {
            i += 1;
            churn.allow(black_box(&format!("churn-{i}")), Timestamp(0))
        })
    });
    group.finish();
}

/// The front ends this build can run: the thread pool everywhere, the
/// epoll reactor on Linux.
fn available_frontends() -> Vec<Frontend> {
    let mut frontends = vec![Frontend::Threads];
    #[cfg(target_os = "linux")]
    frontends.push(Frontend::Epoll);
    frontends
}

fn connect_idle(addr: std::net::SocketAddr) -> TcpStream {
    // The listener backlog is finite; a connect burst may need retries
    // while the server drains the queue.
    loop {
        match TcpStream::connect_timeout(&addr, Duration::from_secs(5)) {
            Ok(stream) => return stream,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// D11: the concurrency sweep behind BENCH_REACTOR. At each total
/// connection count a handful of active clients issue framed queries
/// while the rest of the connections sit idle (connected, silent) — the
/// mixed load a real deployment sees. The thread front end pins one
/// worker per idle peer and sheds everything past `max_connections` (64),
/// so at 256+ its active clients are turned away; the reactor holds the
/// whole set in its connection table and keeps serving.
fn bench_frontend_concurrency_sweep(c: &mut Criterion) {
    let smoke = std::env::var_os("SOFTREP_BENCH_SMOKE").is_some();
    let conn_counts: &[usize] = if smoke { &[1, 64] } else { &[1, 64, 256, 1024] };

    let mut group = c.benchmark_group("frontend_concurrency");
    group.sample_size(10);
    for frontend in available_frontends() {
        for &conns in conn_counts {
            let db = seeded_db(50, 100, 1_000, 3);
            db.force_aggregation(Timestamp(2)).unwrap();
            let fe = FrontendServer::spawn_with(
                Arc::new(server_over(db)),
                "127.0.0.1:0",
                TcpServerConfig {
                    frontend,
                    max_open_connections: 4096,
                    read_timeout: Duration::from_secs(300), // idle peers stay pinned
                    drain_deadline: Duration::from_millis(200),
                    ..TcpServerConfig::default()
                },
            )
            .expect("bind loopback");
            let addr = fe.local_addr();
            let query = Request::QuerySoftware { software_id: sw_id(7) };

            let active_n = if conns == 1 { 1 } else { 8 };
            let idle: Vec<TcpStream> = (0..conns - active_n).map(|_| connect_idle(addr)).collect();

            // The active clients connect after the idle load is in place —
            // on the thread front end past its worker cap they are shed,
            // which is the measured difference, not a bench failure.
            let mut active = Vec::with_capacity(active_n);
            let mut shed = false;
            for _ in 0..active_n {
                let mut client = TcpClient::connect(addr).expect("connect");
                client
                    .set_timeouts(Some(Duration::from_secs(30)), Some(Duration::from_secs(30)))
                    .expect("timeouts");
                match client.call(&query) {
                    Ok(Response::Error { ref code, .. }) if code == "overloaded" => {
                        shed = true;
                        break;
                    }
                    Ok(_) => active.push(client),
                    Err(_) => {
                        shed = true;
                        break;
                    }
                }
            }
            if shed {
                eprintln!(
                    "frontend_concurrency/{frontend:?}/{conns}: active clients shed \
                     (front end saturated; admitted {} of {conns}) — no throughput to measure",
                    fe.stats().accepted
                );
                drop(active);
                drop(idle);
                fe.shutdown();
                continue;
            }

            group.throughput(Throughput::Elements(active_n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{frontend:?}").to_lowercase(), conns),
                &conns,
                |b, _| {
                    b.iter(|| {
                        for client in &mut active {
                            client.call(black_box(&query)).expect("call");
                        }
                    })
                },
            );
            drop(active);
            drop(idle);
            fe.shutdown();
        }
    }
    group.finish();
}

/// D11's allocation probe: allocations per framed request on a warm
/// keep-alive connection, per front end. Process-wide (client included),
/// so the absolute number carries the client's encode/decode cost; the
/// A/B difference between front ends isolates the server side. Before
/// the buffer-reuse work the framing layer alone cost 2 `Vec` + 1
/// `String` per request; the reactor's steady state re-uses its
/// per-connection buffers and adds zero framing allocations.
fn alloc_probe(_c: &mut Criterion) {
    const WARMUP: usize = 256;
    const MEASURED: u64 = 1024;
    for frontend in available_frontends() {
        let db = seeded_db(50, 100, 1_000, 3);
        db.force_aggregation(Timestamp(2)).unwrap();
        let fe = FrontendServer::spawn_with(
            Arc::new(server_over(db)),
            "127.0.0.1:0",
            TcpServerConfig { frontend, ..TcpServerConfig::default() },
        )
        .expect("bind loopback");
        let query = Request::QuerySoftware { software_id: sw_id(7) };
        let mut client = TcpClient::connect(fe.local_addr()).expect("connect");
        for _ in 0..WARMUP {
            client.call(&query).expect("warmup call");
        }
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..MEASURED {
            client.call(&query).expect("measured call");
        }
        let per_request = (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / MEASURED as f64;
        eprintln!(
            "alloc_probe/{frontend:?}: {per_request:.1} allocations per request \
             (process-wide, client included; {MEASURED} warm keep-alive requests)"
        );
        drop(client);
        fe.shutdown();
    }
}

/// BENCH_REPL (EXPERIMENTS.md): replication catch-up. `tail` measures the
/// steady-state WAL-shipping rate — a fresh replica subscribing at seq 0
/// against a primary whose log still holds every entry drains it page by
/// page; entries/s is the headline number. `bootstrap` measures the cold
/// path — the primary's log has been compacted away, so the replica must
/// pull a full snapshot and install it before it can tail.
fn bench_replication_catchup(c: &mut Criterion) {
    use softrep_core::db::ReputationDb as Db;
    use softrep_crypto::salted::SecretPepper;
    use softrep_server::repl::{ReplicaTail, ReplicaTailConfig};
    use softrep_storage::batch::WriteBatch;
    use softrep_storage::{replication, Store};

    let smoke = std::env::var_os("SOFTREP_BENCH_SMOKE").is_some();
    let entry_counts: &[usize] = if smoke { &[1_000] } else { &[10_000, 100_000] };

    fn bench_dir(name: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("softrep-bench-repl-{name}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn file_backed(dir: &std::path::Path) -> Arc<ReputationServer> {
        let store = Arc::new(Store::open(dir).expect("open bench store"));
        let db = Db::new(store, SecretPepper::new(b"bench-repl".to_vec()));
        Arc::new(ReputationServer::new(
            db,
            Arc::new(SimClock::new()),
            ServerConfig { puzzle_difficulty: 0, ..ServerConfig::default() },
            9,
        ))
    }

    fn fast_tail() -> ReplicaTailConfig {
        ReplicaTailConfig {
            poll_interval: Duration::from_millis(1),
            backoff_start: Duration::from_millis(1),
            ..ReplicaTailConfig::default()
        }
    }

    /// Spawn a tail against `addr`, block until the replica's watermark
    /// reaches `target`, and tear the replica down again.
    fn catch_up(addr: std::net::SocketAddr, target: u64, which: &str) {
        let dir = bench_dir(which);
        let replica = file_backed(&dir);
        let store = Arc::clone(replica.db().store());
        let tail = ReplicaTail::spawn_with(Arc::clone(&replica), addr.to_string(), fast_tail())
            .expect("spawn tail");
        while replication::applied_watermark(&store) < target {
            std::thread::sleep(Duration::from_micros(200));
        }
        tail.shutdown();
        drop(replica);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let mut group = c.benchmark_group("replication_catchup");
    group.sample_size(10);
    for &entries in entry_counts {
        // One primary per size, shared by both variants: `tail` subscribes
        // while the log is intact, then the log is compacted away for
        // `bootstrap`.
        let dir = bench_dir("primary");
        let primary = file_backed(&dir);
        let store = Arc::clone(primary.db().store());
        for i in 0..entries {
            let tree = ["titles", "votes", "comments"][i % 3];
            if i % 11 == 7 {
                let mut batch = WriteBatch::new();
                batch.put(tree, format!("key-{i}").into_bytes(), vec![b'm'; 1 + i % 200]);
                batch.put("meta", format!("b-{i}").into_bytes(), i.to_le_bytes().to_vec());
                store.apply(&batch).expect("seed batch");
            } else {
                store
                    .put(tree, format!("key-{i}").into_bytes(), vec![b'v'; 1 + i % 97])
                    .expect("seed put");
            }
        }
        let target = store.committed_seq();
        let tcp = TcpServer::spawn(Arc::clone(&primary), "127.0.0.1:0").expect("bind loopback");
        let addr = tcp.local_addr();

        group.throughput(Throughput::Elements(entries as u64));
        group.bench_with_input(BenchmarkId::new("tail", entries), &entries, |b, _| {
            b.iter(|| catch_up(addr, target, "tail"))
        });

        // Retire the log: every fresh subscriber now has to bootstrap from
        // a snapshot before it can follow the (empty) suffix.
        store.compact().expect("compact");
        group.bench_with_input(BenchmarkId::new("bootstrap", entries), &entries, |b, _| {
            b.iter(|| catch_up(addr, target, "boot"))
        });

        tcp.shutdown();
        drop(primary);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_request_throughput,
    bench_concurrent_cached_reads,
    bench_aggregation,
    bench_registration_path,
    bench_tcp_round_trip,
    bench_flood_guard,
    bench_frontend_concurrency_sweep,
    bench_replication_catchup,
    alloc_probe
);
criterion_main!(benches);
