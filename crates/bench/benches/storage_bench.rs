//! D10 (storage): WAL append/replay, store writes, scans and recovery.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use softrep_storage::{Store, WriteBatch};

fn bench_store_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_put");
    group.throughput(Throughput::Elements(1));
    group.bench_function("in_memory_single_put", |b| {
        let store = Store::in_memory();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.put("bench", i.to_be_bytes().to_vec(), vec![0u8; 64]).unwrap();
        })
    });
    group.bench_function("in_memory_batch_100", |b| {
        let store = Store::in_memory();
        let mut i = 0u64;
        b.iter(|| {
            let mut batch = WriteBatch::new();
            for _ in 0..100 {
                i += 1;
                batch.put("bench", i.to_be_bytes().to_vec(), vec![0u8; 64]);
            }
            store.apply(&batch).unwrap();
        })
    });
    group.finish();
}

fn bench_durable_store(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("softrep-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let mut group = c.benchmark_group("store_durable");
    group.sample_size(20);
    group.bench_function("wal_backed_put", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.put("bench", i.to_be_bytes().to_vec(), vec![0u8; 64]).unwrap();
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_scans(c: &mut Criterion) {
    let store = Store::in_memory();
    for i in 0..10_000u64 {
        let key = format!("{:02}:{i:08}", i % 16);
        store.put("scan", key.into_bytes(), vec![0u8; 32]).unwrap();
    }
    let mut group = c.benchmark_group("store_scan");
    group.bench_function("prefix_1_of_16", |b| {
        b.iter(|| store.scan_prefix("scan", black_box(b"07:")))
    });
    group.bench_function("full_scan_10k", |b| b.iter(|| store.scan_all("scan")));
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_recovery");
    group.sample_size(10);
    for entries in [1_000usize, 10_000] {
        let dir = std::env::temp_dir()
            .join(format!("softrep-bench-recover-{entries}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            for i in 0..entries as u64 {
                store.put("t", i.to_be_bytes().to_vec(), vec![0u8; 48]).unwrap();
            }
            store.sync().unwrap();
        }
        group.throughput(Throughput::Elements(entries as u64));
        group.bench_with_input(BenchmarkId::new("wal_replay", entries), &dir, |b, dir| {
            b.iter(|| {
                let store = Store::open(dir).unwrap();
                black_box(store.tree_len("t"));
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_store_writes, bench_durable_store, bench_scans, bench_recovery);
criterion_main!(benches);
