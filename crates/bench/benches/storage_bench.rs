//! D10 (storage): WAL append/replay, store writes, scans and recovery —
//! plus the full-vs-incremental aggregation contrast over that storage.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rand::rngs::StdRng;
use rand::SeedableRng;
use softrep_core::bootstrap::BootstrapEntry;
use softrep_core::clock::Timestamp;
use softrep_core::db::ReputationDb;
use softrep_storage::{Store, WriteBatch};

fn bench_store_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_put");
    group.throughput(Throughput::Elements(1));
    group.bench_function("in_memory_single_put", |b| {
        let store = Store::in_memory();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.put("bench", i.to_be_bytes().to_vec(), vec![0u8; 64]).unwrap();
        })
    });
    group.bench_function("in_memory_batch_100", |b| {
        let store = Store::in_memory();
        let mut i = 0u64;
        b.iter(|| {
            let mut batch = WriteBatch::new();
            for _ in 0..100 {
                i += 1;
                batch.put("bench", i.to_be_bytes().to_vec(), vec![0u8; 64]);
            }
            store.apply(&batch).unwrap();
        })
    });
    group.finish();
}

fn bench_durable_store(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("softrep-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let mut group = c.benchmark_group("store_durable");
    group.sample_size(20);
    group.bench_function("wal_backed_put", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.put("bench", i.to_be_bytes().to_vec(), vec![0u8; 64]).unwrap();
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_scans(c: &mut Criterion) {
    let store = Store::in_memory();
    for i in 0..10_000u64 {
        let key = format!("{:02}:{i:08}", i % 16);
        store.put("scan", key.into_bytes(), vec![0u8; 32]).unwrap();
    }
    let mut group = c.benchmark_group("store_scan");
    group.bench_function("prefix_1_of_16", |b| {
        b.iter(|| store.scan_prefix("scan", black_box(b"07:")))
    });
    group.bench_function("full_scan_10k", |b| b.iter(|| store.scan_all("scan")));
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_recovery");
    group.sample_size(10);
    for entries in [1_000usize, 10_000] {
        let dir = std::env::temp_dir()
            .join(format!("softrep-bench-recover-{entries}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            for i in 0..entries as u64 {
                store.put("t", i.to_be_bytes().to_vec(), vec![0u8; 48]).unwrap();
            }
            store.sync().unwrap();
        }
        group.throughput(Throughput::Elements(entries as u64));
        group.bench_with_input(BenchmarkId::new("wal_replay", entries), &dir, |b, dir| {
            b.iter(|| {
                let store = Store::open(dir).unwrap();
                black_box(store.tree_len("t"));
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// The tentpole contrast: recomputing 1 dirty title out of 10 000 with the
/// incremental engine versus the paper's full batch over all 10 000. The
/// incremental iteration includes the vote submission that dirties the
/// title, so it measures the whole hot path, not just the recompute.
fn bench_aggregation(c: &mut Criterion) {
    const TITLES: usize = 10_000;
    let db = ReputationDb::in_memory("bench-agg");
    let entries: Vec<BootstrapEntry> = (0..TITLES)
        .map(|i| BootstrapEntry {
            software_id: format!("{i:040x}"),
            rating: 1.0 + (i % 90) as f64 / 10.0,
            vote_count: 1,
            behaviours: vec![],
        })
        .collect();
    db.bootstrap(&entries, Timestamp(0)).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let token =
        db.register_user("bench_user", "pw", "bench@example.test", Timestamp(0), &mut rng).unwrap();
    db.activate_user("bench_user", &token).unwrap();
    // Settle the seeded dirty set so each incremental iteration recomputes
    // exactly the one title the fresh vote dirties.
    db.force_aggregation_full(Timestamp(10)).unwrap();

    let hot = format!("{:040x}", 7);
    let mut group = c.benchmark_group("aggregation");
    group.sample_size(20);
    let mut t = 1_000u64;
    group.bench_function("incremental_1_dirty_of_10k", |b| {
        b.iter(|| {
            t += 1;
            db.submit_vote("bench_user", &hot, ((t % 10) + 1) as u8, vec![], Timestamp(t)).unwrap();
            black_box(db.force_aggregation_incremental(Timestamp(t)).unwrap());
        })
    });
    group.sample_size(10);
    group.bench_function("full_batch_10k_titles", |b| {
        b.iter(|| {
            t += 1;
            black_box(db.force_aggregation_full(Timestamp(t)).unwrap());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_store_writes,
    bench_durable_store,
    bench_scans,
    bench_recovery,
    bench_aggregation
);
criterion_main!(benches);
