//! D10 (storage): WAL append/replay, store writes, scans and recovery —
//! plus the full-vs-incremental aggregation contrast over that storage.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use softrep_core::bootstrap::BootstrapEntry;
use softrep_core::clock::Timestamp;
use softrep_core::db::ReputationDb;
use softrep_storage::wal::Wal;
use softrep_storage::{DurabilityMode, Store, StoreOptions, WriteBatch};

fn bench_store_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_put");
    group.throughput(Throughput::Elements(1));
    group.bench_function("in_memory_single_put", |b| {
        let store = Store::in_memory();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.put("bench", i.to_be_bytes().to_vec(), vec![0u8; 64]).unwrap();
        })
    });
    group.bench_function("in_memory_batch_100", |b| {
        let store = Store::in_memory();
        let mut i = 0u64;
        b.iter(|| {
            let mut batch = WriteBatch::new();
            for _ in 0..100 {
                i += 1;
                batch.put("bench", i.to_be_bytes().to_vec(), vec![0u8; 64]);
            }
            store.apply(&batch).unwrap();
        })
    });
    group.finish();
}

fn bench_durable_store(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("softrep-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let mut group = c.benchmark_group("store_durable");
    group.sample_size(20);
    group.bench_function("wal_backed_put", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.put("bench", i.to_be_bytes().to_vec(), vec![0u8; 64]).unwrap();
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_scans(c: &mut Criterion) {
    let store = Store::in_memory();
    for i in 0..10_000u64 {
        let key = format!("{:02}:{i:08}", i % 16);
        store.put("scan", key.into_bytes(), vec![0u8; 32]).unwrap();
    }
    let mut group = c.benchmark_group("store_scan");
    group.bench_function("prefix_1_of_16", |b| {
        b.iter(|| store.scan_prefix("scan", black_box(b"07:")))
    });
    group.bench_function("full_scan_10k", |b| b.iter(|| store.scan_all("scan")));
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_recovery");
    group.sample_size(10);
    for entries in [1_000usize, 10_000] {
        let dir = std::env::temp_dir()
            .join(format!("softrep-bench-recover-{entries}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap();
            for i in 0..entries as u64 {
                store.put("t", i.to_be_bytes().to_vec(), vec![0u8; 48]).unwrap();
            }
            store.sync().unwrap();
        }
        group.throughput(Throughput::Elements(entries as u64));
        group.bench_with_input(BenchmarkId::new("wal_replay", entries), &dir, |b, dir| {
            b.iter(|| {
                let store = Store::open(dir).unwrap();
                black_box(store.tree_len("t"));
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// The pre-striping store design, reconstructed as a baseline: one mutex
/// (the same lock type the old `store.rs` used) over the whole tree map,
/// with the WAL append + flush performed while that mutex is held —
/// exactly the contention profile the store had before the sharded read
/// path, when every reader queued behind writer I/O.
struct MutexBaseline {
    inner: Mutex<(BTreeMap<Vec<u8>, Vec<u8>>, Wal)>,
}

impl MutexBaseline {
    fn open(dir: &std::path::Path) -> Self {
        std::fs::create_dir_all(dir).unwrap();
        let wal = Wal::open(dir.join("WAL")).unwrap();
        MutexBaseline { inner: Mutex::new((BTreeMap::new(), wal)) }
    }

    fn put(&self, key: Vec<u8>, value: Vec<u8>, fsync: bool) {
        let mut guard = self.inner.lock();
        guard.1.append(&value).unwrap();
        if fsync {
            guard.1.sync().unwrap();
        } else {
            guard.1.flush().unwrap();
        }
        guard.0.insert(key, value);
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.lock().0.get(key).cloned()
    }
}

/// `SOFTREP_BENCH_SMOKE=1` shrinks the workload so CI can execute every
/// concurrency bench in a couple of seconds as a does-it-run check.
fn smoke() -> bool {
    std::env::var_os("SOFTREP_BENCH_SMOKE").is_some()
}

/// BENCH_STORE_CONCURRENT part 1 — mixed readers against a pool of
/// durable writers (the server's worker threads committing votes).
///
/// 16 writer threads commit fully durable (fsynced) 64-byte puts in a
/// loop for the whole measurement; N reader threads each perform a fixed
/// number of point reads, and the measured quantity is the wall-clock
/// until the readers are done — i.e. read throughput under sustained
/// durable write load. The sharded store performs the fsync outside
/// every tree lock, so readers run right through writer I/O and the
/// writers group-commit each other's fsyncs. The single-mutex baseline
/// holds its one lock across each fsync, exactly like the pre-striping
/// design, so readers repeatedly queue behind the writer pool's disk
/// waits.
fn bench_concurrent_reads(c: &mut Criterion) {
    const WRITERS: u64 = 16;
    const WRITE_VALUE: usize = 64;
    const KEYS: u64 = 10_000;
    let reads_per_thread: u64 = if smoke() { 50 } else { 2000 };
    let thread_counts: &[usize] = if smoke() { &[2] } else { &[1, 2, 4, 8] };

    let dir = std::env::temp_dir().join(format!("softrep-bench-conc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open_with(
        dir.join("sharded"),
        StoreOptions { durability: DurabilityMode::Always, ..StoreOptions::default() },
    )
    .unwrap();
    let baseline = MutexBaseline::open(&dir.join("mutex"));
    for i in 0..KEYS {
        store.put("bench", i.to_be_bytes().to_vec(), vec![0u8; 64]).unwrap();
        baseline.put(i.to_be_bytes().to_vec(), vec![0u8; 64], false);
    }

    let mut group = c.benchmark_group("store_concurrent");
    group.sample_size(10);
    for &threads in thread_counts {
        group.throughput(Throughput::Elements(threads as u64 * reads_per_thread));
        group.bench_with_input(
            BenchmarkId::new("sharded_readers_vs_16_writers", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let stop = AtomicBool::new(false);
                    let (stop, store) = (&stop, &store);
                    std::thread::scope(|s| {
                        for w in 0..WRITERS {
                            s.spawn(move || {
                                let mut i = w << 32;
                                while !stop.load(Ordering::Relaxed) {
                                    i += 1;
                                    store
                                        .put(
                                            "bench",
                                            i.to_be_bytes().to_vec(),
                                            vec![0u8; WRITE_VALUE],
                                        )
                                        .unwrap();
                                }
                            });
                        }
                        let readers: Vec<_> = (0..threads as u64)
                            .map(|t| {
                                s.spawn(move || {
                                    let mut r = t * 7;
                                    for _ in 0..reads_per_thread {
                                        r += 1;
                                        black_box(store.get("bench", &(r % KEYS).to_be_bytes()));
                                    }
                                })
                            })
                            .collect();
                        for reader in readers {
                            reader.join().unwrap();
                        }
                        stop.store(true, Ordering::Relaxed);
                    });
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutex_readers_vs_16_writers", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let stop = AtomicBool::new(false);
                    let (stop, baseline) = (&stop, &baseline);
                    std::thread::scope(|s| {
                        for w in 0..WRITERS {
                            s.spawn(move || {
                                let mut i = w << 32;
                                while !stop.load(Ordering::Relaxed) {
                                    i += 1;
                                    baseline.put(
                                        i.to_be_bytes().to_vec(),
                                        vec![0u8; WRITE_VALUE],
                                        true,
                                    );
                                }
                            });
                        }
                        let readers: Vec<_> = (0..threads as u64)
                            .map(|t| {
                                s.spawn(move || {
                                    let mut r = t * 7;
                                    for _ in 0..reads_per_thread {
                                        r += 1;
                                        black_box(baseline.get(&(r % KEYS).to_be_bytes()));
                                    }
                                })
                            })
                            .collect();
                        for reader in readers {
                            reader.join().unwrap();
                        }
                        stop.store(true, Ordering::Relaxed);
                    });
                });
            },
        );
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// BENCH_STORE_CONCURRENT part 2 — the group-commit contrast. Four writers
/// all demanding full durability: under the old design each commit pays
/// its own fsync while holding the global lock; under `Always` mode the
/// committer coalesces the fsyncs of writers that queued during an
/// in-flight sync.
fn bench_group_commit(c: &mut Criterion) {
    const WRITERS: usize = 4;
    let puts_per_writer: usize = if smoke() { 4 } else { 25 };

    let dir = std::env::temp_dir().join(format!("softrep-bench-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open_with(
        dir.join("group"),
        StoreOptions { durability: DurabilityMode::Always, ..StoreOptions::default() },
    )
    .unwrap();
    let baseline = MutexBaseline::open(&dir.join("fsync-each"));

    let mut group = c.benchmark_group("store_group_commit");
    group.sample_size(10);
    group.throughput(Throughput::Elements((WRITERS * puts_per_writer) as u64));
    let mut round = 0u64;
    group.bench_function("always_4_writers_group_commit", |b| {
        b.iter(|| {
            round += 1;
            std::thread::scope(|s| {
                for w in 0..WRITERS as u64 {
                    let store = &store;
                    s.spawn(move || {
                        for i in 0..puts_per_writer as u64 {
                            let key = (round << 32 | w << 16 | i).to_be_bytes().to_vec();
                            store.put("bench", key, vec![0u8; 64]).unwrap();
                        }
                    });
                }
            });
        })
    });
    let mut round = 0u64;
    group.bench_function("fsync_per_commit_4_writers", |b| {
        b.iter(|| {
            round += 1;
            std::thread::scope(|s| {
                for w in 0..WRITERS as u64 {
                    let baseline = &baseline;
                    s.spawn(move || {
                        for i in 0..puts_per_writer as u64 {
                            let key = (round << 32 | w << 16 | i).to_be_bytes().to_vec();
                            baseline.put(key, vec![0u8; 64], true);
                        }
                    });
                }
            });
        })
    });
    group.finish();
    let stats = store.stats();
    println!(
        "bench store_group_commit/ledger: {} commits, {} fsyncs saved, deepest group {}",
        stats.batches_applied, stats.fsyncs_saved, stats.max_group_depth
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole contrast: recomputing 1 dirty title out of 10 000 with the
/// incremental engine versus the paper's full batch over all 10 000. The
/// incremental iteration includes the vote submission that dirties the
/// title, so it measures the whole hot path, not just the recompute.
fn bench_aggregation(c: &mut Criterion) {
    const TITLES: usize = 10_000;
    let db = ReputationDb::in_memory("bench-agg");
    let entries: Vec<BootstrapEntry> = (0..TITLES)
        .map(|i| BootstrapEntry {
            software_id: format!("{i:040x}"),
            rating: 1.0 + (i % 90) as f64 / 10.0,
            vote_count: 1,
            behaviours: vec![],
        })
        .collect();
    db.bootstrap(&entries, Timestamp(0)).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let token =
        db.register_user("bench_user", "pw", "bench@example.test", Timestamp(0), &mut rng).unwrap();
    db.activate_user("bench_user", &token).unwrap();
    // Settle the seeded dirty set so each incremental iteration recomputes
    // exactly the one title the fresh vote dirties.
    db.force_aggregation_full(Timestamp(10)).unwrap();

    let hot = format!("{:040x}", 7);
    let mut group = c.benchmark_group("aggregation");
    group.sample_size(20);
    let mut t = 1_000u64;
    group.bench_function("incremental_1_dirty_of_10k", |b| {
        b.iter(|| {
            t += 1;
            db.submit_vote("bench_user", &hot, ((t % 10) + 1) as u8, vec![], Timestamp(t)).unwrap();
            black_box(db.force_aggregation_incremental(Timestamp(t)).unwrap());
        })
    });
    group.sample_size(10);
    group.bench_function("full_batch_10k_titles", |b| {
        b.iter(|| {
            t += 1;
            black_box(db.force_aggregation_full(Timestamp(t)).unwrap());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_store_writes,
    bench_durable_store,
    bench_scans,
    bench_recovery,
    bench_concurrent_reads,
    bench_group_commit,
    bench_aggregation
);
criterion_main!(benches);
