//! D10 (protocol): XML encode/decode and frame round-trips.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use softrep_proto::framing::{read_frame, write_frame};
use softrep_proto::message::{CommentInfo, SoftwareInfo};
use softrep_proto::{Request, Response, XmlNode};

fn sample_software_response() -> Response {
    Response::Software(SoftwareInfo {
        software_id: "ab".repeat(20),
        file_name: Some("weatherbar.exe".into()),
        company: Some("Acme Software".into()),
        version: Some("2.1.0".into()),
        rating: Some(3.4567),
        vote_count: 1_245,
        behaviours: vec!["popup_ads".into(), "tracking".into(), "incomplete_uninstall".into()],
        verified_behaviours: vec!["tracking".into()],
        comments: (0..10)
            .map(|i| CommentInfo {
                id: i,
                author: format!("user{i:04}"),
                text: "Bundles a tracker & shows \"ads\"; the uninstaller leaves it behind.".into(),
                remark_score: (i as i64) - 3,
            })
            .collect(),
    })
}

fn bench_message_codec(c: &mut Criterion) {
    let request = Request::SubmitVote {
        session: "0123456789abcdef0123456789abcdef".into(),
        software_id: "cd".repeat(20),
        score: 7,
        behaviours: vec!["popup_ads".into()],
    };
    let response = sample_software_response();
    let request_doc = request.encode();
    let response_doc = response.encode();

    let mut group = c.benchmark_group("proto");
    group.throughput(Throughput::Bytes(request_doc.len() as u64));
    group.bench_function("request_encode", |b| b.iter(|| black_box(&request).encode()));
    group.bench_function("request_decode", |b| {
        b.iter(|| Request::decode(black_box(&request_doc)).unwrap())
    });
    group.throughput(Throughput::Bytes(response_doc.len() as u64));
    group.bench_function("software_response_encode", |b| b.iter(|| black_box(&response).encode()));
    group.bench_function("software_response_decode", |b| {
        b.iter(|| Response::decode(black_box(&response_doc)).unwrap())
    });
    group.finish();
}

fn bench_xml_parser(c: &mut Criterion) {
    // A deep + wide document stressing the parser.
    let mut node = XmlNode::new("root");
    for i in 0..50 {
        node = node.child(
            XmlNode::new(format!("item{i}"))
                .attr("idx", i.to_string())
                .with_text("text & entities <escaped> 'everywhere'"),
        );
    }
    let doc = node.to_document();
    let mut group = c.benchmark_group("xml");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_function("parse_50_children", |b| {
        b.iter(|| XmlNode::parse(black_box(&doc)).unwrap())
    });
    group.bench_function("serialise_50_children", |b| b.iter(|| black_box(&node).to_document()));
    group.finish();
}

fn bench_framing(c: &mut Criterion) {
    let body = sample_software_response().encode();
    c.bench_function("frame_roundtrip", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(body.len() + 4);
            write_frame(&mut buf, black_box(&body)).unwrap();
            read_frame(&mut std::io::Cursor::new(buf)).unwrap()
        })
    });
}

criterion_group!(benches, bench_message_codec, bench_xml_parser, bench_framing);
criterion_main!(benches);
