//! D10 (client): the per-execution overhead the §3.1 client adds — the
//! number the paper's users actually feel at every double-click.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_client::client::{PromptContext, RatingSubmission, UserAgent, UserChoice};
use softrep_client::{InProcessConnector, ReputationClient};
use softrep_core::clock::{SimClock, Timestamp};
use softrep_core::db::ReputationDb;
use softrep_core::identity::SyntheticExecutable;
use softrep_proto::message::SoftwareInfo;
use softrep_server::{ReputationServer, ServerConfig};

struct AlwaysAllow;
impl UserAgent for AlwaysAllow {
    fn decide(&mut self, _ctx: &PromptContext) -> UserChoice {
        UserChoice::AllowOnce
    }
    fn rate(&mut self, _f: &str, _r: Option<&SoftwareInfo>) -> Option<RatingSubmission> {
        None
    }
}

fn setup() -> (ReputationClient<InProcessConnector>, SyntheticExecutable) {
    let clock = SimClock::new();
    let db = ReputationDb::in_memory("client-bench");
    let mut rng = StdRng::seed_from_u64(1);
    // Seed one rated program.
    let exe = SyntheticExecutable::new("bench.exe", "Acme", "1.0", vec![0xAB; 256]);
    let id = exe.id_sha1().to_hex();
    let token = db.register_user("seeder", "pw", "s@b.example", Timestamp(0), &mut rng).unwrap();
    db.activate_user("seeder", &token).unwrap();
    db.register_software(&id, "bench.exe", 256, Some("Acme".into()), None, Timestamp(0)).unwrap();
    db.submit_vote("seeder", &id, 8, vec!["startup_registration".into()], Timestamp(1)).unwrap();
    db.force_aggregation(Timestamp(2)).unwrap();

    let server = Arc::new(ReputationServer::new(
        db,
        Arc::new(clock.clone()),
        ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            ..ServerConfig::default()
        },
        2,
    ));
    let client =
        ReputationClient::new(InProcessConnector::new(server, "bench-host"), Arc::new(clock));
    (client, exe)
}

fn bench_execution_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_execution");

    // Whitelisted: the invariant-8 fast path — no server, no policy.
    let (mut client, exe) = setup();
    client.lists_mut().whitelist(&exe.id_sha1().to_hex());
    group.bench_function("whitelisted_fast_path", |b| {
        b.iter(|| client.handle_execution(black_box(&exe), None, &mut AlwaysAllow))
    });

    // Cached report + policy decision: the common warm path.
    let (mut client, exe) = setup();
    client.set_policy_text("allow if rating >= 6\ndeny otherwise").unwrap();
    client.handle_execution(&exe, None, &mut AlwaysAllow); // warm the cache
    group.bench_function("policy_with_cached_report", |b| {
        b.iter(|| client.handle_execution(black_box(&exe), None, &mut AlwaysAllow))
    });

    // Fingerprinting cost alone, for scale (1 MiB binary).
    let big = SyntheticExecutable::new("big.exe", "Acme", "1.0", vec![0x5A; 1 << 20]);
    group.bench_function("sha1_fingerprint_1MiB_binary", |b| b.iter(|| black_box(&big).id_sha1()));

    group.finish();
}

criterion_group!(benches, bench_execution_pipeline);
criterion_main!(benches);
