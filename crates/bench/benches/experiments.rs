//! The experiment harness: regenerates every table and figure of
//! EXPERIMENTS.md (paper tables T1–T2 and derived figures D1–D9).
//!
//! Run with `cargo bench -p softrep-bench --bench experiments`; set
//! `SOFTREP_SCALE=quick` for the test-sized configurations.

use softrep_bench::{print_tables, timed, use_quick_scale};
use softrep_sim::experiments::*;

fn main() {
    let quick = use_quick_scale();
    println!(
        "softwareputation experiment harness — scale: {}",
        if quick { "quick" } else { "full" }
    );

    let t1 = timed("T1", || {
        t1_taxonomy::run(&if quick {
            t1_taxonomy::Config::quick()
        } else {
            t1_taxonomy::Config::full()
        })
    });
    print_tables("T1 — Table 1: PIS classification", &t1.tables);

    let t2 = timed("T2", || {
        t2_transform::run(&if quick {
            t2_transform::Config::quick()
        } else {
            t2_transform::Config::full()
        })
    });
    print_tables("T2 — Table 2: grey-zone collapse", &t2.tables);

    let d1 = timed("D1", || {
        d1_coldstart::run(&if quick {
            d1_coldstart::Config::quick()
        } else {
            d1_coldstart::Config::full()
        })
    });
    print_tables("D1 — cold start & mitigations", &d1.tables);

    let d2 = timed("D2", || {
        d2_trust_weighting::run(&if quick {
            d2_trust_weighting::Config::quick()
        } else {
            d2_trust_weighting::Config::full()
        })
    });
    print_tables("D2 — trust-weighted vs unweighted aggregation", &d2.tables);

    let d3 = timed("D3", || {
        d3_attacks::run(&if quick {
            d3_attacks::Config::quick()
        } else {
            d3_attacks::Config::full()
        })
    });
    print_tables("D3 — Sybil & flooding resilience", &d3.tables);

    let d4 = timed("D4", || {
        d4_trust_growth::run(&if quick {
            d4_trust_growth::Config::quick()
        } else {
            d4_trust_growth::Config::full()
        })
    });
    print_tables("D4 — trust growth schedule", &d4.tables);

    let d5 = timed("D5", || {
        d5_interruption::run(&if quick {
            d5_interruption::Config::quick()
        } else {
            d5_interruption::Config::full()
        })
    });
    print_tables("D5 — rating-prompt interruption", &d5.tables);

    let d6 = timed("D6", || {
        d6_baseline::run(&if quick {
            d6_baseline::Config::quick()
        } else {
            d6_baseline::Config::full()
        })
    });
    print_tables("D6 — reputation system vs anti-virus baseline", &d6.tables);

    let d7 = timed("D7", || {
        d7_identity::run(&if quick {
            d7_identity::Config::quick()
        } else {
            d7_identity::Config::full()
        })
    });
    print_tables("D7 — hash identity under polymorphism", &d7.tables);

    let d8 = timed("D8", || {
        d8_privacy::run(&if quick {
            d8_privacy::Config::quick()
        } else {
            d8_privacy::Config::full()
        })
    });
    print_tables("D8 — participant privacy audit", &d8.tables);

    let d9 = timed("D9", || {
        d9_policy::run(&if quick { d9_policy::Config::quick() } else { d9_policy::Config::full() })
    });
    print_tables("D9 — policy manager automation", &d9.tables);

    let x1 = timed("X1", || {
        x1_evidence::run(&if quick {
            x1_evidence::Config::quick()
        } else {
            x1_evidence::Config::full()
        })
    });
    print_tables("X1 — extension: runtime-analysis evidence", &x1.tables);

    let x2 = timed("X2", || {
        x2_feeds::run(&if quick { x2_feeds::Config::quick() } else { x2_feeds::Config::full() })
    });
    print_tables("X2 — extension: expert-group rating feeds", &x2.tables);

    let x3 = timed("X3", || {
        x3_pseudonyms::run(&if quick {
            x3_pseudonyms::Config::quick()
        } else {
            x3_pseudonyms::Config::full()
        })
    });
    print_tables("X3 — extension: pseudonymous participation", &x3.tables);

    println!("\nAll experiments completed.");
}
