//! D10 (policy + anonymity): policy compile/evaluate cost and onion
//! wrap/route cost — the per-execution and per-request overheads a client
//! adds on top of the server round-trip.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_anonymity::{MixNetwork, RelayDirectory};
use softrep_policy::{evaluate, parse_policy, ExecutionContext};

const CORPORATE_POLICY: &str = r#"
allow if signed_by_trusted
deny  if behaviour("keylogger") or behaviour("data_exfiltration")
deny  if behaviour("popup_ads") or vendor_stripped
deny  if not has_rating
allow if rating >= 6.5 and vote_count >= 3
deny otherwise
"#;

fn bench_policy(c: &mut Criterion) {
    c.bench_function("policy_parse_corporate", |b| {
        b.iter(|| parse_policy(black_box(CORPORATE_POLICY)).unwrap())
    });

    let policy = parse_policy(CORPORATE_POLICY).unwrap();
    let ctx = ExecutionContext {
        rating: Some(7.2),
        vote_count: 40,
        vendor_rating: Some(6.8),
        file_size: 2_000_000,
        behaviours: vec!["startup_registration".into()],
        verified_behaviours: vec![],
        feed_rating: None,
        vendor: Some("Acme Software".into()),
        signed: false,
        signed_by_trusted: false,
        known: true,
    };
    c.bench_function("policy_evaluate_corporate", |b| {
        b.iter(|| evaluate(black_box(&policy), black_box(&ctx)))
    });
}

fn bench_onion(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let directory = RelayDirectory::with_relays(30, &mut rng);
    let network = MixNetwork::new(directory);
    let payload = vec![0x5au8; 512];

    let mut group = c.benchmark_group("onion");
    for hops in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::new("wrap", hops), &hops, |b, &hops| {
            let circuit = network.directory().build_circuit(hops, &mut rng).unwrap();
            b.iter(|| circuit.wrap(black_box(&payload), &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("route_end_to_end", hops), &hops, |b, &hops| {
            b.iter(|| {
                let circuit = network.directory().build_circuit(hops, &mut rng).unwrap();
                network.route("bench-client", &circuit, black_box(&payload), &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy, bench_onion);
criterion_main!(benches);
