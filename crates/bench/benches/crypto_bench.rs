//! D10 (crypto): digest, HMAC, password-hash, puzzle and OTS throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_crypto::ots::{LamportKeypair, WinternitzKeypair};
use softrep_crypto::puzzle::Challenge;
use softrep_crypto::salted::{PasswordHash, SecretPepper};
use softrep_crypto::sha1::Sha1;
use softrep_crypto::sha256::Sha256;

fn bench_digests(c: &mut Criterion) {
    let mut group = c.benchmark_group("digest");
    for size in [1_024usize, 65_536, 1_048_576] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha1", size), &data, |b, data| {
            b.iter(|| Sha1::digest(black_box(data)))
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, data| {
            b.iter(|| Sha256::digest(black_box(data)))
        });
    }
    group.finish();
}

fn bench_hmac_and_pepper(c: &mut Criterion) {
    let pepper = SecretPepper::new("bench-pepper");
    c.bench_function("email_digest_peppered", |b| {
        b.iter(|| pepper.email_digest(black_box("someone@example.com")))
    });
    c.bench_function("hmac_sha256_64B", |b| {
        b.iter(|| softrep_crypto::hmac::hmac_sha256(black_box(b"key"), black_box(&[0u8; 64])))
    });
}

fn bench_password_hash(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let hash = PasswordHash::create(black_box("correct horse"), &mut rng);
    c.bench_function("password_hash_create_1000_iters", |b| {
        b.iter(|| PasswordHash::create(black_box("correct horse"), &mut rng))
    });
    c.bench_function("password_hash_verify", |b| {
        b.iter(|| hash.verify(black_box("correct horse")))
    });
}

fn bench_puzzle(c: &mut Criterion) {
    let mut group = c.benchmark_group("puzzle_solve");
    group.sample_size(10);
    for difficulty in [4u8, 8, 12] {
        group.bench_with_input(
            BenchmarkId::from_parameter(difficulty),
            &difficulty,
            |b, &difficulty| {
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| Challenge::issue(difficulty, &mut rng).solve())
            },
        );
    }
    group.finish();

    let mut rng = StdRng::seed_from_u64(3);
    let challenge = Challenge::issue(12, &mut rng);
    let (solution, _) = challenge.solve();
    c.bench_function("puzzle_verify", |b| b.iter(|| challenge.verify(black_box(solution))));
}

fn bench_ots(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let message = vec![0x42u8; 4_096];

    let mut group = c.benchmark_group("ots");
    group.sample_size(20);
    group.bench_function("winternitz_keygen", |b| b.iter(|| WinternitzKeypair::generate(&mut rng)));
    let wkp = WinternitzKeypair::generate(&mut rng);
    group.bench_function("winternitz_sign", |b| b.iter(|| wkp.sign(black_box(&message))));
    let wsig = wkp.sign(&message);
    group.bench_function("winternitz_verify", |b| {
        b.iter(|| wkp.public_key().verify(black_box(&message), &wsig))
    });
    let lkp = LamportKeypair::generate(&mut rng);
    group.bench_function("lamport_sign", |b| b.iter(|| lkp.sign(black_box(&message))));
    let lsig = lkp.sign(&message);
    group.bench_function("lamport_verify", |b| {
        b.iter(|| lkp.public_key().verify(black_box(&message), &lsig))
    });
    group.finish();
}

fn bench_rsa(c: &mut Criterion) {
    use softrep_crypto::bignum::BigUint;
    use softrep_crypto::rsa::{BlindingSession, RsaKeypair};

    let mut rng = StdRng::seed_from_u64(6);
    let mut group = c.benchmark_group("rsa_1024");
    group.sample_size(10);
    group.bench_function("keygen", |b| b.iter(|| RsaKeypair::generate(1024, &mut rng)));

    let keypair = RsaKeypair::generate(1024, &mut rng);
    let token = [0x42u8; 32];
    group.bench_function("sign", |b| b.iter(|| keypair.sign(black_box(&token))));
    let signature = keypair.sign(&token);
    group.bench_function("verify", |b| {
        b.iter(|| keypair.public_key().verify(black_box(&token), &signature))
    });
    group.bench_function("blind_sign_roundtrip", |b| {
        b.iter(|| {
            let (session, blinded) = BlindingSession::blind(&token, keypair.public_key(), &mut rng);
            let blind_sig: BigUint = keypair.sign_raw(&blinded);
            session.unblind(&blind_sig).expect("valid")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_digests,
    bench_hmac_and_pepper,
    bench_password_hash,
    bench_puzzle,
    bench_ots,
    bench_rsa
);
criterion_main!(benches);
