//! A minimal XML 1.0 subset: writer and recursive-descent parser.
//!
//! Supported: elements, attributes (double- or single-quoted), character
//! data, self-closing tags, the five predefined entities, decimal/hex
//! character references, and an optional leading `<?xml ...?>` declaration.
//!
//! Rejected by design: DTDs, comments, processing instructions (other than
//! the XML declaration), CDATA sections, and namespaces. The protocol never
//! emits them, and a parser that refuses them cannot be pushed into entity
//! expansion or external-fetch behaviour by a hostile peer.
//!
//! Character data is canonicalised on parse: leading and trailing
//! whitespace of an element's text is trimmed (needed to interleave text
//! with child elements unambiguously). Protocol consequence: free-text
//! fields — comments, passwords — are whitespace-trimmed end to end.

use std::fmt;

/// An XML element node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlNode {
    /// Element name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated character data directly inside this element.
    pub text: String,
}

/// Parse or structure errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the problem was detected.
    pub offset: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

impl XmlNode {
    /// New element with no attributes or content.
    pub fn new(name: impl Into<String>) -> Self {
        XmlNode { name: name.into(), ..Default::default() }
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Builder: add a child element.
    pub fn child(mut self, child: XmlNode) -> Self {
        self.children.push(child);
        self
    }

    /// Builder: add a child element containing only text.
    pub fn text_child(self, name: impl Into<String>, text: impl Into<String>) -> Self {
        let mut node = XmlNode::new(name);
        node.text = text.into();
        self.child(node)
    }

    /// Builder: set this element's text content.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// First attribute value with the given key.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// First child element with the given name.
    pub fn get_child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with the given name.
    pub fn get_children<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Text of the first child with the given name (common protocol shape).
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.get_child(name).map(|c| c.text.as_str())
    }

    /// Serialise to a compact document with the XML declaration.
    pub fn to_document(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        self.write_into(&mut out);
        out
    }

    /// Serialise this element (without a declaration).
    pub fn to_fragment(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        escape_into(&self.text, out);
        for child in &self.children {
            child.write_into(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Parse a document (optionally starting with an XML declaration) into
    /// its root element.
    pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
        let mut p = Parser { input: input.as_bytes(), pos: 0 };
        p.skip_whitespace();
        p.skip_declaration()?;
        p.skip_whitespace();
        let node = p.parse_element()?;
        p.skip_whitespace();
        if p.pos != p.input.len() {
            return Err(p.err("trailing content after root element"));
        }
        Ok(node)
    }
}

fn escape_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError { message: message.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, expected: u8) -> Result<(), XmlError> {
        match self.bump() {
            Some(b) if b == expected => Ok(()),
            Some(b) => {
                Err(self.err(format!("expected '{}', found '{}'", expected as char, b as char)))
            }
            None => Err(self.err(format!("expected '{}', found end of input", expected as char))),
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_declaration(&mut self) -> Result<(), XmlError> {
        if !self.starts_with("<?xml") {
            return Ok(());
        }
        match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
            Some(rel) => {
                self.pos += rel + 2;
                Ok(())
            }
            None => Err(self.err("unterminated XML declaration")),
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("name is not valid UTF-8"))?;
        if name.as_bytes()[0].is_ascii_digit() {
            return Err(self.err("names may not start with a digit"));
        }
        Ok(name.to_string())
    }

    fn parse_element(&mut self) -> Result<XmlNode, XmlError> {
        self.eat(b'<')?;
        if matches!(self.peek(), Some(b'!' | b'?')) {
            return Err(self.err("comments, DTDs and processing instructions are not supported"));
        }
        let name = self.parse_name()?;
        let mut node = XmlNode::new(name);

        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.eat(b'>')?;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_whitespace();
                    self.eat(b'=')?;
                    self.skip_whitespace();
                    let quote = self.bump().ok_or_else(|| self.err("unterminated attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("attribute value must be quoted"));
                    }
                    let value = self.parse_text_until(quote)?;
                    self.eat(quote)?;
                    node.attrs.push((key, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }

        // Content: interleaved text and child elements until the end tag.
        loop {
            match self.peek() {
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.pos += 2;
                        let end_name = self.parse_name()?;
                        if end_name != node.name {
                            return Err(self.err(format!(
                                "mismatched end tag: expected </{}>, found </{end_name}>",
                                node.name
                            )));
                        }
                        self.skip_whitespace();
                        self.eat(b'>')?;
                        node.text = node.text.trim().to_string();
                        return Ok(node);
                    }
                    node.children.push(self.parse_element()?);
                }
                Some(_) => {
                    let text = self.parse_text_until(b'<')?;
                    node.text.push_str(&text);
                }
                None => return Err(self.err(format!("unterminated element <{}>", node.name))),
            }
        }
    }

    /// Read character data (decoding entities) until `stop` (not consumed).
    fn parse_text_until(&mut self, stop: u8) -> Result<String, XmlError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    if stop == b'<' {
                        return Err(self.err("unterminated character data"));
                    }
                    return Err(self.err("unterminated attribute value"));
                }
                Some(b) if b == stop => return Ok(out),
                Some(b'&') => {
                    self.pos += 1;
                    let entity_start = self.pos;
                    while self.peek().is_some_and(|b| b != b';') {
                        self.pos += 1;
                        if self.pos - entity_start > 10 {
                            return Err(self.err("entity reference too long"));
                        }
                    }
                    if self.peek().is_none() {
                        return Err(self.err("unterminated entity reference"));
                    }
                    let entity = std::str::from_utf8(&self.input[entity_start..self.pos])
                        .map_err(|_| self.err("entity is not valid UTF-8"))?;
                    self.pos += 1; // consume ';'
                    out.push(
                        decode_entity(entity).ok_or_else(|| {
                            self.err(format!("unknown entity reference &{entity};"))
                        })?,
                    );
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.input.len() && (self.input[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in character data"))?;
                    out.push_str(s);
                }
            }
        }
    }
}

fn decode_entity(entity: &str) -> Option<char> {
    match entity {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let code = entity.strip_prefix('#')?;
            let value = if let Some(hex) = code.strip_prefix('x').or_else(|| code.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                code.parse::<u32>().ok()?
            };
            char::from_u32(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builds_and_serialises_simple_document() {
        let node = XmlNode::new("request")
            .attr("type", "vote")
            .text_child("software", "abc123")
            .text_child("score", "7");
        let doc = node.to_document();
        assert_eq!(
            doc,
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><request type=\"vote\">\
             <software>abc123</software><score>7</score></request>"
        );
    }

    #[test]
    fn parses_what_it_writes() {
        let node = XmlNode::new("response")
            .attr("status", "ok")
            .child(XmlNode::new("rating").attr("value", "8.5").with_text("good & <safe>"))
            .text_child("comment", "uses \"quotes\" and 'apostrophes'");
        let parsed = XmlNode::parse(&node.to_document()).unwrap();
        assert_eq!(parsed, node);
    }

    #[test]
    fn self_closing_tags_parse() {
        let parsed = XmlNode::parse("<ping/>").unwrap();
        assert_eq!(parsed, XmlNode::new("ping"));
        let parsed = XmlNode::parse("<ping  />").unwrap();
        assert_eq!(parsed.name, "ping");
    }

    #[test]
    fn attributes_with_single_quotes_parse() {
        let parsed = XmlNode::parse("<a k='v \"w\"'/>").unwrap();
        assert_eq!(parsed.get_attr("k").unwrap(), "v \"w\"");
    }

    #[test]
    fn entities_decode_in_text_and_attrs() {
        let parsed = XmlNode::parse("<a k=\"&lt;&amp;&gt;\">&#65;&#x42;c</a>").unwrap();
        assert_eq!(parsed.get_attr("k").unwrap(), "<&>");
        assert_eq!(parsed.text, "ABc");
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        assert!(XmlNode::parse("<a><b></a></b>").is_err());
        assert!(XmlNode::parse("<a>").is_err());
        assert!(XmlNode::parse("<a></b>").is_err());
    }

    #[test]
    fn hostile_constructs_are_rejected() {
        assert!(XmlNode::parse("<!DOCTYPE foo [<!ENTITY x \"y\">]><a/>").is_err());
        assert!(XmlNode::parse("<a><!-- comment --></a>").is_err());
        assert!(XmlNode::parse("<a><?pi data?></a>").is_err());
        assert!(XmlNode::parse("<a>&external;</a>").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(XmlNode::parse("<a/><b/>").is_err());
        assert!(XmlNode::parse("<a/>junk").is_err());
    }

    #[test]
    fn declaration_is_skipped() {
        let parsed = XmlNode::parse("<?xml version=\"1.0\"?>\n  <root/>").unwrap();
        assert_eq!(parsed.name, "root");
    }

    #[test]
    fn nested_children_and_accessors() {
        let doc = "<sw><name>WeatherBar</name><vendor>Acme</vendor>\
                   <behavior>ads</behavior><behavior>tracking</behavior></sw>";
        let parsed = XmlNode::parse(doc).unwrap();
        assert_eq!(parsed.child_text("name").unwrap(), "WeatherBar");
        assert_eq!(parsed.get_children("behavior").count(), 2);
        assert!(parsed.get_child("missing").is_none());
        assert!(parsed.child_text("missing").is_none());
    }

    #[test]
    fn unicode_text_roundtrips() {
        let node = XmlNode::new("msg").with_text("Blekinge Tekniska Högskola — 評価 ✓");
        let parsed = XmlNode::parse(&node.to_document()).unwrap();
        assert_eq!(parsed.text, "Blekinge Tekniska Högskola — 評価 ✓");
    }

    #[test]
    fn names_cannot_start_with_digit() {
        assert!(XmlNode::parse("<1a/>").is_err());
    }

    #[test]
    fn deeply_nested_structure_roundtrips() {
        let mut node = XmlNode::new("level0");
        for i in 1..50 {
            node = XmlNode::new(format!("level{i}")).child(node);
        }
        let parsed = XmlNode::parse(&node.to_document()).unwrap();
        assert_eq!(parsed, node);
    }

    fn arb_text() -> impl Strategy<Value = String> {
        // Any printable text including XML-special characters.
        proptest::collection::vec(
            prop_oneof![
                any::<char>().prop_filter("no control chars", |c| !c.is_control()),
                Just('&'),
                Just('<'),
                Just('>'),
                Just('"'),
                Just('\''),
            ],
            0..40,
        )
        .prop_map(|chars| chars.into_iter().collect::<String>())
        .prop_map(|s| s.trim().to_string())
    }

    proptest! {
        #[test]
        fn roundtrip_with_special_chars(text in arb_text(), attr in arb_text()) {
            let node = XmlNode::new("n").attr("a", attr.clone()).with_text(text.clone());
            let parsed = XmlNode::parse(&node.to_document()).unwrap();
            prop_assert_eq!(parsed.get_attr("a").unwrap(), attr.as_str());
            prop_assert_eq!(parsed.text, text);
        }
    }
}
