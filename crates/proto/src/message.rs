//! Typed protocol messages and their canonical XML encodings.
//!
//! Covers every interaction the paper describes: account registration with
//! e-mail confirmation (§3.2), puzzle-gated signup (§5), login, software
//! information queries at execution time (§3.1), vote/comment submission,
//! comment remarks ("positive for a good, clear and useful comment or
//! negative…", §3.2), vendor rating queries (§3.3), and first-sight software
//! metadata registration.

use crate::xml::{XmlError, XmlNode};

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Ask for a registration puzzle challenge.
    GetPuzzle,
    /// Create an account. `puzzle_*` echo the challenge and its solution.
    Register {
        /// Desired username (the only identity the server will store).
        username: String,
        /// Plaintext password (hashed server-side; the transport layer /
        /// anonymity circuit protects it in flight).
        password: String,
        /// E-mail address, used once for activation and stored only as a
        /// peppered hash.
        email: String,
        /// The challenge string previously issued via [`Request::GetPuzzle`].
        puzzle_challenge: String,
        /// The solved nonce.
        puzzle_solution: u64,
    },
    /// Activate an account using the token that was "e-mailed" to the user.
    Activate {
        /// Account to activate.
        username: String,
        /// Activation token.
        token: String,
    },
    /// Log in, obtaining a session token.
    Login {
        /// Account name.
        username: String,
        /// Plaintext password.
        password: String,
    },
    /// Fetch the aggregated reputation for one executable.
    QuerySoftware {
        /// Hex digest of the executable (the software ID).
        software_id: String,
    },
    /// Report metadata for an executable the server may not know yet.
    RegisterSoftware {
        /// Hex digest of the executable.
        software_id: String,
        /// Executable file name.
        file_name: String,
        /// File size in bytes.
        file_size: u64,
        /// Vendor name embedded in the binary, if any.
        company: Option<String>,
        /// Version string embedded in the binary, if any.
        version: Option<String>,
    },
    /// Submit (or replace) the caller's 1–10 vote for a software.
    SubmitVote {
        /// Session token from [`Request::Login`].
        session: String,
        /// Hex digest of the executable.
        software_id: String,
        /// Score in 1..=10.
        score: u8,
        /// Reported behaviours observed by the user (free-form tags such as
        /// `popup_ads`, used by the policy manager).
        behaviours: Vec<String>,
    },
    /// Submit a comment for a software.
    SubmitComment {
        /// Session token.
        session: String,
        /// Hex digest of the executable.
        software_id: String,
        /// Free-text comment.
        text: String,
    },
    /// Remark on another user's comment (+1 helpful / -1 unhelpful).
    RateComment {
        /// Session token.
        session: String,
        /// Identifier of the comment being rated.
        comment_id: u64,
        /// True = positive remark, false = negative.
        positive: bool,
    },
    /// Fetch the derived rating for a vendor (mean over its software).
    QueryVendor {
        /// Vendor (company) name.
        vendor: String,
    },
    /// Fetch the web-style detail report for one executable.
    QueryDetails {
        /// Hex digest of the executable.
        software_id: String,
    },
    /// Submit runtime-analysis evidence (§5 future work). Authenticated
    /// by a shared analyzer token, not a user session: analyzers are
    /// infrastructure, not members.
    SubmitEvidence {
        /// The analyzer's shared secret.
        analyzer_token: String,
        /// Hex digest of the analysed executable.
        software_id: String,
        /// Behaviours the sandbox observed.
        behaviours: Vec<String>,
        /// Analyzer identifier recorded with the evidence.
        analyzer: String,
    },
    /// Create a rating feed owned by the session's user (§4.2).
    CreateFeed {
        /// Session token.
        session: String,
        /// Feed name ([a-z0-9-], 3–32 chars).
        name: String,
    },
    /// Publish (or update) a feed entry (owner only).
    PublishFeedEntry {
        /// Session token.
        session: String,
        /// Feed name.
        feed: String,
        /// Hex digest of the target executable.
        software_id: String,
        /// The feed's rating (1.0–10.0).
        rating: f64,
        /// Behaviours the feed reports.
        behaviours: Vec<String>,
    },
    /// Fetch a feed's verdict on one executable.
    QueryFeedEntry {
        /// Feed name.
        feed: String,
        /// Hex digest of the executable.
        software_id: String,
    },
    /// Fetch the server's pseudonym-credential RSA public key (§5).
    GetPseudonymKey,
    /// Ask the server to blind-sign a pseudonym token (one per member).
    BlindSignPseudonym {
        /// Session token (proves membership).
        session: String,
        /// The blinded group element, hex.
        blinded: String,
    },
    /// Redeem an unblinded credential as a fresh pseudonym account. No
    /// session: presenting one would link the pseudonym to the member.
    RegisterPseudonym {
        /// Pseudonym username.
        username: String,
        /// Pseudonym password.
        password: String,
        /// The signed token bytes, hex.
        token: String,
        /// The RSA signature over the token, hex.
        signature: String,
    },
    /// Replication: a replica asks the primary for committed WAL entries
    /// after its applied watermark (DESIGN.md §15).
    ReplSubscribe {
        /// The subscriber's applied watermark; entries start at
        /// `from_seq + 1`.
        from_seq: u64,
        /// Page cap: entries per response.
        max_entries: u32,
        /// Page cap: total entry bytes per response (pre-hex).
        max_bytes: u32,
    },
    /// Replication: fetch one chunk of a bootstrap snapshot. `seq` 0 asks
    /// the primary to cut (or reuse) its current export; later chunks name
    /// the sequence number of the cut being assembled.
    ReplSnapshot {
        /// Covered sequence number of the snapshot being fetched (0 on
        /// the first chunk of a fresh bootstrap).
        seq: u64,
        /// Byte offset into the encoded snapshot.
        offset: u64,
    },
}

/// One comment as rendered in responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommentInfo {
    /// Server-assigned id (target for [`Request::RateComment`]).
    pub id: u64,
    /// Author username.
    pub author: String,
    /// Comment text.
    pub text: String,
    /// Net remark score (positive minus negative remarks).
    pub remark_score: i64,
}

/// Aggregated software information returned to the client at execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftwareInfo {
    /// Hex digest of the executable.
    pub software_id: String,
    /// File name, if known.
    pub file_name: Option<String>,
    /// Vendor, if the binary declared one.
    pub company: Option<String>,
    /// Version, if the binary declared one.
    pub version: Option<String>,
    /// Trust-weighted aggregate rating 1.0–10.0 (None until first batch
    /// aggregation covering at least one vote).
    pub rating: Option<f64>,
    /// Number of votes behind the rating.
    pub vote_count: u64,
    /// Behaviours reported by voters, most-reported first.
    pub behaviours: Vec<String>,
    /// Behaviours verified by runtime analysis (§5 "hard evidence").
    pub verified_behaviours: Vec<String>,
    /// Top comments.
    pub comments: Vec<CommentInfo>,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Generic success.
    Ok,
    /// Failure, with a machine-readable code and human-readable message.
    Error {
        /// Stable error code (e.g. `duplicate-email`, `bad-credentials`).
        code: String,
        /// Description for display.
        message: String,
    },
    /// A puzzle challenge to solve before registration.
    Puzzle {
        /// Encoded challenge (difficulty + nonce).
        challenge: String,
    },
    /// Registration accepted; account pending activation.
    Registered {
        /// Activation token (in the real deployment this goes out by
        /// e-mail; the simulated mail system delivers it in-band).
        activation_token: String,
    },
    /// Login succeeded.
    Session {
        /// Bearer token for subsequent requests.
        token: String,
    },
    /// Aggregated software information.
    Software(SoftwareInfo),
    /// The server has never seen this executable.
    UnknownSoftware {
        /// Echo of the queried id.
        software_id: String,
    },
    /// A feed's verdict on one executable.
    FeedEntry {
        /// Feed name.
        feed: String,
        /// Hex digest of the executable.
        software_id: String,
        /// The feed's rating.
        rating: f64,
        /// Behaviours the feed reports.
        behaviours: Vec<String>,
    },
    /// The pseudonym-credential public key.
    PseudonymKey {
        /// RSA modulus, hex.
        n: String,
        /// RSA public exponent, hex.
        e: String,
    },
    /// A blind signature over a previously submitted blinded element.
    BlindSignature {
        /// The signed blinded element, hex.
        value: String,
    },
    /// Derived vendor reputation.
    Vendor {
        /// Vendor name.
        vendor: String,
        /// Mean rating over the vendor's software (None when unrated).
        rating: Option<f64>,
        /// Number of distinct software titles attributed to the vendor.
        software_count: u64,
    },
    /// Replication: a page of committed WAL entries for a subscriber.
    ReplEntries {
        /// The primary's newest committed sequence number.
        committed_seq: u64,
        /// Bytes of committed entries beyond this page (lag in bytes).
        backlog_bytes: u64,
        /// The entries, in sequence order, gapless from the subscription
        /// point.
        entries: Vec<ReplEntry>,
    },
    /// Replication: one chunk of an encoded bootstrap snapshot.
    ReplSnapshotChunk {
        /// Commit sequence number the snapshot covers. A subscriber that
        /// sees this change mid-assembly restarts from offset 0.
        seq: u64,
        /// Byte offset of `data` within the encoded snapshot.
        offset: u64,
        /// Total encoded snapshot length in bytes.
        total_len: u64,
        /// The chunk bytes.
        data: Vec<u8>,
    },
    /// Replication: the requested log suffix is gone (compacted) or ahead
    /// of this primary's history — bootstrap from a snapshot instead.
    ReplResync {
        /// The primary's newest committed sequence number.
        committed_seq: u64,
    },
    /// The receiving node is a read replica and cannot serve this request;
    /// retry against the primary at the carried address.
    NotPrimary {
        /// `host:port` of the primary's protocol endpoint.
        primary: String,
    },
}

/// One committed entry inside a [`Response::ReplEntries`] page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplEntry {
    /// The primary's commit sequence number for this batch.
    pub seq: u64,
    /// The encoded `WriteBatch` bytes exactly as journaled.
    pub batch: Vec<u8>,
}

/// Error raised when a message cannot be decoded from XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageError(pub String);

impl std::fmt::Display for MessageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol message error: {}", self.0)
    }
}

impl std::error::Error for MessageError {}

impl From<XmlError> for MessageError {
    fn from(e: XmlError) -> Self {
        MessageError(e.to_string())
    }
}

fn required<'a>(node: &'a XmlNode, child: &str) -> Result<&'a str, MessageError> {
    node.child_text(child).ok_or_else(|| MessageError(format!("missing <{child}> element")))
}

fn required_parse<T: std::str::FromStr>(node: &XmlNode, child: &str) -> Result<T, MessageError> {
    required(node, child)?
        .parse()
        .map_err(|_| MessageError(format!("<{child}> is not a valid value")))
}

fn required_attr_parse<T: std::str::FromStr>(
    node: &XmlNode,
    attr: &str,
) -> Result<T, MessageError> {
    node.get_attr(attr)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| MessageError(format!("missing or invalid {attr} attribute")))
}

/// Lowercase hex rendering for binary payloads (WAL batches, snapshot
/// chunks). Hex is XML-safe — no escaping interactions — at a 2× size
/// cost the replication page limits already budget for.
fn hex_encode(bytes: &[u8]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn hex_decode(text: &str) -> Result<Vec<u8>, MessageError> {
    let raw = text.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return Err(MessageError("hex payload has odd length".into()));
    }
    fn nibble(c: u8) -> Result<u8, MessageError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(MessageError("invalid hex digit in payload".into())),
        }
    }
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

impl Request {
    /// Canonical XML rendering.
    pub fn to_xml(&self) -> XmlNode {
        match self {
            Request::GetPuzzle => XmlNode::new("request").attr("type", "get-puzzle"),
            Request::Register { username, password, email, puzzle_challenge, puzzle_solution } => {
                XmlNode::new("request")
                    .attr("type", "register")
                    .text_child("username", username)
                    .text_child("password", password)
                    .text_child("email", email)
                    .text_child("puzzle-challenge", puzzle_challenge)
                    .text_child("puzzle-solution", puzzle_solution.to_string())
            }
            Request::Activate { username, token } => XmlNode::new("request")
                .attr("type", "activate")
                .text_child("username", username)
                .text_child("token", token),
            Request::Login { username, password } => XmlNode::new("request")
                .attr("type", "login")
                .text_child("username", username)
                .text_child("password", password),
            Request::QuerySoftware { software_id } => XmlNode::new("request")
                .attr("type", "query-software")
                .text_child("software-id", software_id),
            Request::RegisterSoftware { software_id, file_name, file_size, company, version } => {
                let mut node = XmlNode::new("request")
                    .attr("type", "register-software")
                    .text_child("software-id", software_id)
                    .text_child("file-name", file_name)
                    .text_child("file-size", file_size.to_string());
                if let Some(c) = company {
                    node = node.text_child("company", c);
                }
                if let Some(v) = version {
                    node = node.text_child("version", v);
                }
                node
            }
            Request::SubmitVote { session, software_id, score, behaviours } => {
                let mut node = XmlNode::new("request")
                    .attr("type", "submit-vote")
                    .text_child("session", session)
                    .text_child("software-id", software_id)
                    .text_child("score", score.to_string());
                for b in behaviours {
                    node = node.text_child("behaviour", b);
                }
                node
            }
            Request::SubmitComment { session, software_id, text } => XmlNode::new("request")
                .attr("type", "submit-comment")
                .text_child("session", session)
                .text_child("software-id", software_id)
                .text_child("text", text),
            Request::RateComment { session, comment_id, positive } => XmlNode::new("request")
                .attr("type", "rate-comment")
                .text_child("session", session)
                .text_child("comment-id", comment_id.to_string())
                .text_child("positive", if *positive { "true" } else { "false" }),
            Request::QueryVendor { vendor } => {
                XmlNode::new("request").attr("type", "query-vendor").text_child("vendor", vendor)
            }
            Request::QueryDetails { software_id } => XmlNode::new("request")
                .attr("type", "query-details")
                .text_child("software-id", software_id),
            Request::SubmitEvidence { analyzer_token, software_id, behaviours, analyzer } => {
                let mut node = XmlNode::new("request")
                    .attr("type", "submit-evidence")
                    .text_child("analyzer-token", analyzer_token)
                    .text_child("software-id", software_id)
                    .text_child("analyzer", analyzer);
                for b in behaviours {
                    node = node.text_child("behaviour", b);
                }
                node
            }
            Request::CreateFeed { session, name } => XmlNode::new("request")
                .attr("type", "create-feed")
                .text_child("session", session)
                .text_child("name", name),
            Request::PublishFeedEntry { session, feed, software_id, rating, behaviours } => {
                let mut node = XmlNode::new("request")
                    .attr("type", "publish-feed-entry")
                    .text_child("session", session)
                    .text_child("feed", feed)
                    .text_child("software-id", software_id)
                    .text_child("rating", format!("{rating:.4}"));
                for b in behaviours {
                    node = node.text_child("behaviour", b);
                }
                node
            }
            Request::QueryFeedEntry { feed, software_id } => XmlNode::new("request")
                .attr("type", "query-feed-entry")
                .text_child("feed", feed)
                .text_child("software-id", software_id),
            Request::GetPseudonymKey => XmlNode::new("request").attr("type", "get-pseudonym-key"),
            Request::BlindSignPseudonym { session, blinded } => XmlNode::new("request")
                .attr("type", "blind-sign-pseudonym")
                .text_child("session", session)
                .text_child("blinded", blinded),
            Request::RegisterPseudonym { username, password, token, signature } => {
                XmlNode::new("request")
                    .attr("type", "register-pseudonym")
                    .text_child("username", username)
                    .text_child("password", password)
                    .text_child("token", token)
                    .text_child("signature", signature)
            }
            Request::ReplSubscribe { from_seq, max_entries, max_bytes } => XmlNode::new("request")
                .attr("type", "repl-subscribe")
                .attr("from-seq", from_seq.to_string())
                .attr("max-entries", max_entries.to_string())
                .attr("max-bytes", max_bytes.to_string()),
            Request::ReplSnapshot { seq, offset } => XmlNode::new("request")
                .attr("type", "repl-snapshot")
                .attr("seq", seq.to_string())
                .attr("offset", offset.to_string()),
        }
    }

    /// True when a read replica can answer this request from its local
    /// store. Everything else must reach the primary: writes obviously,
    /// but also the interactive flows that *lead* to writes (puzzles,
    /// registration, login, pseudonym credentials) — their server-side
    /// state (puzzle table, sessions, signing key) lives on the primary.
    /// The replication requests themselves are servable so replicas can
    /// be chained.
    pub fn is_replica_servable(&self) -> bool {
        match self {
            Request::QuerySoftware { .. }
            | Request::QueryDetails { .. }
            | Request::QueryVendor { .. }
            | Request::QueryFeedEntry { .. }
            | Request::ReplSubscribe { .. }
            | Request::ReplSnapshot { .. } => true,
            Request::GetPuzzle
            | Request::Register { .. }
            | Request::Activate { .. }
            | Request::Login { .. }
            | Request::RegisterSoftware { .. }
            | Request::SubmitVote { .. }
            | Request::SubmitComment { .. }
            | Request::RateComment { .. }
            | Request::SubmitEvidence { .. }
            | Request::CreateFeed { .. }
            | Request::PublishFeedEntry { .. }
            | Request::GetPseudonymKey
            | Request::BlindSignPseudonym { .. }
            | Request::RegisterPseudonym { .. } => false,
        }
    }

    /// Decode from a parsed XML element.
    pub fn from_xml(node: &XmlNode) -> Result<Self, MessageError> {
        if node.name != "request" {
            return Err(MessageError(format!("expected <request>, found <{}>", node.name)));
        }
        let ty =
            node.get_attr("type").ok_or_else(|| MessageError("missing type attribute".into()))?;
        match ty {
            "get-puzzle" => Ok(Request::GetPuzzle),
            "register" => Ok(Request::Register {
                username: required(node, "username")?.to_string(),
                password: required(node, "password")?.to_string(),
                email: required(node, "email")?.to_string(),
                puzzle_challenge: required(node, "puzzle-challenge")?.to_string(),
                puzzle_solution: required_parse(node, "puzzle-solution")?,
            }),
            "activate" => Ok(Request::Activate {
                username: required(node, "username")?.to_string(),
                token: required(node, "token")?.to_string(),
            }),
            "login" => Ok(Request::Login {
                username: required(node, "username")?.to_string(),
                password: required(node, "password")?.to_string(),
            }),
            "query-software" => Ok(Request::QuerySoftware {
                software_id: required(node, "software-id")?.to_string(),
            }),
            "register-software" => Ok(Request::RegisterSoftware {
                software_id: required(node, "software-id")?.to_string(),
                file_name: required(node, "file-name")?.to_string(),
                file_size: required_parse(node, "file-size")?,
                company: node.child_text("company").map(str::to_string),
                version: node.child_text("version").map(str::to_string),
            }),
            "submit-vote" => Ok(Request::SubmitVote {
                session: required(node, "session")?.to_string(),
                software_id: required(node, "software-id")?.to_string(),
                score: required_parse(node, "score")?,
                behaviours: node.get_children("behaviour").map(|c| c.text.clone()).collect(),
            }),
            "submit-comment" => Ok(Request::SubmitComment {
                session: required(node, "session")?.to_string(),
                software_id: required(node, "software-id")?.to_string(),
                text: required(node, "text")?.to_string(),
            }),
            "rate-comment" => Ok(Request::RateComment {
                session: required(node, "session")?.to_string(),
                comment_id: required_parse(node, "comment-id")?,
                positive: match required(node, "positive")? {
                    "true" => true,
                    "false" => false,
                    other => return Err(MessageError(format!("invalid boolean '{other}'"))),
                },
            }),
            "query-vendor" => {
                Ok(Request::QueryVendor { vendor: required(node, "vendor")?.to_string() })
            }
            "query-details" => Ok(Request::QueryDetails {
                software_id: required(node, "software-id")?.to_string(),
            }),
            "submit-evidence" => Ok(Request::SubmitEvidence {
                analyzer_token: required(node, "analyzer-token")?.to_string(),
                software_id: required(node, "software-id")?.to_string(),
                behaviours: node.get_children("behaviour").map(|c| c.text.clone()).collect(),
                analyzer: required(node, "analyzer")?.to_string(),
            }),
            "create-feed" => Ok(Request::CreateFeed {
                session: required(node, "session")?.to_string(),
                name: required(node, "name")?.to_string(),
            }),
            "publish-feed-entry" => Ok(Request::PublishFeedEntry {
                session: required(node, "session")?.to_string(),
                feed: required(node, "feed")?.to_string(),
                software_id: required(node, "software-id")?.to_string(),
                rating: required_parse(node, "rating")?,
                behaviours: node.get_children("behaviour").map(|c| c.text.clone()).collect(),
            }),
            "query-feed-entry" => Ok(Request::QueryFeedEntry {
                feed: required(node, "feed")?.to_string(),
                software_id: required(node, "software-id")?.to_string(),
            }),
            "get-pseudonym-key" => Ok(Request::GetPseudonymKey),
            "blind-sign-pseudonym" => Ok(Request::BlindSignPseudonym {
                session: required(node, "session")?.to_string(),
                blinded: required(node, "blinded")?.to_string(),
            }),
            "register-pseudonym" => Ok(Request::RegisterPseudonym {
                username: required(node, "username")?.to_string(),
                password: required(node, "password")?.to_string(),
                token: required(node, "token")?.to_string(),
                signature: required(node, "signature")?.to_string(),
            }),
            "repl-subscribe" => Ok(Request::ReplSubscribe {
                from_seq: required_attr_parse(node, "from-seq")?,
                max_entries: required_attr_parse(node, "max-entries")?,
                max_bytes: required_attr_parse(node, "max-bytes")?,
            }),
            "repl-snapshot" => Ok(Request::ReplSnapshot {
                seq: required_attr_parse(node, "seq")?,
                offset: required_attr_parse(node, "offset")?,
            }),
            other => Err(MessageError(format!("unknown request type '{other}'"))),
        }
    }

    /// Encode to a full XML document string.
    pub fn encode(&self) -> String {
        self.to_xml().to_document()
    }

    /// Decode from a document string.
    pub fn decode(input: &str) -> Result<Self, MessageError> {
        Self::from_xml(&XmlNode::parse(input)?)
    }
}

impl Response {
    /// Canonical XML rendering.
    pub fn to_xml(&self) -> XmlNode {
        match self {
            Response::Ok => XmlNode::new("response").attr("status", "ok"),
            Response::Error { code, message } => XmlNode::new("response")
                .attr("status", "error")
                .attr("code", code)
                .with_text(message.clone()),
            Response::Puzzle { challenge } => {
                XmlNode::new("response").attr("status", "puzzle").text_child("challenge", challenge)
            }
            Response::Registered { activation_token } => XmlNode::new("response")
                .attr("status", "registered")
                .text_child("activation-token", activation_token),
            Response::Session { token } => {
                XmlNode::new("response").attr("status", "session").text_child("token", token)
            }
            Response::Software(info) => {
                let mut node = XmlNode::new("response")
                    .attr("status", "software")
                    .text_child("software-id", &info.software_id)
                    .text_child("vote-count", info.vote_count.to_string());
                if let Some(f) = &info.file_name {
                    node = node.text_child("file-name", f);
                }
                if let Some(c) = &info.company {
                    node = node.text_child("company", c);
                }
                if let Some(v) = &info.version {
                    node = node.text_child("version", v);
                }
                if let Some(r) = info.rating {
                    node = node.text_child("rating", format!("{r:.4}"));
                }
                for b in &info.behaviours {
                    node = node.text_child("behaviour", b);
                }
                for b in &info.verified_behaviours {
                    node = node.text_child("verified-behaviour", b);
                }
                for c in &info.comments {
                    node = node.child(
                        XmlNode::new("comment")
                            .attr("id", c.id.to_string())
                            .attr("author", &c.author)
                            .attr("remarks", c.remark_score.to_string())
                            .with_text(c.text.clone()),
                    );
                }
                node
            }
            Response::UnknownSoftware { software_id } => XmlNode::new("response")
                .attr("status", "unknown-software")
                .text_child("software-id", software_id),
            Response::PseudonymKey { n, e } => XmlNode::new("response")
                .attr("status", "pseudonym-key")
                .text_child("n", n)
                .text_child("e", e),
            Response::BlindSignature { value } => XmlNode::new("response")
                .attr("status", "blind-signature")
                .text_child("value", value),
            Response::FeedEntry { feed, software_id, rating, behaviours } => {
                let mut node = XmlNode::new("response")
                    .attr("status", "feed-entry")
                    .text_child("feed", feed)
                    .text_child("software-id", software_id)
                    .text_child("rating", format!("{rating:.4}"));
                for b in behaviours {
                    node = node.text_child("behaviour", b);
                }
                node
            }
            Response::Vendor { vendor, rating, software_count } => {
                let mut node = XmlNode::new("response")
                    .attr("status", "vendor")
                    .text_child("vendor", vendor)
                    .text_child("software-count", software_count.to_string());
                if let Some(r) = rating {
                    node = node.text_child("rating", format!("{r:.4}"));
                }
                node
            }
            Response::ReplEntries { committed_seq, backlog_bytes, entries } => {
                let mut node = XmlNode::new("response")
                    .attr("status", "repl-entries")
                    .attr("committed-seq", committed_seq.to_string())
                    .attr("backlog-bytes", backlog_bytes.to_string());
                for e in entries {
                    node = node.child(
                        XmlNode::new("entry")
                            .attr("seq", e.seq.to_string())
                            .with_text(hex_encode(&e.batch)),
                    );
                }
                node
            }
            Response::ReplSnapshotChunk { seq, offset, total_len, data } => {
                XmlNode::new("response")
                    .attr("status", "repl-snapshot-chunk")
                    .attr("seq", seq.to_string())
                    .attr("offset", offset.to_string())
                    .attr("total-len", total_len.to_string())
                    .with_text(hex_encode(data))
            }
            Response::ReplResync { committed_seq } => XmlNode::new("response")
                .attr("status", "repl-resync")
                .attr("committed-seq", committed_seq.to_string()),
            Response::NotPrimary { primary } => XmlNode::new("response")
                .attr("status", "not-primary")
                .text_child("primary", primary),
        }
    }

    /// Decode from a parsed XML element.
    pub fn from_xml(node: &XmlNode) -> Result<Self, MessageError> {
        if node.name != "response" {
            return Err(MessageError(format!("expected <response>, found <{}>", node.name)));
        }
        let status =
            node.get_attr("status").ok_or_else(|| MessageError("missing status".into()))?;
        match status {
            "ok" => Ok(Response::Ok),
            "error" => Ok(Response::Error {
                code: node.get_attr("code").unwrap_or("unknown").to_string(),
                message: node.text.clone(),
            }),
            "puzzle" => {
                Ok(Response::Puzzle { challenge: required(node, "challenge")?.to_string() })
            }
            "registered" => Ok(Response::Registered {
                activation_token: required(node, "activation-token")?.to_string(),
            }),
            "session" => Ok(Response::Session { token: required(node, "token")?.to_string() }),
            "software" => {
                let comments = node
                    .get_children("comment")
                    .map(|c| {
                        Ok(CommentInfo {
                            id: c
                                .get_attr("id")
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| MessageError("comment missing id".into()))?,
                            author: c.get_attr("author").unwrap_or_default().to_string(),
                            text: c.text.clone(),
                            remark_score: c
                                .get_attr("remarks")
                                .and_then(|v| v.parse().ok())
                                .unwrap_or(0),
                        })
                    })
                    .collect::<Result<Vec<_>, MessageError>>()?;
                Ok(Response::Software(SoftwareInfo {
                    software_id: required(node, "software-id")?.to_string(),
                    file_name: node.child_text("file-name").map(str::to_string),
                    company: node.child_text("company").map(str::to_string),
                    version: node.child_text("version").map(str::to_string),
                    rating: node.child_text("rating").and_then(|v| v.parse().ok()),
                    vote_count: required_parse(node, "vote-count")?,
                    behaviours: node.get_children("behaviour").map(|c| c.text.clone()).collect(),
                    verified_behaviours: node
                        .get_children("verified-behaviour")
                        .map(|c| c.text.clone())
                        .collect(),
                    comments,
                }))
            }
            "unknown-software" => Ok(Response::UnknownSoftware {
                software_id: required(node, "software-id")?.to_string(),
            }),
            "pseudonym-key" => Ok(Response::PseudonymKey {
                n: required(node, "n")?.to_string(),
                e: required(node, "e")?.to_string(),
            }),
            "blind-signature" => {
                Ok(Response::BlindSignature { value: required(node, "value")?.to_string() })
            }
            "feed-entry" => Ok(Response::FeedEntry {
                feed: required(node, "feed")?.to_string(),
                software_id: required(node, "software-id")?.to_string(),
                rating: required_parse(node, "rating")?,
                behaviours: node.get_children("behaviour").map(|c| c.text.clone()).collect(),
            }),
            "vendor" => Ok(Response::Vendor {
                vendor: required(node, "vendor")?.to_string(),
                rating: node.child_text("rating").and_then(|v| v.parse().ok()),
                software_count: required_parse(node, "software-count")?,
            }),
            "repl-entries" => {
                let entries = node
                    .get_children("entry")
                    .map(|e| {
                        Ok(ReplEntry {
                            seq: required_attr_parse(e, "seq")?,
                            batch: hex_decode(&e.text)?,
                        })
                    })
                    .collect::<Result<Vec<_>, MessageError>>()?;
                Ok(Response::ReplEntries {
                    committed_seq: required_attr_parse(node, "committed-seq")?,
                    backlog_bytes: required_attr_parse(node, "backlog-bytes")?,
                    entries,
                })
            }
            "repl-snapshot-chunk" => Ok(Response::ReplSnapshotChunk {
                seq: required_attr_parse(node, "seq")?,
                offset: required_attr_parse(node, "offset")?,
                total_len: required_attr_parse(node, "total-len")?,
                data: hex_decode(&node.text)?,
            }),
            "repl-resync" => Ok(Response::ReplResync {
                committed_seq: required_attr_parse(node, "committed-seq")?,
            }),
            "not-primary" => {
                Ok(Response::NotPrimary { primary: required(node, "primary")?.to_string() })
            }
            other => Err(MessageError(format!("unknown response status '{other}'"))),
        }
    }

    /// Encode to a full XML document string.
    pub fn encode(&self) -> String {
        self.to_xml().to_document()
    }

    /// Decode from a document string.
    pub fn decode(input: &str) -> Result<Self, MessageError> {
        Self::from_xml(&XmlNode::parse(input)?)
    }

    /// Convenience constructor for error responses.
    pub fn error(code: impl Into<String>, message: impl Into<String>) -> Self {
        Response::Error { code: code.into(), message: message.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let encoded = req.encode();
        let decoded = Request::decode(&encoded).unwrap();
        assert_eq!(decoded, req, "document: {encoded}");
    }

    fn roundtrip_response(resp: Response) {
        let encoded = resp.encode();
        let decoded = Response::decode(&encoded).unwrap();
        assert_eq!(decoded, resp, "document: {encoded}");
    }

    #[test]
    fn all_request_variants_roundtrip() {
        roundtrip_request(Request::GetPuzzle);
        roundtrip_request(Request::Register {
            username: "alice".into(),
            password: "p4ss <&> word".into(),
            email: "alice@example.com".into(),
            puzzle_challenge: "12:00ff".into(),
            puzzle_solution: 42,
        });
        roundtrip_request(Request::Activate { username: "alice".into(), token: "tok123".into() });
        roundtrip_request(Request::Login { username: "alice".into(), password: "pw".into() });
        roundtrip_request(Request::QuerySoftware { software_id: "abcd".repeat(10) });
        roundtrip_request(Request::RegisterSoftware {
            software_id: "ff".repeat(20),
            file_name: "setup.exe".into(),
            file_size: 1_234_567,
            company: Some("Acme & Co".into()),
            version: None,
        });
        roundtrip_request(Request::SubmitVote {
            session: "s".into(),
            software_id: "aa".into(),
            score: 7,
            behaviours: vec!["popup_ads".into(), "tracking".into()],
        });
        roundtrip_request(Request::SubmitComment {
            session: "s".into(),
            software_id: "aa".into(),
            text: "Great program, but shows \"ads\" & tracks you".into(),
        });
        roundtrip_request(Request::RateComment {
            session: "s".into(),
            comment_id: 9,
            positive: true,
        });
        roundtrip_request(Request::RateComment {
            session: "s".into(),
            comment_id: 9,
            positive: false,
        });
        roundtrip_request(Request::QueryVendor { vendor: "Gator Corp".into() });
        roundtrip_request(Request::QueryDetails { software_id: "ab".into() });
        roundtrip_request(Request::ReplSubscribe {
            from_seq: 12_345,
            max_entries: 256,
            max_bytes: 1 << 18,
        });
        roundtrip_request(Request::ReplSnapshot { seq: 0, offset: 0 });
        roundtrip_request(Request::ReplSnapshot { seq: 987, offset: 262_144 });
    }

    #[test]
    fn repl_responses_roundtrip() {
        roundtrip_response(Response::ReplEntries {
            committed_seq: 42,
            backlog_bytes: 9_001,
            entries: vec![
                ReplEntry { seq: 41, batch: vec![0x00, 0xff, 0x3c, 0x26, 0x80] },
                ReplEntry { seq: 42, batch: Vec::new() },
            ],
        });
        roundtrip_response(Response::ReplEntries {
            committed_seq: 0,
            backlog_bytes: 0,
            entries: Vec::new(),
        });
        roundtrip_response(Response::ReplSnapshotChunk {
            seq: 7,
            offset: 1024,
            total_len: 4096,
            data: (0u16..=255).map(|b| b as u8).collect(),
        });
        roundtrip_response(Response::ReplResync { committed_seq: 55 });
        roundtrip_response(Response::NotPrimary { primary: "10.0.0.1:7007".into() });
    }

    #[test]
    fn hex_payloads_reject_garbage() {
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "non-hex digit");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert_eq!(hex_decode("00ff10").unwrap(), vec![0x00, 0xff, 0x10]);
        assert_eq!(hex_decode("00FF10").unwrap(), vec![0x00, 0xff, 0x10]);
    }

    #[test]
    fn replica_servable_subset_is_read_only() {
        assert!(Request::QuerySoftware { software_id: "ab".into() }.is_replica_servable());
        assert!(Request::QueryVendor { vendor: "v".into() }.is_replica_servable());
        assert!(Request::ReplSubscribe { from_seq: 0, max_entries: 1, max_bytes: 1 }
            .is_replica_servable());
        assert!(!Request::GetPuzzle.is_replica_servable());
        assert!(
            !Request::Login { username: "a".into(), password: "b".into() }.is_replica_servable()
        );
        assert!(!Request::SubmitVote {
            session: "s".into(),
            software_id: "ab".into(),
            score: 5,
            behaviours: vec![],
        }
        .is_replica_servable());
    }

    #[test]
    fn all_response_variants_roundtrip() {
        roundtrip_response(Response::Ok);
        roundtrip_response(Response::error("duplicate-email", "e-mail already registered"));
        roundtrip_response(Response::Puzzle { challenge: "16:aabb".into() });
        roundtrip_response(Response::Registered { activation_token: "tok".into() });
        roundtrip_response(Response::Session { token: "sess".into() });
        roundtrip_response(Response::UnknownSoftware { software_id: "dead".into() });
        roundtrip_response(Response::Vendor {
            vendor: "Acme".into(),
            rating: Some(7.25),
            software_count: 12,
        });
        roundtrip_response(Response::Vendor {
            vendor: "Mystery".into(),
            rating: None,
            software_count: 0,
        });
        roundtrip_response(Response::Software(SoftwareInfo {
            software_id: "ab".repeat(20),
            file_name: Some("weatherbar.exe".into()),
            company: Some("Acme".into()),
            version: Some("2.1".into()),
            rating: Some(3.5),
            vote_count: 125,
            behaviours: vec!["popup_ads".into()],
            verified_behaviours: vec!["tracking".into()],
            comments: vec![
                CommentInfo {
                    id: 1,
                    author: "expert_user".into(),
                    text: "Bundles a tracker; uninstall is broken.".into(),
                    remark_score: 14,
                },
                CommentInfo {
                    id: 2,
                    author: "novice".into(),
                    text: "gr8".into(),
                    remark_score: -3,
                },
            ],
        }));
    }

    #[test]
    fn software_without_optionals_roundtrips() {
        roundtrip_response(Response::Software(SoftwareInfo {
            software_id: "cc".into(),
            file_name: None,
            company: None,
            version: None,
            rating: None,
            vote_count: 0,
            behaviours: vec![],
            verified_behaviours: vec![],
            comments: vec![],
        }));
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert!(Request::decode("<request type=\"bogus\"/>").is_err());
        assert!(Request::decode("<request/>").is_err());
        assert!(Request::decode("<other/>").is_err());
        assert!(
            Request::decode("<request type=\"login\"><username>a</username></request>").is_err()
        );
        assert!(Response::decode("<response status=\"nope\"/>").is_err());
        assert!(Response::decode("<response/>").is_err());
        assert!(Request::decode("not xml at all").is_err());
    }

    #[test]
    fn score_out_of_u8_range_is_rejected() {
        let doc = "<request type=\"submit-vote\"><session>s</session>\
                   <software-id>a</software-id><score>900</score></request>";
        assert!(Request::decode(doc).is_err());
    }

    #[test]
    fn rate_comment_rejects_non_boolean() {
        let doc = "<request type=\"rate-comment\"><session>s</session>\
                   <comment-id>1</comment-id><positive>maybe</positive></request>";
        assert!(Request::decode(doc).is_err());
    }
}
