//! Length-prefixed message framing over byte streams.
//!
//! Frame layout: `len: u32 BE` followed by `len` bytes of UTF-8 XML. A
//! maximum frame size bounds memory against hostile peers. Works over any
//! `Read`/`Write` pair — `TcpStream` in the examples, in-memory pipes in
//! tests.

use std::io::{self, Read, Write};

/// Upper bound on a single frame (1 MiB); larger declared lengths are
/// treated as protocol violations rather than honoured.
pub const MAX_FRAME_LEN: u32 = 1024 * 1024;

/// Errors from the framing layer.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying stream failure.
    Io(io::Error),
    /// Peer declared a frame longer than [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// Frame body was not valid UTF-8.
    NotUtf8,
    /// Clean end-of-stream between frames.
    Closed,
    /// The frame arrived intact but its body was not a valid protocol
    /// message. The stream itself may be desynchronized, so callers must
    /// not reuse the connection.
    Decode(String),
}

impl FrameError {
    /// Does this error mean the connection is gone (or no longer
    /// trustworthy), so that reconnecting could help? `TooLarge`,
    /// `NotUtf8` and `Decode` are protocol violations a retry cannot fix;
    /// `Io`/`Closed` are transport failures a fresh connection might.
    pub fn is_disconnect(&self) -> bool {
        matches!(self, FrameError::Io(_) | FrameError::Closed)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::NotUtf8 => f.write_str("frame body is not valid UTF-8"),
            FrameError::Closed => f.write_str("stream closed"),
            FrameError::Decode(e) => write!(f, "frame body is not a valid message: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one framed message.
pub fn write_frame(w: &mut impl Write, body: &str) -> Result<(), FrameError> {
    let len = body.len() as u32;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Read one framed message. Returns [`FrameError::Closed`] on a clean EOF
/// at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    let mut header = [0u8; 4];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Closed),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    String::from_utf8(body).map_err(|_| FrameError::NotUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "<a/>").unwrap();
        write_frame(&mut buf, "<b>text</b>").unwrap();
        write_frame(&mut buf, "").unwrap();

        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), "<a/>");
        assert_eq!(read_frame(&mut cursor).unwrap(), "<b>text</b>");
        assert_eq!(read_frame(&mut cursor).unwrap(), "");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        buf.extend_from_slice(b"whatever");
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn truncated_body_is_io_error_not_closed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"short");
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::Io(_))));
    }

    #[test]
    fn truncated_header_is_closed_only_at_zero_bytes() {
        // Zero bytes = clean close.
        assert!(matches!(read_frame(&mut Cursor::new(Vec::new())), Err(FrameError::Closed)));
        // A partial header is also surfaced as Closed by read_exact's
        // UnexpectedEof; callers treat any mid-frame EOF as disconnect.
        let buf = vec![0u8, 0];
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::Closed)));
    }

    #[test]
    fn non_utf8_body_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::NotUtf8)));
    }

    #[test]
    fn disconnect_classification_separates_retryable_from_fatal() {
        assert!(FrameError::Closed.is_disconnect());
        assert!(FrameError::Io(io::Error::other("boom")).is_disconnect());
        assert!(!FrameError::TooLarge(9).is_disconnect());
        assert!(!FrameError::NotUtf8.is_disconnect());
        assert!(!FrameError::Decode("bad xml".into()).is_disconnect());
    }

    #[test]
    fn unicode_bodies_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "<msg>åäö — 評価</msg>").unwrap();
        assert_eq!(read_frame(&mut Cursor::new(buf)).unwrap(), "<msg>åäö — 評価</msg>");
    }
}
