//! Length-prefixed message framing over byte streams.
//!
//! Frame layout: `len: u32 BE` followed by `len` bytes of UTF-8 XML. A
//! maximum frame size bounds memory against hostile peers. Works over any
//! `Read`/`Write` pair — `TcpStream` in the examples, in-memory pipes in
//! tests.

use std::io::{self, Read, Write};

/// Upper bound on a single frame (1 MiB); larger declared lengths are
/// treated as protocol violations rather than honoured.
pub const MAX_FRAME_LEN: u32 = 1024 * 1024;

/// Errors from the framing layer.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying stream failure.
    Io(io::Error),
    /// Peer declared a frame longer than [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// Frame body was not valid UTF-8.
    NotUtf8,
    /// Clean end-of-stream between frames.
    Closed,
    /// The frame arrived intact but its body was not a valid protocol
    /// message. The stream itself may be desynchronized, so callers must
    /// not reuse the connection.
    Decode(String),
}

impl FrameError {
    /// Does this error mean the connection is gone (or no longer
    /// trustworthy), so that reconnecting could help? `TooLarge`,
    /// `NotUtf8` and `Decode` are protocol violations a retry cannot fix;
    /// `Io`/`Closed` are transport failures a fresh connection might.
    pub fn is_disconnect(&self) -> bool {
        matches!(self, FrameError::Io(_) | FrameError::Closed)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::NotUtf8 => f.write_str("frame body is not valid UTF-8"),
            FrameError::Closed => f.write_str("stream closed"),
            FrameError::Decode(e) => write!(f, "frame body is not a valid message: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encode one framed message (length header + body) into `out`, replacing
/// its previous contents. The buffer's capacity is reused across calls, so
/// a caller holding a scratch `Vec` frames with zero steady-state
/// allocations.
pub fn encode_frame_into(body: &str, out: &mut Vec<u8>) -> Result<(), FrameError> {
    if body.len() > MAX_FRAME_LEN as usize {
        return Err(FrameError::TooLarge(body.len().min(u32::MAX as usize) as u32));
    }
    let len = body.len() as u32;
    out.clear();
    out.reserve(4 + body.len());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(body.as_bytes());
    Ok(())
}

/// Write one framed message, coalescing header and body into a single
/// `write_all` (one syscall on an unbuffered socket, and no Nagle
/// interaction between a 4-byte header segment and the body segment).
pub fn write_frame(w: &mut impl Write, body: &str) -> Result<(), FrameError> {
    let mut scratch = Vec::new();
    write_frame_with(w, body, &mut scratch)
}

/// [`write_frame`] with a caller-provided scratch buffer, so repeated
/// writes on one connection allocate nothing in steady state.
pub fn write_frame_with(
    w: &mut impl Write,
    body: &str,
    scratch: &mut Vec<u8>,
) -> Result<(), FrameError> {
    encode_frame_into(body, scratch)?;
    w.write_all(scratch)?;
    w.flush()?;
    Ok(())
}

/// Read one framed message. Returns [`FrameError::Closed`] on a clean EOF
/// at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    let mut buf = Vec::new();
    read_frame_into(r, &mut buf)?;
    String::from_utf8(buf).map_err(|_| FrameError::NotUtf8)
}

/// Read one framed message into `buf` (cleared first), reusing its
/// capacity across calls. On success the buffer holds the validated UTF-8
/// body. A clean EOF *between* frames is [`FrameError::Closed`]; an EOF
/// after one or more header bytes is a mid-frame disconnect and surfaces
/// as [`FrameError::Io`], exactly like an EOF inside the body.
pub fn read_frame_into(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<(), FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    if std::str::from_utf8(buf).is_err() {
        return Err(FrameError::NotUtf8);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "<a/>").unwrap();
        write_frame(&mut buf, "<b>text</b>").unwrap();
        write_frame(&mut buf, "").unwrap();

        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), "<a/>");
        assert_eq!(read_frame(&mut cursor).unwrap(), "<b>text</b>");
        assert_eq!(read_frame(&mut cursor).unwrap(), "");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        buf.extend_from_slice(b"whatever");
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn truncated_body_is_io_error_not_closed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"short");
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::Io(_))));
    }

    #[test]
    fn partial_header_eof_is_a_disconnect_not_a_clean_close() {
        // Zero bytes = clean close at a frame boundary.
        assert!(matches!(read_frame(&mut Cursor::new(Vec::new())), Err(FrameError::Closed)));
        // One to three header bytes followed by EOF is a *mid-frame*
        // disconnect. This used to be misclassified as `Closed` (the old
        // test even documented the quirk); a retrying client must see it
        // as an Io disconnect, like an EOF inside the body.
        for partial in 1..4usize {
            let buf = vec![0u8; partial];
            match read_frame(&mut Cursor::new(buf)) {
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "{partial} header bytes")
                }
                other => panic!("{partial} header bytes: expected Io disconnect, got {other:?}"),
            }
        }
    }

    #[test]
    fn read_frame_into_reuses_the_buffer_across_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "<first with some length/>").unwrap();
        write_frame(&mut wire, "<b/>").unwrap();
        let mut cursor = Cursor::new(wire);
        let mut buf = Vec::new();
        read_frame_into(&mut cursor, &mut buf).unwrap();
        assert_eq!(&buf, b"<first with some length/>");
        let cap = buf.capacity();
        read_frame_into(&mut cursor, &mut buf).unwrap();
        assert_eq!(&buf, b"<b/>");
        assert_eq!(buf.capacity(), cap, "second read must reuse the first read's capacity");
        assert!(matches!(read_frame_into(&mut cursor, &mut buf), Err(FrameError::Closed)));
    }

    #[test]
    fn write_frame_is_a_single_write_call() {
        // A writer that fails any write after the first proves header and
        // body were coalesced into one `write_all`.
        struct OneShot {
            calls: usize,
            bytes: Vec<u8>,
        }
        impl Write for OneShot {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.calls += 1;
                assert_eq!(self.calls, 1, "write_frame must issue exactly one write");
                self.bytes.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = OneShot { calls: 0, bytes: Vec::new() };
        write_frame(&mut w, "<one/>").unwrap();
        assert_eq!(read_frame(&mut Cursor::new(w.bytes)).unwrap(), "<one/>");
    }

    #[test]
    fn encode_frame_into_rejects_oversized_bodies_and_replaces_contents() {
        let mut out = vec![1, 2, 3];
        encode_frame_into("<x/>", &mut out).unwrap();
        assert_eq!(read_frame(&mut Cursor::new(out.clone())).unwrap(), "<x/>");
        let huge = "a".repeat(MAX_FRAME_LEN as usize + 1);
        assert!(matches!(encode_frame_into(&huge, &mut out), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn read_frame_into_rejects_non_utf8_bodies() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&2u32.to_be_bytes());
        wire.extend_from_slice(&[0xff, 0xfe]);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame_into(&mut Cursor::new(wire), &mut buf),
            Err(FrameError::NotUtf8)
        ));
    }

    #[test]
    fn non_utf8_body_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::NotUtf8)));
    }

    #[test]
    fn disconnect_classification_separates_retryable_from_fatal() {
        assert!(FrameError::Closed.is_disconnect());
        assert!(FrameError::Io(io::Error::other("boom")).is_disconnect());
        assert!(!FrameError::TooLarge(9).is_disconnect());
        assert!(!FrameError::NotUtf8.is_disconnect());
        assert!(!FrameError::Decode("bad xml".into()).is_disconnect());
    }

    #[test]
    fn unicode_bodies_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "<msg>åäö — 評価</msg>").unwrap();
        assert_eq!(read_frame(&mut Cursor::new(buf)).unwrap(), "<msg>åäö — 評価</msg>");
    }
}
