#![warn(missing_docs)]

//! Client ↔ server wire protocol.
//!
//! The paper states: "XML is used as the communication protocol between the
//! client and the server" (§3.2). This crate implements that protocol from
//! scratch:
//!
//! * [`xml`] — a small XML 1.0 subset (elements, attributes, character data
//!   with entity escaping). No namespaces, comments, processing
//!   instructions, or DTDs: the protocol never produces them, and rejecting
//!   them closes the classic XML attack surface (entity expansion, DTD
//!   fetches).
//! * [`message`] — the typed request/response schema: registration,
//!   activation, login, software queries, vote/comment/remark submission,
//!   vendor queries, and puzzle challenges, each with a canonical XML
//!   rendering.
//! * [`framing`] — length-prefixed frames for running the protocol over a
//!   byte stream (`std::net::TcpStream` in the examples, in-memory pipes in
//!   tests).
//!
//! The crate is deliberately dependency-free so both the client and server
//! crates can use it without cycles.

pub mod framing;
pub mod message;
pub mod xml;

pub use message::{ReplEntry, Request, Response};
pub use xml::{XmlError, XmlNode};
