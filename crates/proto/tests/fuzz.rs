//! Fuzz-style robustness: the protocol layer must never panic on hostile
//! input — it faces the network directly.

use proptest::prelude::*;

use softrep_proto::framing::read_frame;
use softrep_proto::{Request, Response, XmlNode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn xml_parser_never_panics(input in any::<String>()) {
        let _ = XmlNode::parse(&input);
    }

    #[test]
    fn xml_parser_never_panics_on_tag_soup(
        input in proptest::collection::vec(
            prop_oneof![
                Just("<".to_string()),
                Just(">".to_string()),
                Just("</".to_string()),
                Just("/>".to_string()),
                Just("&".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("\"".to_string()),
                Just("a".to_string()),
                Just(" ".to_string()),
                Just("<?xml".to_string()),
                Just("?>".to_string()),
                Just("&#x41;".to_string()),
                Just("&#999999999;".to_string()),
            ],
            0..64,
        )
    ) {
        let _ = XmlNode::parse(&input.concat());
    }

    #[test]
    fn message_decoders_never_panic(input in any::<String>()) {
        let _ = Request::decode(&input);
        let _ = Response::decode(&input);
    }

    #[test]
    fn message_decoders_never_panic_on_valid_xml_wrong_schema(
        name in "[a-z]{1,8}",
        attr in "[a-z-]{1,12}",
        value in "[a-zA-Z0-9 ]{0,16}",
        children in proptest::collection::vec(("[a-z-]{1,10}", "[a-zA-Z0-9 .]{0,12}"), 0..6),
    ) {
        let mut node = XmlNode::new(name).attr(attr, value);
        for (child, text) in children {
            node = node.text_child(child, text);
        }
        let doc = node.to_document();
        let _ = Request::decode(&doc);
        let _ = Response::decode(&doc);
    }

    #[test]
    fn frame_reader_never_panics(bytes: Vec<u8>) {
        let _ = read_frame(&mut std::io::Cursor::new(bytes));
    }

    #[test]
    fn request_roundtrip_is_total_for_generated_requests(
        username in "[a-zA-Z0-9_-]{1,16}",
        text in "[a-zA-Z0-9 <>&\"'.,!?]{0,64}",
        score in 1u8..=10,
        id: u64,
        positive: bool,
    ) {
        // Every constructible request must encode to a document its own
        // decoder accepts (totality of the codec over the value space).
        let requests = vec![
            Request::Login { username: username.clone(), password: text.clone() },
            Request::SubmitComment {
                session: username.clone(),
                software_id: "ab".repeat(20),
                text: text.clone(),
            },
            Request::SubmitVote {
                session: username.clone(),
                software_id: "cd".repeat(20),
                score,
                behaviours: vec![text.clone()],
            },
            Request::RateComment { session: username, comment_id: id, positive },
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).unwrap();
            // The XML text model canonicalises character data by trimming
            // leading/trailing whitespace (documented in proto::xml), so
            // every free-text field compares against its trimmed form.
            match (&decoded, &request) {
                (
                    Request::Login { username: du, password: dp },
                    Request::Login { username: ou, password: op },
                ) => {
                    prop_assert_eq!(du, ou);
                    prop_assert_eq!(dp.as_str(), op.trim());
                }
                (
                    Request::SubmitComment { text: dec, .. },
                    Request::SubmitComment { text: orig, .. },
                ) => prop_assert_eq!(dec.as_str(), orig.trim()),
                (
                    Request::SubmitVote { behaviours: dec, .. },
                    Request::SubmitVote { behaviours: orig, .. },
                ) => {
                    prop_assert_eq!(dec.len(), orig.len());
                    for (d, o) in dec.iter().zip(orig) {
                        prop_assert_eq!(d.as_str(), o.trim());
                    }
                }
                _ => prop_assert_eq!(&decoded, &request),
            }
        }
    }
}

#[test]
fn pathological_nesting_is_handled() {
    // Deep nesting must neither crash nor hang.
    let depth = 5_000;
    let mut doc = String::new();
    for i in 0..depth {
        doc.push_str(&format!("<n{i}>"));
    }
    for i in (0..depth).rev() {
        doc.push_str(&format!("</n{i}>"));
    }
    // Recursion depth: the parser is recursive-descent; very deep nesting
    // may legitimately fail, but it must fail by Result, not by abort —
    // run it on a thread with a large stack to verify the Result path.
    let handle = std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(move || XmlNode::parse(&doc).map(|n| n.name))
        .unwrap();
    let result = handle.join().expect("no panic");
    assert!(result.is_ok());
}

#[test]
fn huge_entity_values_are_rejected_not_expanded() {
    // The classic billion-laughs shape is impossible (no DTD), but huge
    // numeric references must also be rejected cheaply.
    assert!(XmlNode::parse("<a>&#99999999999999999999;</a>").is_err());
    assert!(XmlNode::parse("<a>&verylongentityname_that_exceeds_the_cap;</a>").is_err());
}
