//! Policy evaluation against an execution context.

use crate::ast::{Action, Cmp, Expr, Field, Policy, Predicate, Rule};

/// Everything the policy engine can observe about a pending execution.
///
/// Assembled by the client from the server's software report, the local
/// signature check, and the file itself. Absent information (`None`)
/// causes comparisons on that field to evaluate false, never to panic or
/// guess.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionContext {
    /// Published rating, if the server has one.
    pub rating: Option<f64>,
    /// Votes behind the rating.
    pub vote_count: u64,
    /// Derived vendor rating, if any.
    pub vendor_rating: Option<f64>,
    /// Executable size in bytes.
    pub file_size: u64,
    /// Behaviours reported by voters.
    pub behaviours: Vec<String>,
    /// Behaviours verified by runtime analysis (§5).
    pub verified_behaviours: Vec<String>,
    /// Rating from a subscribed feed, if one covers this program (§4.2).
    pub feed_rating: Option<f64>,
    /// Vendor name embedded in the binary.
    pub vendor: Option<String>,
    /// The binary carries a valid digital signature.
    pub signed: bool,
    /// …and the signer is a trusted vendor.
    pub signed_by_trusted: bool,
    /// The reputation server knows this executable.
    pub known: bool,
}

/// Evaluate `policy` top to bottom; the first matching rule decides.
/// Policies with no matching rule default to [`Action::Ask`] — the safe
/// interactive fallback.
pub fn evaluate(policy: &Policy, ctx: &ExecutionContext) -> Action {
    for rule in &policy.rules {
        if rule_matches(rule, ctx) {
            return rule.action;
        }
    }
    Action::Ask
}

fn rule_matches(rule: &Rule, ctx: &ExecutionContext) -> bool {
    match &rule.condition {
        None => true,
        Some(expr) => eval_expr(expr, ctx),
    }
}

fn eval_expr(expr: &Expr, ctx: &ExecutionContext) -> bool {
    match expr {
        Expr::Pred(p) => eval_pred(p, ctx),
        Expr::Not(inner) => !eval_expr(inner, ctx),
        Expr::And(l, r) => eval_expr(l, ctx) && eval_expr(r, ctx),
        Expr::Or(l, r) => eval_expr(l, ctx) || eval_expr(r, ctx),
    }
}

fn eval_pred(pred: &Predicate, ctx: &ExecutionContext) -> bool {
    match pred {
        Predicate::Signed => ctx.signed,
        Predicate::SignedByTrusted => ctx.signed_by_trusted,
        Predicate::Behaviour(b) => {
            // A verified behaviour also counts as reported: evidence is a
            // strict upgrade of a user report.
            ctx.behaviours.iter().any(|x| x == b) || ctx.verified_behaviours.iter().any(|x| x == b)
        }
        Predicate::VerifiedBehaviour(b) => ctx.verified_behaviours.iter().any(|x| x == b),
        Predicate::Vendor(v) => ctx.vendor.as_deref() == Some(v.as_str()),
        Predicate::VendorStripped => ctx.vendor.is_none(),
        Predicate::Known => ctx.known,
        Predicate::HasRating => ctx.rating.is_some(),
        Predicate::Compare(field, cmp, value) => {
            let Some(actual) = field_value(*field, ctx) else { return false };
            compare(actual, *cmp, *value)
        }
    }
}

fn field_value(field: Field, ctx: &ExecutionContext) -> Option<f64> {
    match field {
        Field::Rating => ctx.rating,
        Field::VoteCount => Some(ctx.vote_count as f64),
        Field::VendorRating => ctx.vendor_rating,
        Field::FileSize => Some(ctx.file_size as f64),
        Field::FeedRating => ctx.feed_rating,
    }
}

fn compare(actual: f64, cmp: Cmp, value: f64) -> bool {
    match cmp {
        Cmp::Lt => actual < value,
        Cmp::Le => actual <= value,
        Cmp::Gt => actual > value,
        Cmp::Ge => actual >= value,
        Cmp::Eq => (actual - value).abs() < f64::EPSILON,
        Cmp::Ne => (actual - value).abs() >= f64::EPSILON,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_policy;

    fn ctx_rated(rating: f64) -> ExecutionContext {
        ExecutionContext { rating: Some(rating), known: true, ..Default::default() }
    }

    fn decide(text: &str, ctx: &ExecutionContext) -> Action {
        evaluate(&parse_policy(text).unwrap(), ctx)
    }

    #[test]
    fn first_match_wins() {
        let text = "deny if rating < 5\nallow if rating < 9\nask otherwise";
        assert_eq!(decide(text, &ctx_rated(3.0)), Action::Deny);
        assert_eq!(decide(text, &ctx_rated(7.0)), Action::Allow);
        assert_eq!(decide(text, &ctx_rated(9.5)), Action::Ask);
    }

    #[test]
    fn empty_policy_defaults_to_ask() {
        assert_eq!(evaluate(&Policy::default(), &ExecutionContext::default()), Action::Ask);
    }

    #[test]
    fn missing_rating_never_matches_comparisons() {
        let unknown = ExecutionContext::default();
        assert_eq!(decide("allow if rating >= 0", &unknown), Action::Ask);
        assert_eq!(decide("deny if rating < 100", &unknown), Action::Ask);
        // …but has_rating and not has_rating work as expected.
        assert_eq!(decide("deny if not has_rating", &unknown), Action::Deny);
    }

    #[test]
    fn behaviour_and_vendor_predicates() {
        let ctx = ExecutionContext {
            behaviours: vec!["popup_ads".into(), "tracking".into()],
            vendor: Some("Acme".into()),
            ..Default::default()
        };
        assert_eq!(decide(r#"deny if behaviour("tracking")"#, &ctx), Action::Deny);
        assert_eq!(decide(r#"deny if behaviour("keylogger")"#, &ctx), Action::Ask);
        assert_eq!(decide(r#"allow if vendor("Acme")"#, &ctx), Action::Allow);
        assert_eq!(decide(r#"allow if vendor("Evil")"#, &ctx), Action::Ask);
        assert_eq!(decide("deny if vendor_stripped", &ctx), Action::Ask);

        let stripped = ExecutionContext::default();
        assert_eq!(decide("deny if vendor_stripped", &stripped), Action::Deny);
    }

    #[test]
    fn boolean_connectives() {
        let ctx = ExecutionContext { signed: true, known: false, ..Default::default() };
        assert_eq!(decide("allow if signed and known", &ctx), Action::Ask);
        assert_eq!(decide("allow if signed or known", &ctx), Action::Allow);
        assert_eq!(decide("allow if not known", &ctx), Action::Allow);
        assert_eq!(decide("allow if signed and not known", &ctx), Action::Allow);
    }

    #[test]
    fn comparison_operator_semantics() {
        let ctx = ctx_rated(5.0);
        assert_eq!(decide("allow if rating == 5", &ctx), Action::Allow);
        assert_eq!(decide("allow if rating != 5", &ctx), Action::Ask);
        assert_eq!(decide("allow if rating <= 5", &ctx), Action::Allow);
        assert_eq!(decide("allow if rating >= 5", &ctx), Action::Allow);
        assert_eq!(decide("allow if rating < 5", &ctx), Action::Ask);
        assert_eq!(decide("allow if rating > 5", &ctx), Action::Ask);
    }

    #[test]
    fn vote_count_and_file_size_fields() {
        let ctx = ExecutionContext { vote_count: 3, file_size: 2_000_000, ..Default::default() };
        assert_eq!(decide("deny if vote_count < 10", &ctx), Action::Deny);
        assert_eq!(decide("deny if file_size > 1000000", &ctx), Action::Deny);
    }

    #[test]
    fn verified_and_feed_fields_evaluate() {
        let ctx = ExecutionContext {
            behaviours: vec!["popup_ads".into()],
            verified_behaviours: vec!["keylogger".into()],
            feed_rating: Some(2.5),
            ..Default::default()
        };
        // verified(...) only matches evidence.
        assert_eq!(decide(r#"deny if verified("keylogger")"#, &ctx), Action::Deny);
        assert_eq!(decide(r#"deny if verified("popup_ads")"#, &ctx), Action::Ask);
        // behaviour(...) matches both user reports and evidence.
        assert_eq!(decide(r#"deny if behaviour("keylogger")"#, &ctx), Action::Deny);
        assert_eq!(decide(r#"deny if behaviour("popup_ads")"#, &ctx), Action::Deny);
        // feed_rating compares like any numeric field; absent → no match.
        assert_eq!(decide("deny if feed_rating <= 3", &ctx), Action::Deny);
        let no_feed = ExecutionContext::default();
        assert_eq!(decide("deny if feed_rating <= 3", &no_feed), Action::Ask);
    }

    #[test]
    fn corporate_policy_scenario() {
        // A corporate lockdown: trusted vendors sail through, known-bad
        // behaviours are blocked outright, everything unrated is blocked,
        // the rest needs a high rating.
        let text = r#"
            allow if signed_by_trusted
            deny if behaviour("keylogger") or behaviour("incomplete_uninstall")
            deny if not has_rating
            allow if rating >= 7.5 and vote_count >= 10
            deny otherwise
        "#;
        let trusted = ExecutionContext { signed_by_trusted: true, ..Default::default() };
        assert_eq!(decide(text, &trusted), Action::Allow);

        let keylogger = ExecutionContext {
            rating: Some(9.0),
            behaviours: vec!["keylogger".into()],
            ..Default::default()
        };
        assert_eq!(decide(text, &keylogger), Action::Deny);

        let unrated = ExecutionContext::default();
        assert_eq!(decide(text, &unrated), Action::Deny);

        let popular = ExecutionContext { rating: Some(8.0), vote_count: 50, ..Default::default() };
        assert_eq!(decide(text, &popular), Action::Allow);

        let thin_evidence =
            ExecutionContext { rating: Some(8.0), vote_count: 2, ..Default::default() };
        assert_eq!(decide(text, &thin_evidence), Action::Deny);
    }
}
