#![warn(missing_docs)]

//! The software policy manager proposed in §4.2 of the paper.
//!
//! "By using the information available in the reputation system it would be
//! possible for corporations or individual users to set up policies for
//! what software is allowed to execute on their computers. Such policies
//! could for instance take into account whether the software has been
//! signed by a trusted vendor, the software and vendor rating, or any
//! specific behaviour reported for the software e.g., if it show pop-up
//! advertisements or include an incomplete removal routine. … e.g., by
//! specifying that any software from trusted vendors should be allowed,
//! while other software only is allowed if it has a rating over 7.5/10 and
//! does not show any advertisements."
//!
//! The crate implements that idea as a small rule language:
//!
//! ```text
//! allow if signed_by_trusted
//! deny  if behaviour("popup_ads") and rating < 5
//! allow if rating >= 7.5 and not behaviour("popup_ads")
//! ask   otherwise
//! ```
//!
//! Rules are evaluated top to bottom against an [`ExecutionContext`]; the
//! first matching rule decides. Comparisons against *absent* data (no
//! rating yet, unknown vendor) never match, so policies fail safe toward
//! the later rules and the final `otherwise`.
//!
//! The paper's 7.5/10 example compiles to exactly the third rule above —
//! see `examples/policy_manager.rs` and experiment D9.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{Action, Expr, Field, Policy, Predicate, Rule};
pub use eval::{evaluate, ExecutionContext};
pub use parser::{parse_policy, PolicyError};

/// Parse and evaluate in one step (convenience for callers that do not
/// cache the compiled policy).
pub fn decide(policy_text: &str, ctx: &ExecutionContext) -> Result<Action, PolicyError> {
    let policy = parse_policy(policy_text)?;
    Ok(evaluate(&policy, ctx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_policy_end_to_end() {
        // §4.2's worked example, verbatim in the DSL.
        let text = r#"
            # Any software from trusted vendors should be allowed.
            allow if signed_by_trusted
            # Other software only if rated over 7.5/10 and ad-free.
            allow if rating > 7.5 and not behaviour("popup_ads")
            ask otherwise
        "#;
        let trusted = ExecutionContext { signed_by_trusted: true, ..Default::default() };
        assert_eq!(decide(text, &trusted).unwrap(), Action::Allow);

        let good = ExecutionContext { rating: Some(8.2), ..Default::default() };
        assert_eq!(decide(text, &good).unwrap(), Action::Allow);

        let good_but_ads = ExecutionContext {
            rating: Some(8.2),
            behaviours: vec!["popup_ads".into()],
            ..Default::default()
        };
        assert_eq!(decide(text, &good_but_ads).unwrap(), Action::Ask);

        let unrated = ExecutionContext::default();
        assert_eq!(decide(text, &unrated).unwrap(), Action::Ask);
    }
}
