//! Abstract syntax of the policy language.

/// What a matched rule does with the pending execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Run the program without asking.
    Allow,
    /// Block the program without asking.
    Deny,
    /// Fall back to interactive confirmation (the client dialog).
    Ask,
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Action::Allow => "allow",
            Action::Deny => "deny",
            Action::Ask => "ask",
        })
    }
}

/// Numeric fields a policy can compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// Trust-weighted software rating (1–10); absent until aggregated.
    Rating,
    /// Number of votes behind the rating.
    VoteCount,
    /// Derived vendor rating (1–10); absent for unknown vendors.
    VendorRating,
    /// Executable size in bytes.
    FileSize,
    /// Rating published by a subscribed feed (§4.2's expert-group
    /// subscriptions); absent when no subscribed feed covers the program.
    FeedRating,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Boolean atoms about the pending executable.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Carries a valid digital signature (any signer).
    Signed,
    /// Signature verifies *and* the signer is in the trusted-vendor list.
    SignedByTrusted,
    /// The named behaviour was reported by voters.
    Behaviour(String),
    /// The named behaviour was verified by runtime analysis (§5 "hard
    /// evidence") — stronger than a user report.
    VerifiedBehaviour(String),
    /// The binary declares exactly this vendor name.
    Vendor(String),
    /// Binary carries no vendor metadata — §3.3's PIS signal.
    VendorStripped,
    /// The reputation server knows this executable.
    Known,
    /// A published rating exists.
    HasRating,
    /// Numeric comparison on a [`Field`].
    Compare(Field, Cmp, f64),
}

/// Boolean expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An atom.
    Pred(Predicate),
    /// Negation.
    Not(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
}

/// One policy rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The action taken when the condition holds.
    pub action: Action,
    /// The condition; `None` encodes `otherwise` (always matches).
    pub condition: Option<Expr>,
}

/// An ordered rule list; first match wins.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Policy {
    /// Rules in evaluation order.
    pub rules: Vec<Rule>,
}

impl Policy {
    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the policy has no rules (every decision falls through to
    /// the default `Ask`).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_display() {
        assert_eq!(Action::Allow.to_string(), "allow");
        assert_eq!(Action::Deny.to_string(), "deny");
        assert_eq!(Action::Ask.to_string(), "ask");
    }

    #[test]
    fn policy_len_and_empty() {
        let mut p = Policy::default();
        assert!(p.is_empty());
        p.rules.push(Rule { action: Action::Ask, condition: None });
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }
}
