//! Tokeniser for the policy language.
//!
//! Line comments start with `#`. Strings are double-quoted with `\"` and
//! `\\` escapes. Identifiers are `[a-z_][a-z0-9_]*`.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or predicate name.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Double-quoted string literal (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
}

/// A token plus its line number (1-based) for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Source line.
    pub line: usize,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// Source line.
    pub line: usize,
}

/// Tokenise `input`.
pub fn lex(input: &str) -> Result<Vec<Spanned>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                tokens.push(Spanned { token: Token::LParen, line });
            }
            ')' => {
                chars.next();
                tokens.push(Spanned { token: Token::RParen, line });
            }
            '<' => {
                chars.next();
                let token = if chars.peek() == Some(&'=') {
                    chars.next();
                    Token::Le
                } else {
                    Token::Lt
                };
                tokens.push(Spanned { token, line });
            }
            '>' => {
                chars.next();
                let token = if chars.peek() == Some(&'=') {
                    chars.next();
                    Token::Ge
                } else {
                    Token::Gt
                };
                tokens.push(Spanned { token, line });
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Spanned { token: Token::EqEq, line });
                } else {
                    return Err(LexError {
                        message: "expected '==' (single '=' is not an operator)".into(),
                        line,
                    });
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Spanned { token: Token::Ne, line });
                } else {
                    return Err(LexError {
                        message: "expected '!=' ('!' alone; use 'not')".into(),
                        line,
                    });
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => {
                            return Err(LexError { message: "unterminated string".into(), line })
                        }
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            other => {
                                return Err(LexError {
                                    message: format!("invalid escape {other:?}"),
                                    line,
                                })
                            }
                        },
                        Some('\n') => {
                            return Err(LexError { message: "newline in string".into(), line })
                        }
                        Some(c) => s.push(c),
                    }
                }
                tokens.push(Spanned { token: Token::Str(s), line });
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: f64 = num
                    .parse()
                    .map_err(|_| LexError { message: format!("invalid number '{num}'"), line })?;
                tokens.push(Spanned { token: Token::Number(value), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned { token: Token::Ident(ident), line });
            }
            other => {
                return Err(LexError { message: format!("unexpected character '{other}'"), line })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_keywords_numbers_operators() {
        assert_eq!(
            toks("allow if rating >= 7.5"),
            vec![
                Token::Ident("allow".into()),
                Token::Ident("if".into()),
                Token::Ident("rating".into()),
                Token::Ge,
                Token::Number(7.5),
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks(r#"behaviour("popup \"ads\"")"#),
            vec![
                Token::Ident("behaviour".into()),
                Token::LParen,
                Token::Str("popup \"ads\"".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let spanned = lex("# header\nallow # tail\ndeny").unwrap();
        assert_eq!(spanned[0].token, Token::Ident("allow".into()));
        assert_eq!(spanned[0].line, 2);
        assert_eq!(spanned[1].line, 3);
    }

    #[test]
    fn all_comparison_operators() {
        assert_eq!(
            toks("< <= > >= == !="),
            vec![Token::Lt, Token::Le, Token::Gt, Token::Ge, Token::EqEq, Token::Ne]
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = lex("allow\n$").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(lex("\"unterminated").is_err());
        assert!(lex("= x").is_err());
        assert!(lex("! x").is_err());
        assert!(lex("\"bad\nline\"").is_err());
        assert!(lex("1.2.3").is_err());
    }

    #[test]
    fn empty_input_is_empty_token_stream() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("   \n # only a comment \n").unwrap().is_empty());
    }
}
