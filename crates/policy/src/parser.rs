//! Recursive-descent parser for the policy language.
//!
//! Grammar:
//!
//! ```text
//! policy   := rule*
//! rule     := action "if" expr | action "otherwise"
//! action   := "allow" | "deny" | "ask"
//! expr     := and ("or" and)*
//! and      := unary ("and" unary)*
//! unary    := "not" unary | primary
//! primary  := "(" expr ")" | comparison | predicate
//! compare  := field op number
//! field    := "rating" | "vote_count" | "vendor_rating" | "file_size"
//!           | "feed_rating"
//! predicate:= "signed" | "signed_by_trusted" | "known" | "has_rating"
//!           | "vendor_stripped" | "behaviour" "(" string ")"
//!           | "verified" "(" string ")" | "vendor" "(" string ")"
//! ```

use crate::ast::{Action, Cmp, Expr, Field, Policy, Predicate, Rule};
use crate::lexer::{lex, LexError, Spanned, Token};

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError {
    /// Description.
    pub message: String,
    /// Source line (0 when unknown / end of input).
    pub line: usize,
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyError {}

impl From<LexError> for PolicyError {
    fn from(e: LexError) -> Self {
        PolicyError { message: e.message, line: e.line }
    }
}

/// Parse a policy source text.
pub fn parse_policy(input: &str) -> Result<Policy, PolicyError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.parse_rule()?);
    }
    Ok(Policy { rules })
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens.get(self.pos).or_else(|| self.tokens.last()).map_or(0, |t| t.line)
    }

    fn err(&self, message: impl Into<String>) -> PolicyError {
        PolicyError { message: message.into(), line: self.line() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    #[cfg_attr(not(test), allow(dead_code))] // parser-extension hook, exercised in tests
    fn expect_ident(&mut self, expected: &str) -> Result<(), PolicyError> {
        match self.bump() {
            Some(Token::Ident(id)) if id == expected => Ok(()),
            other => Err(self.err(format!("expected '{expected}', found {other:?}"))),
        }
    }

    fn parse_rule(&mut self) -> Result<Rule, PolicyError> {
        let action = match self.bump() {
            Some(Token::Ident(id)) => match id.as_str() {
                "allow" => Action::Allow,
                "deny" => Action::Deny,
                "ask" => Action::Ask,
                other => return Err(self.err(format!("expected allow/deny/ask, found '{other}'"))),
            },
            other => return Err(self.err(format!("expected a rule action, found {other:?}"))),
        };
        match self.bump() {
            Some(Token::Ident(id)) if id == "if" => {
                let condition = self.parse_expr()?;
                Ok(Rule { action, condition: Some(condition) })
            }
            Some(Token::Ident(id)) if id == "otherwise" => Ok(Rule { action, condition: None }),
            other => Err(self.err(format!("expected 'if' or 'otherwise', found {other:?}"))),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, PolicyError> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), Some(Token::Ident(id)) if id == "or") {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, PolicyError> {
        let mut left = self.parse_unary()?;
        while matches!(self.peek(), Some(Token::Ident(id)) if id == "and") {
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, PolicyError> {
        if matches!(self.peek(), Some(Token::Ident(id)) if id == "not") {
            self.bump();
            return Ok(Expr::Not(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, PolicyError> {
        match self.bump() {
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    other => Err(self.err(format!("expected ')', found {other:?}"))),
                }
            }
            Some(Token::Ident(id)) => self.parse_ident_primary(&id),
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }

    fn parse_ident_primary(&mut self, id: &str) -> Result<Expr, PolicyError> {
        // Zero-argument predicates.
        let simple = match id {
            "signed" => Some(Predicate::Signed),
            "signed_by_trusted" => Some(Predicate::SignedByTrusted),
            "known" => Some(Predicate::Known),
            "has_rating" => Some(Predicate::HasRating),
            "vendor_stripped" => Some(Predicate::VendorStripped),
            _ => None,
        };
        if let Some(p) = simple {
            return Ok(Expr::Pred(p));
        }

        // String-argument predicates.
        if id == "behaviour" || id == "behavior" || id == "vendor" || id == "verified" {
            self.expect_lparen()?;
            let arg = match self.bump() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(self.err(format!("expected a string argument, found {other:?}")))
                }
            };
            self.expect_rparen()?;
            let pred = match id {
                "vendor" => Predicate::Vendor(arg),
                "verified" => Predicate::VerifiedBehaviour(arg),
                _ => Predicate::Behaviour(arg),
            };
            return Ok(Expr::Pred(pred));
        }

        // Numeric comparisons.
        let field = match id {
            "rating" => Field::Rating,
            "vote_count" => Field::VoteCount,
            "vendor_rating" => Field::VendorRating,
            "file_size" => Field::FileSize,
            "feed_rating" => Field::FeedRating,
            other => return Err(self.err(format!("unknown predicate or field '{other}'"))),
        };
        let cmp = match self.bump() {
            Some(Token::Lt) => Cmp::Lt,
            Some(Token::Le) => Cmp::Le,
            Some(Token::Gt) => Cmp::Gt,
            Some(Token::Ge) => Cmp::Ge,
            Some(Token::EqEq) => Cmp::Eq,
            Some(Token::Ne) => Cmp::Ne,
            other => {
                return Err(self.err(format!("expected a comparison operator, found {other:?}")))
            }
        };
        let value = match self.bump() {
            Some(Token::Number(n)) => n,
            other => return Err(self.err(format!("expected a number, found {other:?}"))),
        };
        Ok(Expr::Pred(Predicate::Compare(field, cmp, value)))
    }

    fn expect_lparen(&mut self) -> Result<(), PolicyError> {
        match self.bump() {
            Some(Token::LParen) => Ok(()),
            other => Err(self.err(format!("expected '(', found {other:?}"))),
        }
    }

    fn expect_rparen(&mut self) -> Result<(), PolicyError> {
        match self.bump() {
            Some(Token::RParen) => Ok(()),
            other => Err(self.err(format!("expected ')', found {other:?}"))),
        }
    }
}

// Suppress an unused-method lint: expect_ident is kept for parser
// extensions and exercised in tests.
#[cfg(test)]
mod expect_ident_is_used {
    use super::*;

    #[test]
    fn expect_ident_matches_and_rejects() {
        let tokens = lex("if else").unwrap();
        let mut p = Parser { tokens, pos: 0 };
        p.expect_ident("if").unwrap();
        assert!(p.expect_ident("then").is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let policy = parse_policy(
            r#"
            allow if signed_by_trusted
            allow if rating > 7.5 and not behaviour("popup_ads")
            ask otherwise
            "#,
        )
        .unwrap();
        assert_eq!(policy.len(), 3);
        assert_eq!(policy.rules[0].action, Action::Allow);
        assert_eq!(policy.rules[0].condition, Some(Expr::Pred(Predicate::SignedByTrusted)));
        assert_eq!(policy.rules[2].condition, None);
        match &policy.rules[1].condition {
            Some(Expr::And(l, r)) => {
                assert_eq!(**l, Expr::Pred(Predicate::Compare(Field::Rating, Cmp::Gt, 7.5)));
                assert_eq!(
                    **r,
                    Expr::Not(Box::new(Expr::Pred(Predicate::Behaviour("popup_ads".into()))))
                );
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn or_binds_looser_than_and() {
        let policy = parse_policy("allow if signed and known or has_rating").unwrap();
        match &policy.rules[0].condition {
            Some(Expr::Or(l, _)) => {
                assert!(matches!(**l, Expr::And(_, _)));
            }
            other => panic!("or should be top-level: {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let policy = parse_policy("allow if signed and (known or has_rating)").unwrap();
        match &policy.rules[0].condition {
            Some(Expr::And(_, r)) => assert!(matches!(**r, Expr::Or(_, _))),
            other => panic!("and should be top-level: {other:?}"),
        }
    }

    #[test]
    fn not_is_tightest_and_stacks() {
        let policy = parse_policy("deny if not not vendor_stripped").unwrap();
        match &policy.rules[0].condition {
            Some(Expr::Not(inner)) => assert!(matches!(**inner, Expr::Not(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn both_behaviour_spellings_accepted() {
        parse_policy(r#"deny if behaviour("x")"#).unwrap();
        parse_policy(r#"deny if behavior("x")"#).unwrap();
    }

    #[test]
    fn vendor_predicate_parses() {
        let policy = parse_policy(r#"allow if vendor("Microsoft")"#).unwrap();
        assert_eq!(
            policy.rules[0].condition,
            Some(Expr::Pred(Predicate::Vendor("Microsoft".into())))
        );
    }

    #[test]
    fn all_fields_and_operators_parse() {
        parse_policy(
            "deny if rating < 3\n deny if vote_count <= 5\n allow if vendor_rating >= 6\n \
             deny if file_size > 1000000\n deny if rating == 1\n allow if rating != 1",
        )
        .unwrap();
    }

    #[test]
    fn verified_predicate_and_feed_rating_field_parse() {
        let policy = parse_policy(r#"deny if verified("keylogger") or feed_rating <= 3"#).unwrap();
        match &policy.rules[0].condition {
            Some(Expr::Or(l, r)) => {
                assert_eq!(**l, Expr::Pred(Predicate::VerifiedBehaviour("keylogger".into())));
                assert_eq!(**r, Expr::Pred(Predicate::Compare(Field::FeedRating, Cmp::Le, 3.0)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_cases_report_lines() {
        let err = parse_policy("allow if\nbogus_field > 3").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_policy("frobnicate if signed").is_err());
        assert!(parse_policy("allow signed").is_err());
        assert!(parse_policy("allow if rating >").is_err());
        assert!(parse_policy("allow if rating 5").is_err());
        assert!(parse_policy("allow if (signed").is_err());
        assert!(parse_policy("allow if behaviour(popup)").is_err());
        assert!(parse_policy("allow if").is_err());
    }

    #[test]
    fn empty_policy_is_valid() {
        assert!(parse_policy("").unwrap().is_empty());
        assert!(parse_policy("# just comments\n").unwrap().is_empty());
    }
}
