//! Behaviour markers: how synthetic executables "do" things.
//!
//! A real dynamic analyzer observes API calls; our synthetic executables
//! encode their behaviour as marker sequences in their body bytes. A
//! marker is the 3-byte magic `B7 3A C5` followed by a tag byte. The
//! corpus generator embeds one marker per true behaviour; the sandbox
//! recovers them at "runtime". Random body bytes hit the 3-byte magic with
//! probability 2⁻²⁴ per offset, so false positives are negligible at
//! corpus scale (and deduplicated anyway).

/// Marker magic prefix.
pub const MARKER_MAGIC: [u8; 3] = [0xB7, 0x3A, 0xC5];

/// (tag, behaviour name) pairs — the same names used by voters and the
/// policy DSL.
pub const TAGS: [(u8, &str); 7] = [
    (0x01, "popup_ads"),
    (0x02, "tracking"),
    (0x03, "startup_registration"),
    (0x04, "incomplete_uninstall"),
    (0x05, "settings_change"),
    (0x06, "keylogger"),
    (0x07, "data_exfiltration"),
];

/// The behaviour name for a tag byte, if defined.
pub fn behaviour_for_tag(tag: u8) -> Option<&'static str> {
    TAGS.iter().find(|(t, _)| *t == tag).map(|(_, name)| *name)
}

/// The tag byte for a behaviour name, if defined.
pub fn tag_for_behaviour(name: &str) -> Option<u8> {
    TAGS.iter().find(|(_, n)| *n == name).map(|(t, _)| *t)
}

/// Append markers for `behaviours` to a program body. Unknown behaviour
/// names are skipped (user-invented tags have no runtime signature).
pub fn embed_markers(body: &mut Vec<u8>, behaviours: &[String]) {
    for behaviour in behaviours {
        if let Some(tag) = tag_for_behaviour(behaviour) {
            body.extend_from_slice(&MARKER_MAGIC);
            body.push(tag);
        }
    }
}

/// Scan a body for markers; returns deduplicated behaviour names in tag
/// order.
pub fn detect_markers(body: &[u8]) -> Vec<String> {
    let mut found = [false; 256];
    let mut i = 0;
    while i + 4 <= body.len() {
        if body[i..i + 3] == MARKER_MAGIC {
            found[body[i + 3] as usize] = true;
            i += 4;
        } else {
            i += 1;
        }
    }
    TAGS.iter().filter(|(tag, _)| found[*tag as usize]).map(|(_, name)| name.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tags_and_names_are_bijective() {
        for (tag, name) in TAGS {
            assert_eq!(behaviour_for_tag(tag), Some(name));
            assert_eq!(tag_for_behaviour(name), Some(tag));
        }
        assert_eq!(behaviour_for_tag(0xFF), None);
        assert_eq!(tag_for_behaviour("made_up"), None);
    }

    #[test]
    fn embed_then_detect_roundtrip() {
        let mut body = vec![1, 2, 3, 4];
        embed_markers(&mut body, &["tracking".into(), "popup_ads".into()]);
        let detected = detect_markers(&body);
        assert_eq!(detected, vec!["popup_ads".to_string(), "tracking".to_string()]);
    }

    #[test]
    fn unknown_behaviours_are_skipped() {
        let mut body = Vec::new();
        embed_markers(&mut body, &["not_a_real_tag".into()]);
        assert!(body.is_empty());
    }

    #[test]
    fn duplicate_markers_deduplicate() {
        let mut body = Vec::new();
        embed_markers(&mut body, &["keylogger".into(), "keylogger".into()]);
        assert_eq!(detect_markers(&body), vec!["keylogger".to_string()]);
    }

    #[test]
    fn clean_bodies_detect_nothing() {
        assert!(detect_markers(&[]).is_empty());
        assert!(detect_markers(&[0u8; 1024]).is_empty());
    }

    #[test]
    fn markers_survive_surrounding_noise() {
        let mut body = vec![0xB7, 0x3A]; // truncated magic = noise
        embed_markers(&mut body, &["settings_change".into()]);
        body.extend_from_slice(&[0xB7, 0x3A, 0xC5]); // magic with no tag room? (3 bytes at end)
        assert_eq!(detect_markers(&body), vec!["settings_change".to_string()]);
    }

    #[test]
    fn overlapping_magic_prefix_still_detected() {
        // A stray 0xB7 immediately before a real marker means the scanner's
        // first 3-byte window [B7, B7, 3A] misses; it must re-sync one byte
        // later and still find [B7, 3A, C5, tag].
        let body = [0xB7, 0xB7, 0x3A, 0xC5, 0x02];
        assert_eq!(detect_markers(&body), vec!["tracking".to_string()]);
    }

    #[test]
    fn unknown_tag_after_magic_is_ignored() {
        // Magic followed by a tag byte outside TAGS: recorded during the
        // scan but filtered out of the result, not panicking and not
        // misattributed to a neighbouring tag.
        let body = [0xB7, 0x3A, 0xC5, 0xEE];
        assert!(detect_markers(&body).is_empty());
        // An unknown tag must not mask a later valid marker either.
        let mut body = body.to_vec();
        body.extend_from_slice(&[0xB7, 0x3A, 0xC5, 0x06]);
        assert_eq!(detect_markers(&body), vec!["keylogger".to_string()]);
    }

    #[test]
    fn marker_flush_with_body_end_is_detected() {
        // Tag byte is the final byte: the `i + 4 <= len` bound must accept
        // exactly-at-end markers (an off-by-one here silently drops the
        // last behaviour of every generated executable).
        let mut body = vec![9, 8, 7];
        embed_markers(&mut body, &["data_exfiltration".into()]);
        assert_eq!(body.len(), 7);
        assert_eq!(detect_markers(&body), vec!["data_exfiltration".to_string()]);
    }

    #[test]
    fn empty_behaviour_list_embeds_nothing() {
        let mut body = vec![1, 2, 3];
        embed_markers(&mut body, &[]);
        assert_eq!(body, vec![1, 2, 3]);
        let mut empty = Vec::new();
        embed_markers(&mut empty, &[]);
        assert!(empty.is_empty());
        assert!(detect_markers(&empty).is_empty());
    }

    #[test]
    fn raw_duplicate_marker_bytes_deduplicate() {
        // Dedup must hold for hand-crafted bodies too, not only bodies
        // produced by embed_markers.
        let mut body = Vec::new();
        for _ in 0..5 {
            body.extend_from_slice(&[0xB7, 0x3A, 0xC5, 0x01]);
            body.push(0x00); // spacer so every marker is scanned cleanly
        }
        assert_eq!(detect_markers(&body), vec!["popup_ads".to_string()]);
    }

    #[test]
    fn results_come_back_in_tag_order_regardless_of_embed_order() {
        let mut body = Vec::new();
        embed_markers(
            &mut body,
            &["data_exfiltration".into(), "popup_ads".into(), "keylogger".into()],
        );
        assert_eq!(
            detect_markers(&body),
            vec!["popup_ads".to_string(), "keylogger".to_string(), "data_exfiltration".to_string()]
        );
    }

    proptest! {
        #[test]
        fn detection_finds_all_embedded(
            noise_prefix in proptest::collection::vec(any::<u8>(), 0..64),
            noise_suffix in proptest::collection::vec(any::<u8>(), 0..64),
            subset in proptest::sample::subsequence(
                TAGS.iter().map(|(_, n)| n.to_string()).collect::<Vec<_>>(), 0..7),
        ) {
            let mut body = noise_prefix.clone();
            embed_markers(&mut body, &subset);
            body.extend_from_slice(&noise_suffix);
            let detected = detect_markers(&body);
            for name in &subset {
                prop_assert!(detected.contains(name), "missing {name}");
            }
        }
    }
}
