//! The evidence pipeline: analyse a binary, submit the findings to the
//! reputation server as authenticated hard evidence.

use softrep_core::identity::SyntheticExecutable;
use softrep_proto::{Request, Response};

use crate::sandbox::{AnalysisReport, Sandbox};

/// An analyzer bound to a server endpoint.
///
/// Generic over the transport the same way the client is: anything that
/// maps a [`Request`] to a [`Response`].
pub struct AnalysisService<F: FnMut(&Request) -> Response> {
    sandbox: Sandbox,
    analyzer_name: String,
    analyzer_token: String,
    transport: F,
    submitted: u64,
    rejected: u64,
}

impl<F: FnMut(&Request) -> Response> AnalysisService<F> {
    /// Create a service submitting through `transport`, authenticating
    /// with `analyzer_token`.
    pub fn new(
        sandbox: Sandbox,
        analyzer_name: impl Into<String>,
        analyzer_token: impl Into<String>,
        transport: F,
    ) -> Self {
        AnalysisService {
            sandbox,
            analyzer_name: analyzer_name.into(),
            analyzer_token: analyzer_token.into(),
            transport,
            submitted: 0,
            rejected: 0,
        }
    }

    /// Analyse `exe` and submit the evidence (registering the binary's
    /// metadata first, in case the server has never seen it). Returns the
    /// report; submission failures are counted, not fatal — analysis
    /// pipelines must survive flaky servers.
    pub fn analyse_and_submit(&mut self, exe: &SyntheticExecutable) -> AnalysisReport {
        let report = self.sandbox.analyse(exe);
        let _ = (self.transport)(&Request::RegisterSoftware {
            software_id: report.software_id.clone(),
            file_name: exe.file_name.clone(),
            file_size: exe.file_size(),
            company: exe.company.clone(),
            version: exe.version.clone(),
        });
        let resp = (self.transport)(&Request::SubmitEvidence {
            analyzer_token: self.analyzer_token.clone(),
            software_id: report.software_id.clone(),
            behaviours: report.behaviours.clone(),
            analyzer: self.analyzer_name.clone(),
        });
        if resp == Response::Ok {
            self.submitted += 1;
        } else {
            self.rejected += 1;
        }
        report
    }

    /// Evidence submissions accepted by the server.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Evidence submissions the server rejected.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers::embed_markers;

    fn exe(behaviours: &[&str]) -> SyntheticExecutable {
        let mut body = vec![7u8; 32];
        embed_markers(&mut body, &behaviours.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        SyntheticExecutable::new("toolbar.exe", "AdCo", "3.0", body)
    }

    #[test]
    fn submits_analysis_through_transport() {
        let mut seen = Vec::new();
        {
            let transport = |req: &Request| {
                seen.push(req.clone());
                Response::Ok
            };
            let mut service =
                AnalysisService::new(Sandbox::default(), "sandbox-v1", "secret", transport);
            let report = service.analyse_and_submit(&exe(&["tracking"]));
            assert_eq!(report.behaviours, vec!["tracking".to_string()]);
            assert_eq!(service.submitted(), 1);
            assert_eq!(service.rejected(), 0);
        }
        assert_eq!(seen.len(), 2, "register + evidence");
        match &seen[1] {
            Request::SubmitEvidence { analyzer_token, behaviours, analyzer, .. } => {
                assert_eq!(analyzer_token, "secret");
                assert_eq!(analyzer, "sandbox-v1");
                assert_eq!(behaviours, &vec!["tracking".to_string()]);
            }
            other => panic!("unexpected second request {other:?}"),
        }
    }

    #[test]
    fn rejections_are_counted_not_fatal() {
        let transport = |req: &Request| match req {
            Request::SubmitEvidence { .. } => Response::error("bad-analyzer-token", "nope"),
            _ => Response::Ok,
        };
        let mut service = AnalysisService::new(Sandbox::default(), "s", "wrong", transport);
        service.analyse_and_submit(&exe(&[]));
        service.analyse_and_submit(&exe(&["popup_ads"]));
        assert_eq!(service.submitted(), 0);
        assert_eq!(service.rejected(), 2);
    }
}
