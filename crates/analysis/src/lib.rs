#![warn(missing_docs)]

//! Runtime software analysis — the paper's §5 future work, implemented.
//!
//! "In addition to this we will also examine the possibility of using
//! runtime software analysis to automatically collect information about
//! whether software has some unwanted behaviour, for instance if it shows
//! advertisements or includes an incomplete uninstallation function. The
//! results from such investigations could then be inserted into the
//! reputation system as hard evidence on the behaviour for that specific
//! software."
//!
//! * [`markers`] — the behaviour-marker convention of the synthetic
//!   executable format: programs *do* things by containing marker
//!   sequences in their body bytes; the sandbox observes them.
//! * [`sandbox`] — the instrumented execution environment: "runs" a
//!   binary under an instruction budget and records every behaviour it
//!   exhibits, like a dynamic-analysis cuckoo box.
//! * [`service`] — the submission pipeline: analyse a binary and push the
//!   findings to the reputation server as authenticated evidence
//!   (`Request::SubmitEvidence`), where they surface to clients as
//!   *verified* behaviours.

pub mod markers;
pub mod sandbox;
pub mod service;

pub use sandbox::{AnalysisReport, Sandbox};
pub use service::AnalysisService;
