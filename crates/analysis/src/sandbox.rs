//! The analysis sandbox: instrumented execution of synthetic binaries.
//!
//! Models the essentials of a dynamic-analysis environment: a budget (real
//! sandboxes time out), partial coverage when the budget is exhausted
//! (behaviour late in the program may go unobserved), and a structured
//! report. Execution "interprets" the body one byte per instruction and
//! observes behaviour markers as they are reached.

use softrep_core::identity::SyntheticExecutable;

use crate::markers::{behaviour_for_tag, MARKER_MAGIC};

/// Result of analysing one binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Hex software id of the analysed binary (SHA-1, per the paper).
    pub software_id: String,
    /// Behaviours observed, in first-observation order.
    pub behaviours: Vec<String>,
    /// Instructions executed before the program ended or the budget ran
    /// out.
    pub instructions_executed: u64,
    /// True if the budget expired before the program finished — later
    /// behaviours may exist unobserved.
    pub truncated: bool,
}

/// The sandbox.
#[derive(Debug, Clone, Copy)]
pub struct Sandbox {
    /// Maximum body bytes interpreted per run.
    pub instruction_budget: u64,
}

impl Default for Sandbox {
    fn default() -> Self {
        Sandbox { instruction_budget: 1 << 20 }
    }
}

impl Sandbox {
    /// A sandbox with an explicit budget.
    pub fn with_budget(instruction_budget: u64) -> Self {
        Sandbox { instruction_budget }
    }

    /// Run `exe` and report everything observed.
    pub fn analyse(&self, exe: &SyntheticExecutable) -> AnalysisReport {
        let body = &exe.body;
        let limit = (self.instruction_budget as usize).min(body.len());
        let mut behaviours: Vec<String> = Vec::new();
        let mut i = 0usize;
        while i < limit {
            if i + 4 <= body.len() && body[i..i + 3] == MARKER_MAGIC {
                if let Some(name) = behaviour_for_tag(body[i + 3]) {
                    if !behaviours.iter().any(|b| b == name) {
                        behaviours.push(name.to_string());
                    }
                }
                i += 4;
            } else {
                i += 1;
            }
        }
        AnalysisReport {
            software_id: exe.id_sha1().to_hex(),
            behaviours,
            instructions_executed: i as u64,
            truncated: limit < body.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers::embed_markers;

    fn exe_with(behaviours: &[&str], padding: usize) -> SyntheticExecutable {
        let mut body = vec![0u8; padding];
        embed_markers(&mut body, &behaviours.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        SyntheticExecutable::new("sample.exe", "TestCo", "1.0", body)
    }

    #[test]
    fn observes_embedded_behaviours_in_order() {
        let exe = exe_with(&["tracking", "popup_ads"], 16);
        let report = Sandbox::default().analyse(&exe);
        assert_eq!(report.behaviours, vec!["tracking".to_string(), "popup_ads".to_string()]);
        assert!(!report.truncated);
        assert_eq!(report.software_id, exe.id_sha1().to_hex());
    }

    #[test]
    fn clean_binaries_report_nothing() {
        let exe = exe_with(&[], 256);
        let report = Sandbox::default().analyse(&exe);
        assert!(report.behaviours.is_empty());
        assert_eq!(report.instructions_executed, 256);
    }

    #[test]
    fn budget_exhaustion_truncates_coverage() {
        // Marker sits beyond the budget: a real sandbox timing out before
        // the adware's delayed payload fires.
        let exe = exe_with(&["keylogger"], 1_000);
        let report = Sandbox::with_budget(100).analyse(&exe);
        assert!(report.behaviours.is_empty());
        assert!(report.truncated);
        assert_eq!(report.instructions_executed, 100);

        // A generous budget sees it.
        let report = Sandbox::with_budget(10_000).analyse(&exe);
        assert_eq!(report.behaviours, vec!["keylogger".to_string()]);
        assert!(!report.truncated);
    }

    #[test]
    fn duplicate_markers_report_once() {
        let mut body = Vec::new();
        embed_markers(&mut body, &["popup_ads".into()]);
        embed_markers(&mut body, &["popup_ads".into()]);
        let exe = SyntheticExecutable::new("x.exe", "C", "1", body);
        let report = Sandbox::default().analyse(&exe);
        assert_eq!(report.behaviours.len(), 1);
    }
}
