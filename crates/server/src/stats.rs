//! Transport-layer counters for the TCP front end.
//!
//! The paper's availability argument (§2.1) is only testable if the
//! serving path can report what it did under load: how many connections it
//! accepted, how many it refused because the worker pool was saturated,
//! how many it dropped for idling past the read deadline, and how many
//! requests it actually answered. [`ServerStats`] collects those counters
//! behind one lock; [`StatsSnapshot`] is the consistent point-in-time view
//! the D3 attack experiment, the bench harness, and the socket tests
//! assert against.

use parking_lot::Mutex;

/// A consistent point-in-time copy of every transport counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections handed to a pool worker.
    pub accepted: u64,
    /// Connections currently being served.
    pub active: u64,
    /// Connections refused with `overloaded` because the pool was full.
    pub rejected_overload: u64,
    /// Connections dropped for idling past the read deadline.
    pub timed_out: u64,
    /// Requests answered (one response frame written each).
    pub requests_served: u64,
    /// Connections that have finished (cleanly or otherwise).
    pub closed: u64,
    /// Incremental aggregation batches run by `tick()`.
    pub agg_incremental_runs: u64,
    /// Full (paper-faithful) aggregation batches run on demand.
    pub agg_full_runs: u64,
    /// Software titles recomputed across both batch kinds.
    pub agg_titles_recomputed: u64,
}

/// Shared transport counters. All updates take one short critical
/// section, so a [`StatsSnapshot`] is internally consistent — `active`
/// never drifts from `accepted - closed`.
#[derive(Debug, Default)]
pub struct ServerStats {
    inner: Mutex<StatsSnapshot>,
}

impl ServerStats {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// A connection was handed to a worker.
    pub fn record_accepted(&self) {
        let mut s = self.inner.lock();
        s.accepted = s.accepted.saturating_add(1);
        s.active = s.active.saturating_add(1);
    }

    /// A previously accepted connection finished.
    pub fn record_closed(&self) {
        let mut s = self.inner.lock();
        s.closed = s.closed.saturating_add(1);
        s.active = s.active.saturating_sub(1);
    }

    /// A connection was refused because the worker pool was full.
    pub fn record_rejected_overload(&self) {
        let mut s = self.inner.lock();
        s.rejected_overload = s.rejected_overload.saturating_add(1);
    }

    /// A connection idled past the read deadline and was dropped.
    pub fn record_timed_out(&self) {
        let mut s = self.inner.lock();
        s.timed_out = s.timed_out.saturating_add(1);
    }

    /// One request was answered.
    pub fn record_request_served(&self) {
        let mut s = self.inner.lock();
        s.requests_served = s.requests_served.saturating_add(1);
    }

    /// An incremental aggregation batch recomputed `titles` ratings.
    pub fn record_aggregation_incremental(&self, titles: u64) {
        let mut s = self.inner.lock();
        s.agg_incremental_runs = s.agg_incremental_runs.saturating_add(1);
        s.agg_titles_recomputed = s.agg_titles_recomputed.saturating_add(titles);
    }

    /// A full aggregation batch recomputed `titles` ratings.
    pub fn record_aggregation_full(&self, titles: u64) {
        let mut s = self.inner.lock();
        s.agg_full_runs = s.agg_full_runs.saturating_add(1);
        s.agg_titles_recomputed = s.agg_titles_recomputed.saturating_add(titles);
    }

    /// Consistent copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        *self.inner.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_active_tracks_lifecycle() {
        let stats = ServerStats::new();
        stats.record_accepted();
        stats.record_accepted();
        stats.record_request_served();
        stats.record_closed();
        stats.record_rejected_overload();
        stats.record_timed_out();
        let s = stats.snapshot();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.active, 1);
        assert_eq!(s.closed, 1);
        assert_eq!(s.requests_served, 1);
        assert_eq!(s.rejected_overload, 1);
        assert_eq!(s.timed_out, 1);
    }

    #[test]
    fn active_saturates_rather_than_underflowing() {
        let stats = ServerStats::new();
        stats.record_closed();
        assert_eq!(stats.snapshot().active, 0);
        assert_eq!(stats.snapshot().closed, 1);
    }

    #[test]
    fn snapshot_is_internally_consistent() {
        let stats = ServerStats::new();
        for _ in 0..10 {
            stats.record_accepted();
        }
        for _ in 0..4 {
            stats.record_closed();
        }
        let s = stats.snapshot();
        assert_eq!(s.active, s.accepted - s.closed);
    }

    #[test]
    fn aggregation_counters_accumulate_across_batch_kinds() {
        let stats = ServerStats::new();
        stats.record_aggregation_incremental(3);
        stats.record_aggregation_incremental(0);
        stats.record_aggregation_full(10);
        let s = stats.snapshot();
        assert_eq!(s.agg_incremental_runs, 2);
        assert_eq!(s.agg_full_runs, 1);
        assert_eq!(s.agg_titles_recomputed, 13);
    }
}
