#![warn(missing_docs)]

//! The reputation server (§3.2 of the paper).
//!
//! "The server … handles the database containing registered user
//! information, ratings and comments for different software … The clients
//! communicate with the server through a web-server that handles the
//! requests sent by the client software."
//!
//! * [`session`] — bearer-token sessions issued at login.
//! * [`puzzle_gate`] — issues and redeems registration puzzles (§5's
//!   "computational penalties through variable hash guessing"), single-use
//!   and server-bound.
//! * [`flood`] — a per-identity token-bucket rate limiter; the transport-
//!   level half of the §2.1 vote-flooding defence.
//! * [`handler`] — [`handler::ReputationServer`]: the full request
//!   dispatcher mapping protocol [`softrep_proto::Request`]s onto the
//!   reputation database.
//! * [`pool`] — a bounded worker pool: explicit admission control instead
//!   of unbounded thread-per-connection spawning.
//! * [`stats`] — transport counters (accepted / active / rejected /
//!   timed-out / served) so load-shedding is measurable, not guessed.
//! * [`tcp`] — the thread-per-connection TCP front end speaking the
//!   framed XML protocol over a bounded worker pool, with connection
//!   deadlines and graceful, handle-joining shutdown; also home of
//!   [`tcp::Frontend`]/[`tcp::FrontendServer`], the switch between the
//!   two serving architectures.
//! * [`epoll`] (Linux) — a minimal typed wrapper over raw
//!   `epoll`/`eventfd`/`fcntl` syscalls, declared by hand so the
//!   workspace stays dependency-free.
//! * [`reactor`] (Linux) — the event-driven front end: one epoll loop
//!   driving per-connection state machines, a timer wheel for deadlines,
//!   and a bounded dispatch pool for handler execution; 1024+ concurrent
//!   connections where the thread front end sheds at 64.
//! * [`web`] — the §3 read-only web interface: searching, software and
//!   vendor detail pages, deployment statistics.
//! * [`repl`] — WAL-shipping replication (DESIGN.md §15): the primary's
//!   subscription/snapshot endpoints and [`repl::ReplicaTail`], the
//!   loop that keeps a read replica's store current.

#[cfg(target_os = "linux")]
pub mod epoll;
pub mod flood;
pub mod handler;
pub mod pool;
pub mod puzzle_gate;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod repl;
pub mod session;
pub mod stats;
pub mod tcp;
pub mod web;

pub use flood::FloodGuard;
pub use handler::{ReputationServer, ServerConfig};
pub use pool::{DispatchPool, PoolRejected, WorkerPool};
#[cfg(target_os = "linux")]
pub use reactor::ReactorServer;
pub use repl::{ReplicaTail, ReplicaTailConfig};
pub use session::SessionManager;
pub use stats::{ServerStats, StatsSnapshot};
pub use tcp::{Frontend, FrontendServer, TcpClient, TcpServer, TcpServerConfig};
