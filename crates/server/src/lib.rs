#![warn(missing_docs)]

//! The reputation server (§3.2 of the paper).
//!
//! "The server … handles the database containing registered user
//! information, ratings and comments for different software … The clients
//! communicate with the server through a web-server that handles the
//! requests sent by the client software."
//!
//! * [`session`] — bearer-token sessions issued at login.
//! * [`puzzle_gate`] — issues and redeems registration puzzles (§5's
//!   "computational penalties through variable hash guessing"), single-use
//!   and server-bound.
//! * [`flood`] — a per-identity token-bucket rate limiter; the transport-
//!   level half of the §2.1 vote-flooding defence.
//! * [`handler`] — [`handler::ReputationServer`]: the full request
//!   dispatcher mapping protocol [`softrep_proto::Request`]s onto the
//!   reputation database.
//! * [`tcp`] — a thread-per-connection TCP front end speaking the framed
//!   XML protocol (used by the networked examples; tests and simulations
//!   call the handler in-process).
//! * [`web`] — the §3 read-only web interface: searching, software and
//!   vendor detail pages, deployment statistics.

pub mod flood;
pub mod handler;
pub mod puzzle_gate;
pub mod session;
pub mod tcp;
pub mod web;

pub use flood::FloodGuard;
pub use handler::{ReputationServer, ServerConfig};
pub use session::SessionManager;
