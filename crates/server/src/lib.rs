#![warn(missing_docs)]

//! The reputation server (§3.2 of the paper).
//!
//! "The server … handles the database containing registered user
//! information, ratings and comments for different software … The clients
//! communicate with the server through a web-server that handles the
//! requests sent by the client software."
//!
//! * [`session`] — bearer-token sessions issued at login.
//! * [`puzzle_gate`] — issues and redeems registration puzzles (§5's
//!   "computational penalties through variable hash guessing"), single-use
//!   and server-bound.
//! * [`flood`] — a per-identity token-bucket rate limiter; the transport-
//!   level half of the §2.1 vote-flooding defence.
//! * [`handler`] — [`handler::ReputationServer`]: the full request
//!   dispatcher mapping protocol [`softrep_proto::Request`]s onto the
//!   reputation database.
//! * [`pool`] — a bounded worker pool: explicit admission control instead
//!   of unbounded thread-per-connection spawning.
//! * [`stats`] — transport counters (accepted / active / rejected /
//!   timed-out / served) so load-shedding is measurable, not guessed.
//! * [`tcp`] — the TCP front end speaking the framed XML protocol over a
//!   bounded worker pool, with connection deadlines and graceful,
//!   handle-joining shutdown (used by the networked examples; tests and
//!   simulations call the handler in-process).
//! * [`web`] — the §3 read-only web interface: searching, software and
//!   vendor detail pages, deployment statistics.

pub mod flood;
pub mod handler;
pub mod pool;
pub mod puzzle_gate;
pub mod session;
pub mod stats;
pub mod tcp;
pub mod web;

pub use flood::FloodGuard;
pub use handler::{ReputationServer, ServerConfig};
pub use pool::{PoolRejected, WorkerPool};
pub use session::SessionManager;
pub use stats::{ServerStats, StatsSnapshot};
pub use tcp::{TcpClient, TcpServer, TcpServerConfig};
