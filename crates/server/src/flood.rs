//! Per-identity token-bucket rate limiting.
//!
//! §2.1: "The main question when it comes to vote flooding is how to allow
//! normal users to be able to vote smoothly and yet be able to address
//! abusive users that attack the system." The guard gives every identity a
//! bucket of `capacity` requests refilling at `refill_per_hour`; normal
//! usage never notices, while a flooder exhausts the bucket and gets
//! throttled long before the database does.

use std::collections::HashMap;

use parking_lot::Mutex;

use softrep_core::clock::Timestamp;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_refill: Timestamp,
}

/// Token-bucket flood guard keyed by identity string.
pub struct FloodGuard {
    buckets: Mutex<HashMap<String, Bucket>>,
    capacity: f64,
    refill_per_hour: f64,
    rejected: Mutex<u64>,
}

impl FloodGuard {
    /// A guard allowing bursts of `capacity` and `refill_per_hour`
    /// sustained requests per hour per identity.
    pub fn new(capacity: u32, refill_per_hour: u32) -> Self {
        FloodGuard {
            buckets: Mutex::new(HashMap::new()),
            capacity: f64::from(capacity.max(1)),
            refill_per_hour: f64::from(refill_per_hour.max(1)),
            rejected: Mutex::new(0),
        }
    }

    /// Try to spend one token for `identity` at `now`. Returns `false`
    /// when the identity is throttled.
    pub fn allow(&self, identity: &str, now: Timestamp) -> bool {
        let mut buckets = self.buckets.lock();
        let bucket = buckets
            .entry(identity.to_string())
            .or_insert(Bucket { tokens: self.capacity, last_refill: now });

        // Refill proportionally to elapsed time.
        let elapsed_hours = now.since(bucket.last_refill) as f64 / 3_600.0;
        bucket.tokens = (bucket.tokens + elapsed_hours * self.refill_per_hour).min(self.capacity);
        bucket.last_refill = now;

        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            *self.rejected.lock() += 1;
            false
        }
    }

    /// Requests rejected so far (experiment D3's throttling measure).
    pub fn rejected_count(&self) -> u64 {
        *self.rejected.lock()
    }

    /// Identities currently tracked.
    pub fn tracked_identities(&self) -> usize {
        self.buckets.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_up_to_capacity_then_throttled() {
        let guard = FloodGuard::new(5, 60);
        for i in 0..5 {
            assert!(guard.allow("attacker", Timestamp(0)), "request {i} within burst");
        }
        assert!(!guard.allow("attacker", Timestamp(0)));
        assert_eq!(guard.rejected_count(), 1);
    }

    #[test]
    fn refill_restores_tokens_over_time() {
        let guard = FloodGuard::new(2, 60); // one token per minute
        assert!(guard.allow("u", Timestamp(0)));
        assert!(guard.allow("u", Timestamp(0)));
        assert!(!guard.allow("u", Timestamp(0)));
        // After 60 seconds one token has refilled.
        assert!(guard.allow("u", Timestamp(60)));
        assert!(!guard.allow("u", Timestamp(60)));
    }

    #[test]
    fn identities_are_independent() {
        let guard = FloodGuard::new(1, 1);
        assert!(guard.allow("a", Timestamp(0)));
        assert!(!guard.allow("a", Timestamp(0)));
        assert!(guard.allow("b", Timestamp(0)), "b has its own bucket");
        assert_eq!(guard.tracked_identities(), 2);
    }

    #[test]
    fn refill_never_exceeds_capacity() {
        let guard = FloodGuard::new(3, 3600);
        assert!(guard.allow("u", Timestamp(0)));
        // A year later the bucket is full but not overfull.
        let later = Timestamp(365 * 86_400);
        for _ in 0..3 {
            assert!(guard.allow("u", later));
        }
        assert!(!guard.allow("u", later));
    }

    #[test]
    fn zero_config_is_clamped_to_minimum() {
        let guard = FloodGuard::new(0, 0);
        assert!(guard.allow("u", Timestamp(0)), "capacity clamps to 1");
        assert!(!guard.allow("u", Timestamp(0)));
    }
}
