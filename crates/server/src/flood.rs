//! Per-identity token-bucket rate limiting.
//!
//! §2.1: "The main question when it comes to vote flooding is how to allow
//! normal users to be able to vote smoothly and yet be able to address
//! abusive users that attack the system." The guard gives every identity a
//! bucket of `capacity` requests refilling at `refill_per_hour`; normal
//! usage never notices, while a flooder exhausts the bucket and gets
//! throttled long before the database does.
//!
//! The bucket map itself is bounded (`max_tracked`): an attacker churning
//! through unique identities must not be able to grow server memory
//! without limit. When the map saturates, buckets that have idled long
//! enough to refill completely are evicted first — a full bucket carries
//! no throttling information, so dropping it is behaviour-preserving —
//! and if every bucket is still live, the least-recently-seen half is
//! shed. Actively throttled identities refresh `last_refill` on every
//! (rejected) request, so the hottest offenders always survive eviction.

use std::collections::HashMap;

use parking_lot::Mutex;

use softrep_core::clock::Timestamp;

/// Default bound on tracked identities (~a few MiB of buckets).
pub const DEFAULT_MAX_TRACKED: usize = 65_536;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_refill: Timestamp,
}

/// Everything the guard mutates, under one lock. The reject/evict
/// counters used to live in a second mutex; folding them in here makes
/// [`FloodGuard::stats`] a coherent snapshot (counters can never disagree
/// with the map contents they describe) and drops a lock acquisition from
/// the rejection path.
struct FloodState {
    buckets: HashMap<String, Bucket>,
    rejected: u64,
    evicted: u64,
}

/// A coherent point-in-time view of the guard: one lock acquisition
/// covers all three numbers, so `tracked` counts exactly the buckets the
/// counters describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodStats {
    /// Identities currently tracked.
    pub tracked: usize,
    /// Requests rejected so far.
    pub rejected: u64,
    /// Buckets evicted to keep the map bounded.
    pub evicted: u64,
}

/// Token-bucket flood guard keyed by identity string.
pub struct FloodGuard {
    state: Mutex<FloodState>,
    capacity: f64,
    refill_per_hour: f64,
    max_tracked: usize,
}

impl FloodGuard {
    /// A guard allowing bursts of `capacity` and `refill_per_hour`
    /// sustained requests per hour per identity, tracking at most
    /// [`DEFAULT_MAX_TRACKED`] identities.
    pub fn new(capacity: u32, refill_per_hour: u32) -> Self {
        FloodGuard::with_limits(capacity, refill_per_hour, DEFAULT_MAX_TRACKED)
    }

    /// A guard with an explicit bound on tracked identities (clamped to at
    /// least one).
    pub fn with_limits(capacity: u32, refill_per_hour: u32, max_tracked: usize) -> Self {
        FloodGuard {
            state: Mutex::new(FloodState { buckets: HashMap::new(), rejected: 0, evicted: 0 }),
            capacity: f64::from(capacity.max(1)),
            refill_per_hour: f64::from(refill_per_hour.max(1)),
            max_tracked: max_tracked.max(1),
        }
    }

    /// Try to spend one token for `identity` at `now`. Returns `false`
    /// when the identity is throttled.
    pub fn allow(&self, identity: &str, now: Timestamp) -> bool {
        let mut state = self.state.lock();
        if state.buckets.len() >= self.max_tracked && !state.buckets.contains_key(identity) {
            let before = state.buckets.len();
            self.evict(&mut state.buckets, now);
            state.evicted += (before - state.buckets.len()) as u64;
        }
        let capacity = self.capacity;
        let bucket = state
            .buckets
            .entry(identity.to_string())
            .or_insert(Bucket { tokens: capacity, last_refill: now });

        // Refill proportionally to elapsed time. `since` saturates at 0
        // when the clock stepped backwards, and `last_refill` must never
        // move backwards either: rewinding it would let the post-recovery
        // clock mint the same interval's tokens a second time.
        let elapsed_hours = now.since(bucket.last_refill) as f64 / 3_600.0;
        bucket.tokens = (bucket.tokens + elapsed_hours * self.refill_per_hour).min(self.capacity);
        if now > bucket.last_refill {
            bucket.last_refill = now;
        }

        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            state.rejected += 1;
            false
        }
    }

    /// Drop buckets that carry no information, then — if the map is still
    /// saturated — the least-recently-seen half.
    fn evict(&self, buckets: &mut HashMap<String, Bucket>, now: Timestamp) {
        let capacity = self.capacity;
        let refill = self.refill_per_hour;
        // Pass 1: a bucket idle long enough to have refilled completely is
        // indistinguishable from an absent one.
        buckets.retain(|_, b| {
            let refilled = b.tokens + (now.since(b.last_refill) as f64 / 3_600.0) * refill;
            refilled < capacity
        });
        if buckets.len() < self.max_tracked {
            return;
        }
        // Pass 2: every bucket is live; shed down to half capacity.
        // Non-throttled buckets go before throttled ones (a throttled
        // bucket is the guard's whole point — evicting it would hand the
        // flooder a fresh burst), least-recently-seen first within each
        // class. The key tie-break keeps the order deterministic.
        let keep = self.max_tracked / 2;
        let mut order: Vec<(bool, u64, String)> = buckets
            .iter()
            .map(|(k, b)| {
                let refilled = b.tokens + (now.since(b.last_refill) as f64 / 3_600.0) * refill;
                (refilled < 1.0, b.last_refill.0, k.clone())
            })
            .collect();
        order.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)).then_with(|| a.2.cmp(&b.2))
        });
        let evict_n = order.len().saturating_sub(keep);
        for (_, _, key) in order.into_iter().take(evict_n) {
            buckets.remove(&key);
        }
    }

    /// Coherent snapshot of tracked/rejected/evicted (one lock
    /// acquisition; the numbers can never tear against each other).
    pub fn stats(&self) -> FloodStats {
        let state = self.state.lock();
        FloodStats {
            tracked: state.buckets.len(),
            rejected: state.rejected,
            evicted: state.evicted,
        }
    }

    /// Requests rejected so far (experiment D3's throttling measure).
    pub fn rejected_count(&self) -> u64 {
        self.state.lock().rejected
    }

    /// Identities currently tracked.
    pub fn tracked_identities(&self) -> usize {
        self.state.lock().buckets.len()
    }

    /// The bound on tracked identities.
    pub fn max_tracked(&self) -> usize {
        self.max_tracked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_up_to_capacity_then_throttled() {
        let guard = FloodGuard::new(5, 60);
        for i in 0..5 {
            assert!(guard.allow("attacker", Timestamp(0)), "request {i} within burst");
        }
        assert!(!guard.allow("attacker", Timestamp(0)));
        assert_eq!(guard.rejected_count(), 1);
    }

    #[test]
    fn refill_restores_tokens_over_time() {
        let guard = FloodGuard::new(2, 60); // one token per minute
        assert!(guard.allow("u", Timestamp(0)));
        assert!(guard.allow("u", Timestamp(0)));
        assert!(!guard.allow("u", Timestamp(0)));
        // After 60 seconds one token has refilled.
        assert!(guard.allow("u", Timestamp(60)));
        assert!(!guard.allow("u", Timestamp(60)));
    }

    #[test]
    fn identities_are_independent() {
        let guard = FloodGuard::new(1, 1);
        assert!(guard.allow("a", Timestamp(0)));
        assert!(!guard.allow("a", Timestamp(0)));
        assert!(guard.allow("b", Timestamp(0)), "b has its own bucket");
        assert_eq!(guard.tracked_identities(), 2);
    }

    #[test]
    fn refill_never_exceeds_capacity() {
        let guard = FloodGuard::new(3, 3600);
        assert!(guard.allow("u", Timestamp(0)));
        // A year later the bucket is full but not overfull.
        let later = Timestamp(365 * 86_400);
        for _ in 0..3 {
            assert!(guard.allow("u", later));
        }
        assert!(!guard.allow("u", later));
    }

    #[test]
    fn zero_config_is_clamped_to_minimum() {
        let guard = FloodGuard::new(0, 0);
        assert!(guard.allow("u", Timestamp(0)), "capacity clamps to 1");
        assert!(!guard.allow("u", Timestamp(0)));
    }

    #[test]
    fn identity_churn_cannot_grow_the_map_without_bound() {
        // An attacker cycling through unique identities at one instant —
        // no bucket is ever stale, so the LRU half-shed must bound memory.
        let guard = FloodGuard::with_limits(4, 1, 256);
        for i in 0..10_000 {
            guard.allow(&format!("churn-{i}"), Timestamp(0));
        }
        assert!(
            guard.tracked_identities() <= 256,
            "map grew to {} despite the bound",
            guard.tracked_identities()
        );
    }

    #[test]
    fn stale_refilled_buckets_are_evicted_first() {
        // Capacity 4, refill 3600/hour = 1 token/second: a bucket idle for
        // 10 s is fully refilled and therefore evictable.
        let guard = FloodGuard::with_limits(4, 3_600, 8);
        for i in 0..8 {
            assert!(guard.allow(&format!("old-{i}"), Timestamp(i)));
        }
        assert_eq!(guard.tracked_identities(), 8);
        // Much later, a new identity arrives: the stale buckets are shed,
        // not the map blown past its bound.
        assert!(guard.allow("fresh", Timestamp(1_000)));
        assert_eq!(guard.tracked_identities(), 1, "all idle buckets evicted");
    }

    #[test]
    fn backward_clock_step_mints_no_free_tokens() {
        // Regression: `allow` used to set `last_refill = now`
        // unconditionally. With a 1 token/second refill, an identity seen
        // at t=1000 whose clock then steps back to t=0 would rewind
        // `last_refill` to 0 — and when the clock recovered to t=1000,
        // the same 1000 seconds would refill the bucket a second time.
        let guard = FloodGuard::new(2, 3_600); // 1 token/second
        assert!(guard.allow("u", Timestamp(1_000)));
        assert!(guard.allow("u", Timestamp(1_000)));
        assert!(!guard.allow("u", Timestamp(1_000)), "bucket exhausted");
        // Clock steps backwards: no refill (since() saturates), and the
        // rewound `now` must not be recorded.
        assert!(!guard.allow("u", Timestamp(0)), "no tokens minted at rewound time");
        // Clock recovers to exactly where it was: still no elapsed time,
        // so still throttled (pre-fix this refilled 1000 seconds' worth).
        assert!(!guard.allow("u", Timestamp(1_000)), "recovery must not replay the interval");
        // Real progress past the high-water mark refills normally.
        assert!(guard.allow("u", Timestamp(1_002)));
    }

    #[test]
    fn stats_snapshot_is_coherent() {
        let guard = FloodGuard::with_limits(1, 1, 4);
        assert!(guard.allow("a", Timestamp(0)));
        assert!(!guard.allow("a", Timestamp(0)));
        assert!(!guard.allow("a", Timestamp(0)));
        // Saturate the map with one-shot identities to force an eviction.
        for i in 0..8 {
            guard.allow(&format!("churn-{i}"), Timestamp(0));
        }
        let stats = guard.stats();
        assert_eq!(stats.rejected, guard.rejected_count());
        assert_eq!(stats.tracked, guard.tracked_identities());
        assert!(stats.tracked <= 4);
        assert!(stats.evicted > 0, "the bounded map must have shed buckets");
    }

    #[test]
    fn actively_throttled_identity_survives_churn() {
        // Refill 1/hour, capacity 2: once exhausted, the attacker stays
        // throttled for the whole (simulated) test window.
        let guard = FloodGuard::with_limits(2, 1, 64);
        assert!(guard.allow("attacker", Timestamp(0)));
        assert!(guard.allow("attacker", Timestamp(0)));
        assert!(!guard.allow("attacker", Timestamp(0)));
        // Churn thousands of one-shot identities while the attacker keeps
        // retrying; its bucket must never be evicted (which would hand it
        // a fresh burst).
        for i in 0..2_000u64 {
            let now = Timestamp(i / 10); // slow clock: refill stays < 1 token
            guard.allow(&format!("bystander-{i}"), now);
            assert!(!guard.allow("attacker", now), "attacker got un-throttled at churn step {i}");
        }
        assert!(guard.tracked_identities() <= 64);
    }
}
