//! Bearer-token sessions.
//!
//! Login exchanges credentials for an opaque 32-hex-char token; subsequent
//! requests present the token. Tokens expire after a TTL measured on the
//! server clock. The token table is in memory only — deliberately: §2.2's
//! privacy analysis assumes the persistent database holds nothing that
//! links live activity to accounts beyond the minimal user record.

use std::collections::HashMap;

use parking_lot::Mutex;
use rand::RngCore;

use softrep_core::clock::Timestamp;
use softrep_crypto::hex;

struct SessionEntry {
    username: String,
    expires_at: Timestamp,
}

/// In-memory session table.
pub struct SessionManager {
    sessions: Mutex<HashMap<String, SessionEntry>>,
    ttl_secs: u64,
}

impl SessionManager {
    /// Sessions valid for `ttl_secs` after issuance.
    pub fn new(ttl_secs: u64) -> Self {
        SessionManager { sessions: Mutex::new(HashMap::new()), ttl_secs }
    }

    /// Issue a fresh token for `username`.
    pub fn create(&self, username: &str, now: Timestamp, rng: &mut impl RngCore) -> String {
        let mut bytes = [0u8; 16];
        rng.fill_bytes(&mut bytes);
        let token = hex::encode(&bytes);
        self.sessions.lock().insert(
            token.clone(),
            SessionEntry {
                username: username.to_string(),
                expires_at: now.plus_secs(self.ttl_secs),
            },
        );
        token
    }

    /// Resolve a token to its username, if valid at `now`. Expired tokens
    /// are removed on the way out.
    pub fn resolve(&self, token: &str, now: Timestamp) -> Option<String> {
        let mut sessions = self.sessions.lock();
        match sessions.get(token) {
            Some(entry) if entry.expires_at > now => Some(entry.username.clone()),
            Some(_) => {
                sessions.remove(token);
                None
            }
            None => None,
        }
    }

    /// Invalidate a token (logout).
    pub fn revoke(&self, token: &str) {
        self.sessions.lock().remove(token);
    }

    /// Drop every expired session (periodic housekeeping).
    pub fn prune(&self, now: Timestamp) -> usize {
        let mut sessions = self.sessions.lock();
        let before = sessions.len();
        sessions.retain(|_, entry| entry.expires_at > now);
        before - sessions.len()
    }

    /// Live session count (may include not-yet-pruned expired entries).
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn create_resolve_revoke_cycle() {
        let mgr = SessionManager::new(100);
        let token = mgr.create("alice", Timestamp(0), &mut rng());
        assert_eq!(mgr.resolve(&token, Timestamp(50)).as_deref(), Some("alice"));
        mgr.revoke(&token);
        assert_eq!(mgr.resolve(&token, Timestamp(50)), None);
    }

    #[test]
    fn tokens_expire() {
        let mgr = SessionManager::new(100);
        let token = mgr.create("alice", Timestamp(0), &mut rng());
        assert!(mgr.resolve(&token, Timestamp(99)).is_some());
        assert!(mgr.resolve(&token, Timestamp(100)).is_none());
        // The expired entry was dropped eagerly.
        assert!(mgr.is_empty());
    }

    #[test]
    fn unknown_tokens_resolve_to_none() {
        let mgr = SessionManager::new(100);
        assert!(mgr.resolve("deadbeef", Timestamp(0)).is_none());
    }

    #[test]
    fn distinct_logins_get_distinct_tokens() {
        let mgr = SessionManager::new(100);
        let mut r = rng();
        let t1 = mgr.create("alice", Timestamp(0), &mut r);
        let t2 = mgr.create("alice", Timestamp(0), &mut r);
        assert_ne!(t1, t2);
        assert_eq!(mgr.len(), 2);
    }

    #[test]
    fn prune_removes_only_expired() {
        let mgr = SessionManager::new(100);
        let mut r = rng();
        let _old = mgr.create("old", Timestamp(0), &mut r);
        let fresh = mgr.create("fresh", Timestamp(80), &mut r);
        assert_eq!(mgr.prune(Timestamp(150)), 1);
        assert_eq!(mgr.resolve(&fresh, Timestamp(150)).as_deref(), Some("fresh"));
    }
}
