//! A bounded worker pool for the TCP front end.
//!
//! The seed transport spawned one unbounded thread per accepted
//! connection, so a connection flood translated directly into thread
//! exhaustion — the availability failure §2.1 warns about. The pool caps
//! concurrent workers: admission is an explicit [`WorkerPool::try_acquire`]
//! that either returns a [`WorkerPermit`] or tells the caller to shed load
//! *before* any thread is created. Every spawned worker's [`JoinHandle`]
//! is retained so shutdown can drain and join them instead of leaking.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

/// Why the pool refused to run a job.
#[derive(Debug)]
pub enum PoolRejected {
    /// Every worker slot is occupied; shed load.
    Full,
    /// The OS refused to create a thread.
    Spawn(std::io::Error),
}

impl std::fmt::Display for PoolRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolRejected::Full => f.write_str("worker pool is at capacity"),
            PoolRejected::Spawn(e) => write!(f, "could not spawn worker thread: {e}"),
        }
    }
}

impl std::error::Error for PoolRejected {}

#[derive(Default)]
struct PoolState {
    active: usize,
    handles: Vec<JoinHandle<()>>,
}

/// A bounded pool of worker threads.
pub struct WorkerPool {
    max_workers: usize,
    state: Arc<Mutex<PoolState>>,
}

/// An occupied worker slot. Dropping the permit releases the slot, so a
/// worker that panics still frees capacity.
pub struct WorkerPermit {
    state: Arc<Mutex<PoolState>>,
}

impl Drop for WorkerPermit {
    fn drop(&mut self) {
        let mut st = self.state.lock();
        st.active = st.active.saturating_sub(1);
    }
}

impl WorkerPool {
    /// A pool running at most `max_workers` jobs concurrently (clamped to
    /// at least one).
    pub fn new(max_workers: usize) -> Self {
        WorkerPool { max_workers: max_workers.max(1), state: Arc::default() }
    }

    /// The configured concurrency bound.
    pub fn max_workers(&self) -> usize {
        self.max_workers
    }

    /// Workers currently holding a slot.
    pub fn active(&self) -> usize {
        self.state.lock().active
    }

    /// Claim a worker slot, or `None` when the pool is saturated.
    pub fn try_acquire(&self) -> Option<WorkerPermit> {
        let mut st = self.state.lock();
        if st.active >= self.max_workers {
            return None;
        }
        st.active += 1;
        Some(WorkerPermit { state: Arc::clone(&self.state) })
    }

    /// Run `f` on a new worker thread holding `permit`. The permit is
    /// released when `f` returns (or panics); the join handle is retained
    /// for [`WorkerPool::join_deadline`].
    pub fn spawn(
        &self,
        permit: WorkerPermit,
        f: impl FnOnce() + Send + 'static,
    ) -> Result<(), PoolRejected> {
        let spawned =
            std::thread::Builder::new().name("softrep-tcp-worker".to_string()).spawn(move || {
                let _slot = permit;
                f();
            });
        match spawned {
            Ok(handle) => {
                let mut st = self.state.lock();
                st.handles.push(handle);
                // Opportunistically shed finished handles so the vec stays
                // bounded by the concurrency cap plus recent churn.
                let finished = take_finished(&mut st);
                drop(st);
                join_all(finished);
                Ok(())
            }
            Err(e) => Err(PoolRejected::Spawn(e)),
        }
    }

    /// Acquire-and-spawn in one step.
    pub fn try_spawn(&self, f: impl FnOnce() + Send + 'static) -> Result<(), PoolRejected> {
        let permit = self.try_acquire().ok_or(PoolRejected::Full)?;
        self.spawn(permit, f)
    }

    /// Join every worker, waiting up to `deadline` for stragglers. Returns
    /// `true` when all workers finished and were joined; `false` when the
    /// deadline passed with workers still running (their handles are kept,
    /// so a later call can finish the join).
    pub fn join_deadline(&self, deadline: Duration) -> bool {
        let step = Duration::from_millis(2);
        let mut waited = Duration::ZERO;
        loop {
            let (finished, pending) = {
                let mut st = self.state.lock();
                let finished = take_finished(&mut st);
                (finished, st.handles.len())
            };
            join_all(finished);
            if pending == 0 {
                return true;
            }
            if waited >= deadline {
                return false;
            }
            let nap = step.min(deadline - waited);
            std::thread::sleep(nap);
            waited += nap;
        }
    }
}

/// A bounded pool of *persistent* worker threads consuming typed jobs
/// from a queue — the execution half of the reactor front end.
///
/// [`WorkerPool`] above is admission control for thread-per-connection
/// serving: one thread per accepted connection, created on demand. The
/// reactor inverts that: connections are cheap state machines on one
/// event loop, and only *handler execution* needs threads. Spawning one
/// per request would cost more than the handler itself (~230 ns for a
/// cached query), so `DispatchPool` keeps `workers` threads alive for the
/// server's lifetime and feeds them through a queue. The queue is
/// unbounded here but bounded in practice: the reactor dispatches at most
/// one in-flight request per connection, so queue depth ≤ open
/// connections ≤ `max_open_connections`.
///
/// Jobs are a concrete type `T`, not boxed closures, so steady-state
/// submission allocates nothing (the `VecDeque` ring amortizes).
pub struct DispatchPool<T: Send + 'static> {
    inner: Arc<DispatchShared<T>>,
    workers: Vec<JoinHandle<()>>,
}

struct DispatchShared<T> {
    queue: std::sync::Mutex<DispatchQueue<T>>,
    available: std::sync::Condvar,
}

struct DispatchQueue<T> {
    jobs: std::collections::VecDeque<T>,
    shutdown: bool,
}

/// Lock a std mutex without the poison panic: a worker that panicked has
/// already been isolated by `catch_unwind`, and counters/queues stay
/// usable either way.
fn lock_queue<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T: Send + 'static> DispatchPool<T> {
    /// Start `workers` named threads (clamped to at least one) running
    /// `run` on every submitted job.
    pub fn new(
        workers: usize,
        name: &str,
        run: impl Fn(T) + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        let inner = Arc::new(DispatchShared {
            queue: std::sync::Mutex::new(DispatchQueue {
                jobs: std::collections::VecDeque::new(),
                shutdown: false,
            }),
            available: std::sync::Condvar::new(),
        });
        let run: Arc<dyn Fn(T) + Send + Sync> = Arc::new(run);
        let mut handles = Vec::new();
        for i in 0..workers.max(1) {
            let shared = Arc::clone(&inner);
            let run = Arc::clone(&run);
            let handle =
                std::thread::Builder::new().name(format!("{name}-{i}")).spawn(move || loop {
                    let job = {
                        let mut q = lock_queue(&shared.queue);
                        loop {
                            if let Some(job) = q.jobs.pop_front() {
                                break Some(job);
                            }
                            if q.shutdown {
                                break None;
                            }
                            q = match shared.available.wait(q) {
                                Ok(guard) => guard,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                        }
                    };
                    match job {
                        // A panicking handler loses its job, never the
                        // worker: capacity survives the panic.
                        Some(job) => {
                            let _ =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(job)));
                        }
                        None => return,
                    }
                })?;
            handles.push(handle);
        }
        Ok(DispatchPool { inner, workers: handles })
    }

    /// Queue a job. Returns `false` (dropping the job) once shutdown has
    /// begun.
    pub fn submit(&self, job: T) -> bool {
        {
            let mut q = lock_queue(&self.inner.queue);
            if q.shutdown {
                return false;
            }
            q.jobs.push_back(job);
        }
        self.inner.available.notify_one();
        true
    }

    /// Jobs waiting for a worker (excludes jobs currently executing).
    pub fn queued(&self) -> usize {
        lock_queue(&self.inner.queue).jobs.len()
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stop accepting jobs, let the workers drain what is already queued,
    /// and join them.
    pub fn shutdown(mut self) {
        {
            let mut q = lock_queue(&self.inner.queue);
            q.shutdown = true;
        }
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Pull the finished handles out of the state (joined outside the lock).
fn take_finished(st: &mut PoolState) -> Vec<JoinHandle<()>> {
    let mut finished = Vec::new();
    let mut pending = Vec::new();
    for handle in st.handles.drain(..) {
        if handle.is_finished() {
            finished.push(handle);
        } else {
            pending.push(handle);
        }
    }
    st.handles = pending;
    finished
}

fn join_all(handles: Vec<JoinHandle<()>>) {
    for handle in handles {
        // A worker that panicked already released its permit via Drop;
        // there is nothing further to propagate.
        let _ = handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn capacity_is_enforced_and_slots_are_reusable() {
        let pool = WorkerPool::new(2);
        let a = pool.try_acquire().expect("slot 1");
        let _b = pool.try_acquire().expect("slot 2");
        assert!(pool.try_acquire().is_none(), "third acquire must fail");
        assert_eq!(pool.active(), 2);
        drop(a);
        assert_eq!(pool.active(), 1);
        assert!(pool.try_acquire().is_some(), "released slot is reusable");
    }

    #[test]
    fn try_spawn_runs_jobs_and_releases_slots() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        pool.try_spawn(move || tx.send(42u32).expect("send")).expect("spawn");
        assert_eq!(rx.recv().expect("worker ran"), 42);
        assert!(pool.join_deadline(Duration::from_secs(5)), "worker joins");
        assert_eq!(pool.active(), 0);
    }

    #[test]
    fn saturated_pool_rejects_with_full() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel();
        pool.try_spawn(move || {
            started_tx.send(()).expect("signal start");
            let _ = rx.recv(); // hold the slot until the test releases it
        })
        .expect("first spawn");
        started_rx.recv().expect("worker started");
        assert!(matches!(pool.try_spawn(|| {}), Err(PoolRejected::Full)));
        drop(tx);
        assert!(pool.join_deadline(Duration::from_secs(5)));
    }

    #[test]
    fn join_deadline_gives_up_on_stragglers_then_finishes_later() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel::<()>();
        pool.try_spawn(move || {
            let _ = rx.recv();
        })
        .expect("spawn");
        assert!(!pool.join_deadline(Duration::from_millis(20)), "worker still blocked");
        drop(tx); // unblock
        assert!(pool.join_deadline(Duration::from_secs(5)), "worker joins after unblock");
        assert_eq!(pool.active(), 0);
    }

    #[test]
    fn permit_released_even_when_worker_panics() {
        let pool = WorkerPool::new(1);
        pool.try_spawn(|| panic!("worker exploded")).expect("spawn");
        assert!(pool.join_deadline(Duration::from_secs(5)));
        assert_eq!(pool.active(), 0, "panicking worker must release its slot");
        assert!(pool.try_acquire().is_some());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.max_workers(), 1);
        assert!(pool.try_acquire().is_some());
    }

    #[test]
    fn dispatch_pool_runs_jobs_on_persistent_workers() {
        let (tx, rx) = mpsc::channel();
        let pool = DispatchPool::new(2, "test-dispatch", move |n: u32| {
            tx.send(n * 2).expect("send");
        })
        .expect("spawn");
        assert_eq!(pool.workers(), 2);
        for n in 0..20 {
            assert!(pool.submit(n));
        }
        let mut out: Vec<u32> = (0..20).map(|_| rx.recv().expect("job ran")).collect();
        out.sort_unstable();
        assert_eq!(out, (0..20).map(|n| n * 2).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn dispatch_pool_shutdown_drains_queued_jobs_then_rejects() {
        let (tx, rx) = mpsc::channel();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let pool = DispatchPool::new(1, "test-drain", move |n: u32| {
            let _ = gate_rx.lock().recv();
            tx.send(n).expect("send");
        })
        .expect("spawn");
        // One executing (blocked on the gate), two queued behind it.
        for n in 0..3 {
            assert!(pool.submit(n));
            gate_tx.send(()).expect("open gate"); // one open per job
        }
        pool.shutdown();
        // All three queued jobs ran before the workers exited.
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn dispatch_pool_survives_a_panicking_job() {
        let (tx, rx) = mpsc::channel();
        let pool = DispatchPool::new(1, "test-panic", move |n: u32| {
            if n == 0 {
                panic!("job exploded");
            }
            tx.send(n).expect("send");
        })
        .expect("spawn");
        assert!(pool.submit(0));
        assert!(pool.submit(7));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).expect("worker survived"), 7);
        pool.shutdown();
    }

    #[test]
    fn dispatch_pool_zero_workers_clamps_to_one() {
        let pool = DispatchPool::new(0, "test-clamp", |_: ()| {}).expect("spawn");
        assert_eq!(pool.workers(), 1);
        pool.shutdown();
    }
}
