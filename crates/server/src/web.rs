//! The web interface of §3: "The system will also offer a web based
//! interface, which gives the users more possibilities in searching the
//! information stored in the database. This will be used as an extension
//! to the GUI client, where users e.g. can read more information about
//! some particular software program or vendor along with all the comments
//! that have been submitted."
//!
//! A deliberately small HTTP/1.1 server (GET only, `Connection: close`)
//! hand-rolled on `std::net`, serving:
//!
//! * `/` — deployment statistics + best/worst lists,
//! * `/software/<hex id>` — the full detail page (metadata, rating,
//!   behaviours, verified evidence, comments),
//! * `/vendor/<name>` — the derived vendor view,
//! * `/search?q=<query>` — substring search over names and vendors,
//! * `/metrics` — Prometheus-style text exposition of every process
//!   metric (see `crates/obs` and DESIGN.md §12).
//!
//! Everything user-controlled is HTML-escaped; unknown paths 404; bad
//! requests 400. No cookies, no forms, no state: the web UI is read-only
//! by design — writes go through the authenticated XML protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::handler::ReputationServer;

/// The first `max_chars` characters of `text`, on a char boundary. Byte
/// slicing (`&text[..12]`) panics when byte 12 falls inside a multi-byte
/// UTF-8 code point — use this everywhere an id or label is shortened
/// for display.
pub fn truncate_chars(text: &str, max_chars: usize) -> &str {
    match text.char_indices().nth(max_chars) {
        Some((boundary, _)) => text.get(..boundary).unwrap_or(text),
        None => text,
    }
}

/// Escape text for HTML contexts.
pub fn html_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// Decode `%xx` and `+` in a query value. Invalid escapes pass through
/// literally (lenient, like most servers).
pub fn url_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

const CONTENT_TYPE_HTML: &str = "text/html; charset=utf-8";
/// Prometheus text exposition format version 0.0.4.
const CONTENT_TYPE_METRICS: &str = "text/plain; version=0.0.4; charset=utf-8";

/// An HTTP response about to be written.
struct HttpResponse {
    status: &'static str,
    content_type: &'static str,
    body: String,
}

impl HttpResponse {
    fn ok(body: String) -> Self {
        HttpResponse { status: "200 OK", content_type: CONTENT_TYPE_HTML, body }
    }

    fn metrics(body: String) -> Self {
        HttpResponse { status: "200 OK", content_type: CONTENT_TYPE_METRICS, body }
    }

    fn not_found(what: &str) -> Self {
        HttpResponse {
            status: "404 Not Found",
            content_type: CONTENT_TYPE_HTML,
            body: page("Not found", &format!("<p>No such {}.</p>", html_escape(what))),
        }
    }

    fn bad_request(msg: &str) -> Self {
        HttpResponse {
            status: "400 Bad Request",
            content_type: CONTENT_TYPE_HTML,
            body: page("Bad request", &format!("<p>{}</p>", html_escape(msg))),
        }
    }
}

fn page(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>{title} — softwareputation</title></head>\
         <body><h1>{title}</h1>\
         <p><a href=\"/\">home</a> · <form style=\"display:inline\" action=\"/search\">\
         <input name=\"q\" placeholder=\"search software or vendor\">\
         <button>search</button></form></p>\
         {body}\
         <hr><p><small>softwareputation — collaborative software reputation \
         (Boldt et&nbsp;al., SDM 2007)</small></p></body></html>",
        title = html_escape(title),
        body = body,
    )
}

/// Render the routed response for `path_and_query`.
pub fn render(server: &ReputationServer, path_and_query: &str) -> (String, String) {
    let resp = respond(server, path_and_query);
    (resp.status.to_string(), resp.body)
}

/// Route `path_and_query` to the full response, content type included.
fn respond(server: &ReputationServer, path_and_query: &str) -> HttpResponse {
    let (path, query) = match path_and_query.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (path_and_query, None),
    };
    route(server, path, query)
}

fn route(server: &ReputationServer, path: &str, query: Option<&str>) -> HttpResponse {
    match path {
        "/" => front_page(server),
        "/metrics" => HttpResponse::metrics(server.metrics_text()),
        "/search" => {
            let q = query
                .and_then(|q| q.split('&').find_map(|pair| pair.strip_prefix("q=").map(url_decode)))
                .unwrap_or_default();
            search_page(server, &q)
        }
        _ => {
            if let Some(id) = path.strip_prefix("/software/") {
                software_page(server, id)
            } else if let Some(vendor) = path.strip_prefix("/vendor/") {
                vendor_page(server, &url_decode(vendor))
            } else {
                HttpResponse::not_found("page")
            }
        }
    }
}

fn front_page(server: &ReputationServer) -> HttpResponse {
    let stats = server.db().deployment_stats();
    let mut body = format!(
        "<p>{} members · {} known programs · {} votes · {} rated</p>",
        stats.users, stats.software, stats.votes, stats.rated_software
    );
    let engine = server.db().store_stats();
    body.push_str(&format!(
        "<p class=\"engine\">engine: {} batches · {} group commits \
         ({} fsyncs saved, deepest group {}) · {} WAL rotations</p>",
        engine.batches_applied,
        engine.group_commits,
        engine.fsyncs_saved,
        engine.max_group_depth,
        engine.wal_rotations,
    ));
    let mut list = |title: &str, rows: Vec<softrep_core::model::RatingRecord>| {
        body.push_str(&format!("<h2>{title}</h2><ol>"));
        for r in rows {
            body.push_str(&format!(
                "<li><a href=\"/software/{id}\">{short}…</a> — {rating:.1}/10 ({votes} votes)</li>",
                id = html_escape(&r.software_id),
                short = html_escape(truncate_chars(&r.software_id, 12)),
                rating = r.rating,
                votes = r.vote_count,
            ));
        }
        body.push_str("</ol>");
    };
    list("Best rated", server.db().top_rated(10).unwrap_or_default());
    list("Warning list (worst rated)", server.db().bottom_rated(10).unwrap_or_default());
    HttpResponse::ok(page("softwareputation", &body))
}

fn search_page(server: &ReputationServer, q: &str) -> HttpResponse {
    if q.trim().is_empty() {
        return HttpResponse::bad_request("empty search query");
    }
    let hits = server.db().search_software(q, 50).unwrap_or_default();
    let mut body = format!("<p>{} result(s) for <b>{}</b></p><ul>", hits.len(), html_escape(q));
    for rec in hits {
        body.push_str(&format!(
            "<li><a href=\"/software/{id}\">{name}</a>{vendor}</li>",
            id = html_escape(&rec.software_id),
            name = html_escape(&rec.file_name),
            vendor = rec
                .company
                .as_deref()
                .map(|c| format!(" — <a href=\"/vendor/{0}\">{0}</a>", html_escape(c)))
                .unwrap_or_default(),
        ));
    }
    body.push_str("</ul>");
    HttpResponse::ok(page("Search", &body))
}

fn software_page(server: &ReputationServer, id: &str) -> HttpResponse {
    let Ok(Some(report)) = server.db().software_report(id) else {
        return HttpResponse::not_found("software");
    };
    let mut body = String::new();
    body.push_str(&format!(
        "<p><b>{}</b> ({} bytes){}{}</p>",
        html_escape(&report.software.file_name),
        report.software.file_size,
        report
            .software
            .company
            .as_deref()
            .map(|c| format!(" — vendor <a href=\"/vendor/{0}\">{0}</a>", html_escape(c)))
            .unwrap_or_else(|| " — <i>no vendor metadata (PIS signal, §3.3)</i>".to_string()),
        report
            .software
            .version
            .as_deref()
            .map(|v| format!(", version {}", html_escape(v)))
            .unwrap_or_default(),
    ));
    match &report.rating {
        Some(r) => {
            body.push_str(&format!(
                "<p>rating <b>{:.1}/10</b> from {} votes (trust mass {:.0})</p>",
                r.rating, r.vote_count, r.trust_mass
            ));
            if !r.behaviours.is_empty() {
                body.push_str("<h2>Reported behaviours</h2><ul>");
                for (b, n) in &r.behaviours {
                    body.push_str(&format!("<li>{} ({n} reports)</li>", html_escape(b)));
                }
                body.push_str("</ul>");
            }
        }
        None => body.push_str("<p><i>not yet rated</i></p>"),
    }
    if let Some(evidence) = &report.evidence {
        body.push_str(&format!(
            "<h2>Verified behaviours</h2><p>by analyzer <b>{}</b>:</p><ul>",
            html_escape(&evidence.analyzer)
        ));
        for b in &evidence.behaviours {
            body.push_str(&format!("<li>{}</li>", html_escape(b)));
        }
        body.push_str("</ul>");
    }
    if !report.comments.is_empty() {
        body.push_str("<h2>Comments</h2><ul>");
        for pc in &report.comments {
            // Authors are rendered as pseudonymized tags, never as the
            // raw identity a commenter registered with (§2.2).
            let author_tag = server.db().pseudonym_tag("author", &pc.comment.author);
            body.push_str(&format!(
                "<li>\u{201c}{}\u{201d} — {} ({:+} remarks)</li>",
                html_escape(&pc.comment.text),
                html_escape(&author_tag),
                pc.remark_score,
            ));
        }
        body.push_str("</ul>");
    }
    HttpResponse::ok(page(&report.software.file_name.clone(), &body))
}

fn vendor_page(server: &ReputationServer, vendor: &str) -> HttpResponse {
    let Ok(report) = server.db().vendor_report(vendor) else {
        return HttpResponse::not_found("vendor");
    };
    if report.software_count == 0 {
        return HttpResponse::not_found("vendor");
    }
    let body = format!(
        "<p><b>{}</b>: {} software title(s), derived rating {}</p>",
        html_escape(&report.vendor),
        report.software_count,
        report.rating.map_or("—".to_string(), |r| format!("{r:.1}/10")),
    );
    HttpResponse::ok(page(&format!("Vendor: {vendor}"), &body))
}

/// A running web front end.
pub struct WebServer {
    local_addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WebServer {
    /// Bind `addr` and serve the read-only web UI over `server`.
    pub fn spawn(server: Arc<ReputationServer>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            listener.set_nonblocking(true).expect("set_nonblocking");
            while !accept_shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let server = Arc::clone(&server);
                        std::thread::spawn(move || {
                            let _ = serve_connection(&server, stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(WebServer { local_addr, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop accepting connections.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WebServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(server: &ReputationServer, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line (we ignore them).
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");

    let resp = if method != "GET" {
        HttpResponse {
            status: "405 Method Not Allowed",
            content_type: CONTENT_TYPE_HTML,
            body: page("Method not allowed", "<p>GET only.</p>"),
        }
    } else {
        respond(server, target)
    };

    let mut out = stream;
    write!(
        out,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {len}\r\nConnection: close\r\n\r\n{body}",
        status = resp.status,
        content_type = resp.content_type,
        len = resp.body.len(),
        body = resp.body,
    )?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    use softrep_core::clock::SimClock;
    use softrep_core::db::ReputationDb;

    use crate::handler::ServerConfig;

    fn seeded_server() -> Arc<ReputationServer> {
        let clock = SimClock::new();
        let db = ReputationDb::in_memory("web");
        let server = Arc::new(ReputationServer::new(
            db,
            Arc::new(clock.clone()),
            ServerConfig { puzzle_difficulty: 0, ..ServerConfig::default() },
            1,
        ));
        // Seed: a member, two programs, votes, a comment, evidence.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let db = server.db();
        let token = db.register_user("webber", "pw", "w@x.example", clock.now(), &mut rng).unwrap();
        db.activate_user("webber", &token).unwrap();
        let good = "aa".repeat(20);
        let bad = "bb".repeat(20);
        db.register_software(
            &good,
            "GoodApp.exe",
            100,
            Some("Acme & Sons".into()),
            Some("1.0".into()),
            clock.now(),
        )
        .unwrap();
        db.register_software(&bad, "ad<ware>.exe", 100, None, None, clock.now()).unwrap();
        db.submit_vote("webber", &good, 9, vec![], clock.now()).unwrap();
        db.submit_vote("webber", &bad, 2, vec!["popup_ads".into()], clock.now()).unwrap();
        db.submit_comment("webber", &bad, "shows <b>ads</b> & tracks", clock.now()).unwrap();
        db.record_evidence(&bad, vec!["tracking".into()], "sandbox", clock.now()).unwrap();
        db.force_aggregation(clock.now()).unwrap();
        server
    }

    #[test]
    fn front_page_lists_stats_and_rankings() {
        let server = seeded_server();
        let (status, body) = render(&server, "/");
        assert_eq!(status, "200 OK");
        assert!(body.contains("1 members"));
        assert!(body.contains("2 known programs"));
        assert!(body.contains("Best rated"));
        assert!(body.contains("Warning list"));
        // Storage-engine commit telemetry is surfaced alongside the
        // deployment counters.
        assert!(body.contains("group commits"));
        assert!(body.contains("WAL rotations"));
    }

    #[test]
    fn software_page_renders_escaped_details() {
        let server = seeded_server();
        let bad = "bb".repeat(20);
        let (status, body) = render(&server, &format!("/software/{bad}"));
        assert_eq!(status, "200 OK");
        // File name and comment are escaped, never raw HTML.
        assert!(body.contains("ad&lt;ware&gt;.exe"));
        assert!(body.contains("shows &lt;b&gt;ads&lt;/b&gt; &amp; tracks"));
        assert!(!body.contains("<b>ads</b>"));
        assert!(body.contains("popup_ads"));
        assert!(body.contains("Verified behaviours"));
        assert!(body.contains("no vendor metadata"));
        // The commenter's registered identity never reaches the page;
        // only the pseudonymized author tag does.
        assert!(!body.contains("webber"), "raw author identity leaked into the page");
        assert!(body.contains("author-"), "pseudonymized author tag missing: {body}");
    }

    #[test]
    fn vendor_and_search_pages() {
        let server = seeded_server();
        let (status, body) = render(&server, "/vendor/Acme%20%26%20Sons");
        assert_eq!(status, "200 OK");
        assert!(body.contains("Acme &amp; Sons"));
        assert!(body.contains("1 software title"));

        let (status, body) = render(&server, "/search?q=goodapp");
        assert_eq!(status, "200 OK");
        assert!(body.contains("GoodApp.exe"));
        assert!(body.contains("1 result"));

        let (status, _) = render(&server, "/search?q=");
        assert_eq!(status, "400 Bad Request");
    }

    /// Regression: ids were shortened with a byte slice
    /// (`&id[..12.min(len)]`), which panics when byte 12 lands inside a
    /// multi-byte UTF-8 character. The char-boundary helper must never
    /// split a character, whatever the input.
    #[test]
    fn truncate_chars_never_splits_multibyte_ids() {
        // Byte index 12 falls inside '软' (bytes 11..14) — the old slice
        // would panic right here.
        let id = "abcdefghijk软件信誉";
        assert!(!id.is_char_boundary(12), "test input must straddle byte 12");
        assert_eq!(truncate_chars(id, 12), "abcdefghijk软");

        // Purely multi-byte input and exact-fit / short inputs.
        assert_eq!(truncate_chars("αβγδεζηθικλμνξ", 12), "αβγδεζηθικλμ");
        assert_eq!(truncate_chars("abcdef", 12), "abcdef");
        assert_eq!(truncate_chars("", 12), "");
        assert_eq!(truncate_chars("é", 0), "");
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let server = seeded_server();
        // Exercise the instrumented dispatch path once so request-level
        // series exist, then aggregate so lag is measured, not inferred.
        server.run_full_aggregation();
        let (status, body) = render(&server, "/metrics");
        assert_eq!(status, "200 OK");
        assert!(!body.contains('<'), "metrics exposition must not be HTML: {body}");
        for series in [
            "softrep_agg_full_run_us",
            "softrep_agg_lag_seconds",
            "softrep_agg_dirty_titles",
            "softrep_flood_rejected_total",
            "softrep_flood_evicted_total",
            "softrep_store_batches_applied_total",
            "softrep_server_requests_served_total",
            "softrep_slow_op_threshold_us",
        ] {
            assert!(body.contains(series), "missing series {series} in:\n{body}");
        }
        // Every non-comment line is `name value` with a numeric value.
        for line in body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let mut parts = line.split_whitespace();
            let (name, value) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            assert!(!name.is_empty(), "malformed line: {line}");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value in line: {line}");
        }
    }

    #[test]
    fn unknown_paths_and_ids_404() {
        let server = seeded_server();
        assert_eq!(render(&server, "/nope").0, "404 Not Found");
        assert_eq!(render(&server, &format!("/software/{}", "cc".repeat(20))).0, "404 Not Found");
        assert_eq!(render(&server, "/vendor/Nobody").0, "404 Not Found");
    }

    #[test]
    fn http_transport_end_to_end() {
        let server = seeded_server();
        let web = WebServer::spawn(Arc::clone(&server), "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(web.local_addr()).unwrap();
        write!(stream, "GET / HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("softwareputation"));
        assert!(response.contains("Content-Type: text/html"));

        // The metrics endpoint is plain text, not HTML.
        let mut stream = TcpStream::connect(web.local_addr()).unwrap();
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(response.contains("softrep_agg_lag_seconds"));

        // Non-GET methods are refused.
        let mut stream = TcpStream::connect(web.local_addr()).unwrap();
        write!(stream, "POST / HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        web.shutdown();
    }

    #[test]
    fn url_decode_handles_escapes_and_junk() {
        assert_eq!(url_decode("a+b%20c"), "a b c");
        assert_eq!(url_decode("%41%42"), "AB");
        assert_eq!(url_decode("100%"), "100%");
        assert_eq!(url_decode("%zz"), "%zz");
        assert_eq!(url_decode(""), "");
    }

    #[test]
    fn html_escape_covers_the_five() {
        assert_eq!(
            html_escape("<a href=\"x\">&'</a>"),
            "&lt;a href=&quot;x&quot;&gt;&amp;&#39;&lt;/a&gt;"
        );
    }
}
