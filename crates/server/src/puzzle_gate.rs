//! Registration puzzle issuance and redemption.
//!
//! The server hands out [`softrep_crypto::puzzle::Challenge`]s and accepts
//! each exactly once: a challenge must have been issued by *this* server
//! (attackers cannot self-issue easy puzzles) and is consumed on
//! redemption (solutions cannot be replayed across registrations). Both
//! properties are what make the puzzle an effective per-account cost for
//! the Sybil defence measured in experiment D3.

use std::collections::HashSet;

use parking_lot::Mutex;
use rand::RngCore;

use softrep_crypto::puzzle::{Challenge, Solution};

/// Tracks outstanding puzzle challenges.
pub struct PuzzleGate {
    difficulty: u8,
    outstanding: Mutex<HashSet<String>>,
    issued: Mutex<u64>,
}

/// Why a redemption failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PuzzleRejection {
    /// The challenge was never issued here, or was already used.
    UnknownChallenge,
    /// The solution does not satisfy the difficulty.
    WrongSolution,
}

impl PuzzleGate {
    /// Gate issuing puzzles at `difficulty` leading zero bits.
    pub fn new(difficulty: u8) -> Self {
        PuzzleGate { difficulty, outstanding: Mutex::new(HashSet::new()), issued: Mutex::new(0) }
    }

    /// The configured difficulty.
    pub fn difficulty(&self) -> u8 {
        self.difficulty
    }

    /// Issue a new challenge; returns its wire encoding.
    pub fn issue(&self, rng: &mut impl RngCore) -> String {
        let challenge = Challenge::issue(self.difficulty, rng);
        let encoded = challenge.encode();
        self.outstanding.lock().insert(encoded.clone());
        *self.issued.lock() += 1;
        encoded
    }

    /// Redeem a challenge + solution pair. Consumes the challenge on
    /// success; on failure the challenge remains outstanding only if it
    /// was valid but the solution was wrong (the client may retry).
    pub fn redeem(&self, encoded_challenge: &str, solution: u64) -> Result<(), PuzzleRejection> {
        let challenge =
            Challenge::decode(encoded_challenge).ok_or(PuzzleRejection::UnknownChallenge)?;
        // Reject encodings we never issued — including re-encodings at a
        // lower difficulty.
        {
            let outstanding = self.outstanding.lock();
            if !outstanding.contains(encoded_challenge) {
                return Err(PuzzleRejection::UnknownChallenge);
            }
        }
        if !challenge.verify(Solution { nonce: solution }) {
            return Err(PuzzleRejection::WrongSolution);
        }
        // Consumption must be atomic: whoever wins this `remove` redeemed
        // the challenge; a concurrent redeemer that passed the `contains`
        // check above loses here instead of double-spending the puzzle.
        if self.outstanding.lock().remove(encoded_challenge) {
            Ok(())
        } else {
            Err(PuzzleRejection::UnknownChallenge)
        }
    }

    /// Challenges issued so far.
    pub fn issued_count(&self) -> u64 {
        *self.issued.lock()
    }

    /// Challenges issued but not yet redeemed.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(8)
    }

    #[test]
    fn issue_solve_redeem_roundtrip() {
        let gate = PuzzleGate::new(4);
        let mut r = rng();
        let encoded = gate.issue(&mut r);
        let challenge = Challenge::decode(&encoded).unwrap();
        let (solution, _) = challenge.solve();
        assert_eq!(gate.redeem(&encoded, solution.nonce), Ok(()));
        assert_eq!(gate.outstanding_count(), 0);
        assert_eq!(gate.issued_count(), 1);
    }

    #[test]
    fn solutions_cannot_be_replayed() {
        let gate = PuzzleGate::new(4);
        let mut r = rng();
        let encoded = gate.issue(&mut r);
        let (solution, _) = Challenge::decode(&encoded).unwrap().solve();
        assert!(gate.redeem(&encoded, solution.nonce).is_ok());
        assert_eq!(gate.redeem(&encoded, solution.nonce), Err(PuzzleRejection::UnknownChallenge));
    }

    #[test]
    fn self_issued_easy_puzzles_are_rejected() {
        let gate = PuzzleGate::new(16);
        let mut r = rng();
        // Attacker invents a difficulty-0 challenge and "solves" it.
        let fake = Challenge::issue(0, &mut r);
        assert_eq!(gate.redeem(&fake.encode(), 0), Err(PuzzleRejection::UnknownChallenge));
        assert_eq!(gate.redeem("garbage", 0), Err(PuzzleRejection::UnknownChallenge));
    }

    #[test]
    fn wrong_solution_keeps_challenge_outstanding() {
        let gate = PuzzleGate::new(8);
        let mut r = rng();
        let encoded = gate.issue(&mut r);
        let (solution, _) = Challenge::decode(&encoded).unwrap().solve();
        // `solve` returns the smallest nonce; 0 may coincide with it, so
        // use a definitely-wrong value below it when possible.
        let wrong = if solution.nonce == 0 { u64::MAX } else { solution.nonce - 1 };
        // u64::MAX is overwhelmingly unlikely to solve difficulty 8 with a
        // fixed seed; assert the expected failure deterministically.
        assert_eq!(gate.redeem(&encoded, wrong), Err(PuzzleRejection::WrongSolution));
        assert_eq!(gate.outstanding_count(), 1);
        assert!(gate.redeem(&encoded, solution.nonce).is_ok());
    }
}
