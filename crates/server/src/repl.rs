//! Server-side replication: serving the WAL-shipping endpoints on the
//! primary, and the tailing loop that keeps a read replica current
//! (DESIGN.md §15).
//!
//! The transport is the ordinary request/response protocol — replication
//! adds no second listener and works identically behind both front ends.
//! A replica is just a [`crate::handler::ReputationServer`] whose store is
//! written by [`ReplicaTail`] instead of by client requests: the tail
//! polls the primary with `ReplSubscribe`, applies each shipped batch
//! through [`softrep_storage::replication::apply_replicated`] (which
//! folds the applied-sequence watermark into the same atomic commit), and
//! falls back to a chunked snapshot bootstrap whenever the primary's log
//! no longer holds a gapless continuation.
//!
//! Failure handling mirrors the client connector's taxonomy: disconnects
//! and timeouts are retryable (reconnect with capped exponential
//! backoff), while a response that does not belong to the replication
//! protocol means the stream may be desynchronized — the connection is
//! dropped and re-established rather than reused.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use softrep_core::db::ReputationDb;
use softrep_proto::message::ReplEntry as WireEntry;
use softrep_proto::{Request, Response};
use softrep_storage::replication::{self, ReplEntry};
use softrep_storage::{ReplRead, Store};

use crate::handler::ReputationServer;
use crate::tcp::TcpClient;

/// Hard cap on entries per `ReplEntries` page, whatever the subscriber
/// asks for.
pub const MAX_PAGE_ENTRIES: u32 = 1024;

/// Hard cap on raw (pre-hex) entry bytes per `ReplEntries` page. Hex
/// encoding doubles this on the wire and per-entry XML framing adds a
/// little more, so the cap keeps every response comfortably inside the
/// framing layer's 1 MiB frame limit.
pub const MAX_PAGE_BYTES: u32 = 192 * 1024;

/// Raw bytes per `ReplSnapshotChunk` (512 KiB of hex on the wire).
pub const SNAPSHOT_CHUNK_BYTES: usize = 256 * 1024;

/// Point-in-time values of the replication series exported on `/metrics`.
///
/// On a primary the gauges sit at zero and the counter never moves; the
/// series still render so dashboards and the CI smoke test can rely on
/// their presence unconditionally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplMetrics {
    /// `softrep_repl_lag_entries`: committed entries on the primary not
    /// yet applied here (0 when caught up).
    pub lag_entries: u64,
    /// `softrep_repl_lag_bytes`: bytes of committed entries beyond the
    /// last page the primary shipped us.
    pub lag_bytes: u64,
    /// `softrep_repl_applied_seq`: this replica's applied watermark.
    pub applied_seq: u64,
    /// `softrep_repl_reconnects_total`: connection cycles against the
    /// primary that ended in a retryable failure.
    pub reconnects: u64,
}

/// Replication state carried by every [`ReputationServer`]: the serving
/// side's snapshot cache, the replica role marker, and the metrics the
/// tail thread publishes.
#[derive(Default)]
pub struct ReplServerState {
    /// One encoded snapshot kept alive while subscribers page through it,
    /// keyed by its covered sequence number.
    snapshot_cache: Mutex<Option<(u64, Arc<Vec<u8>>)>>,
    /// Set exactly once when this node is configured as a read replica;
    /// the value is the primary's protocol address, echoed in
    /// [`Response::NotPrimary`] redirects.
    replica_of: OnceLock<String>,
    lag_entries: AtomicU64,
    lag_bytes: AtomicU64,
    applied_seq: AtomicU64,
    reconnects: AtomicU64,
}

impl ReplServerState {
    /// The primary's address when this node is a replica, else `None`.
    pub fn replica_of(&self) -> Option<&str> {
        self.replica_of.get().map(String::as_str)
    }

    /// Mark this node as a read replica of `primary`. The role is
    /// permanent for the process lifetime (first caller wins).
    pub fn set_replica_of(&self, primary: String) {
        let _ = self.replica_of.set(primary);
    }

    /// A consistent snapshot of the replication series.
    pub fn metrics(&self) -> ReplMetrics {
        ReplMetrics {
            lag_entries: self.lag_entries.load(Ordering::Relaxed),
            lag_bytes: self.lag_bytes.load(Ordering::Relaxed),
            applied_seq: self.applied_seq.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }

    fn record_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    fn record_lag(&self, applied_seq: u64, committed_seq: u64, lag_bytes: u64) {
        self.applied_seq.store(applied_seq, Ordering::Relaxed);
        self.lag_entries.store(committed_seq.saturating_sub(applied_seq), Ordering::Relaxed);
        self.lag_bytes.store(lag_bytes, Ordering::Relaxed);
    }
}

/// Answer a `ReplSubscribe` request against `store`. Caps are clamped to
/// the server-side maxima so a misbehaving subscriber cannot force an
/// oversized frame, and floored at one entry so progress is always
/// possible.
pub fn serve_subscribe(store: &Store, from_seq: u64, max_entries: u32, max_bytes: u32) -> Response {
    let entries = max_entries.clamp(1, MAX_PAGE_ENTRIES) as usize;
    let bytes = max_bytes.clamp(1, MAX_PAGE_BYTES) as usize;
    match store.replication_read(from_seq, entries, bytes) {
        Ok(ReplRead::Entries { entries, committed_seq, backlog_bytes }) => Response::ReplEntries {
            committed_seq,
            backlog_bytes,
            entries: entries
                .into_iter()
                .map(|e| WireEntry { seq: e.seq, batch: e.batch })
                .collect(),
        },
        Ok(ReplRead::SnapshotNeeded { committed_seq }) => Response::ReplResync { committed_seq },
        Err(e) => Response::error("repl-unavailable", e.to_string()),
    }
}

/// Answer a `ReplSnapshot` request: one chunk of an encoded store
/// snapshot. `seq == 0` (or a `seq` the cache no longer holds) cuts a
/// fresh export — never a stale cached one, so a bootstrap that raced a
/// compaction converges instead of looping on a retired snapshot. The
/// fresh export replaces the cache so subscribers paging through it get
/// consistent bytes.
pub fn serve_snapshot(state: &ReplServerState, store: &Store, seq: u64, offset: u64) -> Response {
    let cached = if seq == 0 {
        None
    } else {
        state
            .snapshot_cache
            .lock()
            .as_ref()
            .filter(|(cached_seq, _)| *cached_seq == seq)
            .map(|(cached_seq, data)| (*cached_seq, Arc::clone(data)))
    };
    let (snap_seq, data) = match cached {
        Some(hit) => hit,
        None => {
            let (snap_seq, bytes) = store.export_snapshot();
            let data = Arc::new(bytes);
            *state.snapshot_cache.lock() = Some((snap_seq, Arc::clone(&data)));
            (snap_seq, data)
        }
    };
    let total_len = data.len() as u64;
    let start = offset.min(total_len) as usize;
    let end = start.saturating_add(SNAPSHOT_CHUNK_BYTES).min(data.len());
    Response::ReplSnapshotChunk {
        seq: snap_seq,
        offset: start as u64,
        total_len,
        data: data.get(start..end).map(<[u8]>::to_vec).unwrap_or_default(),
    }
}

/// Tuning knobs for [`ReplicaTail`].
#[derive(Debug, Clone)]
pub struct ReplicaTailConfig {
    /// Sleep between polls once caught up with the primary.
    pub poll_interval: Duration,
    /// First backoff after a retryable failure; doubles per consecutive
    /// failure up to [`ReplicaTailConfig::backoff_max`], and resets on the
    /// next successful exchange — the client connector's shape.
    pub backoff_start: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Socket read deadline for calls against the primary (also bounds
    /// how long shutdown can block on an in-flight call).
    pub read_timeout: Duration,
    /// Socket write deadline for calls against the primary.
    pub write_timeout: Duration,
    /// Page caps requested per poll (clamped by the primary to
    /// [`MAX_PAGE_ENTRIES`]/[`MAX_PAGE_BYTES`]).
    pub page_entries: u32,
    /// See [`ReplicaTailConfig::page_entries`].
    pub page_bytes: u32,
}

impl Default for ReplicaTailConfig {
    fn default() -> Self {
        ReplicaTailConfig {
            poll_interval: Duration::from_millis(50),
            backoff_start: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            page_entries: 256,
            page_bytes: 128 * 1024,
        }
    }
}

/// How one connection's session ended.
enum SessionEnd {
    /// Shutdown was requested; the tail thread exits.
    Stop,
    /// A retryable failure; reconnect after backoff.
    Retry,
}

/// The replica's tailing thread: connects to the primary, bootstraps from
/// a snapshot when needed, then streams committed batches into the local
/// store, publishing lag metrics as it goes.
pub struct ReplicaTail {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ReplicaTail {
    /// Spawn the tail with default tuning.
    pub fn spawn(server: Arc<ReputationServer>, primary: String) -> std::io::Result<Self> {
        ReplicaTail::spawn_with(server, primary, ReplicaTailConfig::default())
    }

    /// Spawn the tail with explicit tuning. Also marks `server` as a
    /// replica of `primary`, so its handler starts redirecting writes.
    pub fn spawn_with(
        server: Arc<ReputationServer>,
        primary: String,
        config: ReplicaTailConfig,
    ) -> std::io::Result<Self> {
        server.repl_state().set_replica_of(primary.clone());
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("softrep-repl-tail".to_string())
            .spawn(move || run_tail(&server, &primary, &config, &thread_stop))?;
        Ok(ReplicaTail { stop, thread: Some(thread) })
    }

    /// Signal the tail to stop and join it. An in-flight call against the
    /// primary delays this by at most the configured read deadline.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ReplicaTail {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn run_tail(
    server: &ReputationServer,
    primary: &str,
    config: &ReplicaTailConfig,
    stop: &AtomicBool,
) {
    let mut backoff = config.backoff_start;
    while !stop.load(Ordering::SeqCst) {
        if let Ok(mut client) = TcpClient::connect(primary) {
            let _ = client.set_timeouts(Some(config.read_timeout), Some(config.write_timeout));
            match run_session(server, &mut client, config, stop, &mut backoff) {
                SessionEnd::Stop => return,
                SessionEnd::Retry => {}
            }
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        server.repl_state().record_reconnect();
        sleep_interruptible(stop, backoff);
        backoff = backoff.saturating_mul(2).min(config.backoff_max);
    }
}

/// Drive one connection until it fails or shutdown is requested.
fn run_session(
    server: &ReputationServer,
    client: &mut TcpClient,
    config: &ReplicaTailConfig,
    stop: &AtomicBool,
    backoff: &mut Duration,
) -> SessionEnd {
    let db = server.db();
    let store = Arc::clone(db.store());
    let state = server.repl_state();
    loop {
        if stop.load(Ordering::SeqCst) {
            return SessionEnd::Stop;
        }
        // A sentinel left by an interrupted install means the local state
        // is a torn mix; re-bootstrap before serving or tailing anything.
        if replication::bootstrap_pending(&store) && resync(client, db, &store, state).is_err() {
            return SessionEnd::Retry;
        }
        let from_seq = replication::applied_watermark(&store);
        let request = Request::ReplSubscribe {
            from_seq,
            max_entries: config.page_entries,
            max_bytes: config.page_bytes,
        };
        let response = match client.call(&request) {
            Ok(response) => {
                *backoff = config.backoff_start;
                response
            }
            Err(_) => return SessionEnd::Retry,
        };
        match response {
            Response::ReplEntries { committed_seq, backlog_bytes, entries } => {
                if committed_seq < from_seq {
                    // The primary knows fewer commits than we applied: it
                    // was restored from older state. Our suffix is no
                    // longer meaningful; converge on its truth.
                    if resync(client, db, &store, state).is_err() {
                        return SessionEnd::Retry;
                    }
                    continue;
                }
                let caught_up = entries.is_empty();
                let mut applied_any = false;
                let mut gap = false;
                for entry in &entries {
                    let entry = ReplEntry { seq: entry.seq, batch: entry.batch.clone() };
                    match replication::apply_replicated(&store, &entry) {
                        Ok(()) => applied_any = true,
                        Err(_) => {
                            gap = true;
                            break;
                        }
                    }
                }
                if applied_any {
                    // Applies bypass the db layer, so its read-through
                    // caches must not serve pre-page state.
                    db.purge_read_caches();
                }
                state.record_lag(
                    replication::applied_watermark(&store),
                    committed_seq,
                    backlog_bytes,
                );
                if gap {
                    if resync(client, db, &store, state).is_err() {
                        return SessionEnd::Retry;
                    }
                    continue;
                }
                if caught_up {
                    sleep_interruptible(stop, config.poll_interval);
                }
            }
            Response::ReplResync { .. } => {
                if resync(client, db, &store, state).is_err() {
                    return SessionEnd::Retry;
                }
            }
            // Anything else — an error response, or a reply from a node
            // that is not a primary — leaves no way to know the stream
            // state; drop the connection and start over.
            _ => return SessionEnd::Retry,
        }
    }
}

/// Fetch a full snapshot in chunks and install it, replacing local state.
/// A `seq` change mid-assembly (the primary cut a newer snapshot, or
/// restarted) restarts the download from offset zero.
fn resync(
    client: &mut TcpClient,
    db: &ReputationDb,
    store: &Store,
    state: &ReplServerState,
) -> Result<(), ()> {
    let mut buf: Vec<u8> = Vec::new();
    let mut want_seq = 0u64;
    loop {
        let request = Request::ReplSnapshot { seq: want_seq, offset: buf.len() as u64 };
        let Ok(response) = client.call(&request) else { return Err(()) };
        let Response::ReplSnapshotChunk { seq, offset, total_len, data } = response else {
            return Err(());
        };
        if seq != want_seq || offset != buf.len() as u64 {
            buf.clear();
            want_seq = seq;
            if offset != 0 {
                // Re-request the new snapshot from its beginning.
                continue;
            }
        }
        if data.is_empty() && (buf.len() as u64) < total_len {
            // No progress would be made; the primary is misbehaving.
            return Err(());
        }
        buf.extend_from_slice(&data);
        if buf.len() as u64 >= total_len {
            break;
        }
    }
    let covered_seq = replication::install_snapshot(store, &buf).map_err(|_| ())?;
    db.purge_read_caches();
    state.applied_seq.store(covered_seq, Ordering::Relaxed);
    Ok(())
}

/// Sleep up to `total`, waking early when `stop` flips.
fn sleep_interruptible(stop: &AtomicBool, total: Duration) {
    let step = Duration::from_millis(10);
    let mut remaining = total;
    while !stop.load(Ordering::SeqCst) && remaining > Duration::ZERO {
        let chunk = remaining.min(step);
        std::thread::sleep(chunk);
        remaining = remaining.saturating_sub(chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    use softrep_core::clock::SimClock;
    use softrep_crypto::salted::SecretPepper;

    use crate::handler::ServerConfig;
    use crate::tcp::TcpServer;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("softrep-srv-repl-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn file_backed_server(dir: &PathBuf) -> Arc<ReputationServer> {
        let store = Arc::new(Store::open(dir).unwrap());
        let db = ReputationDb::new(store, SecretPepper::new(b"repl-pepper".to_vec()));
        Arc::new(ReputationServer::new(
            db,
            Arc::new(SimClock::new()),
            ServerConfig { puzzle_difficulty: 0, ..ServerConfig::default() },
            11,
        ))
    }

    fn fast_tail_config() -> ReplicaTailConfig {
        ReplicaTailConfig {
            poll_interval: Duration::from_millis(5),
            backoff_start: Duration::from_millis(5),
            backoff_max: Duration::from_millis(50),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            ..ReplicaTailConfig::default()
        }
    }

    fn wait_until(deadline_ms: u64, mut check: impl FnMut() -> bool) -> bool {
        let sw = softrep_obs::time::Stopwatch::start();
        while sw.elapsed_micros() < deadline_ms * 1_000 {
            if check() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        check()
    }

    #[test]
    fn replica_redirects_writes_but_serves_reads() {
        let server = file_backed_server(&tmpdir("redirect"));
        server.repl_state().set_replica_of("10.1.2.3:7007".to_string());

        let resp = server.handle(&Request::GetPuzzle, "peer");
        let Response::NotPrimary { primary } = resp else { panic!("{resp:?}") };
        assert_eq!(primary, "10.1.2.3:7007");

        // Reads are answered locally.
        let resp = server.handle(&Request::QuerySoftware { software_id: "ab".repeat(20) }, "peer");
        assert!(matches!(resp, Response::UnknownSoftware { .. }), "{resp:?}");
    }

    #[test]
    fn repl_requests_bypass_the_flood_guard() {
        let server = file_backed_server(&tmpdir("flood-exempt"));
        let burst = server.config().flood_capacity + 50;
        for _ in 0..burst {
            let resp = server.handle(
                &Request::ReplSubscribe { from_seq: 0, max_entries: 1, max_bytes: 1024 },
                "replica-peer",
            );
            assert!(
                !matches!(resp, Response::Error { ref code, .. } if code == "throttled"),
                "replication polling must never be throttled"
            );
        }
    }

    #[test]
    fn in_memory_primary_reports_repl_unavailable() {
        let server = Arc::new(ReputationServer::new(
            ReputationDb::in_memory("p"),
            Arc::new(SimClock::new()),
            ServerConfig::default(),
            1,
        ));
        let resp = server.handle(
            &Request::ReplSubscribe { from_seq: 0, max_entries: 8, max_bytes: 1024 },
            "peer",
        );
        assert!(
            matches!(resp, Response::Error { ref code, .. } if code == "repl-unavailable"),
            "{resp:?}"
        );
    }

    #[test]
    fn snapshot_endpoint_chunks_and_is_cacheable() {
        let server = file_backed_server(&tmpdir("snap-chunks"));
        let store = Arc::clone(server.db().store());
        // Enough data that the export is non-trivial (still one chunk).
        for i in 0..100 {
            store.put("t", format!("key-{i}").into_bytes(), vec![b'x'; 100]).unwrap();
        }
        let resp = server.handle(&Request::ReplSnapshot { seq: 0, offset: 0 }, "peer");
        let Response::ReplSnapshotChunk { seq, offset, total_len, data } = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(offset, 0);
        assert_eq!(seq, store.committed_seq());
        assert_eq!(total_len as usize, data.len(), "small exports fit one chunk");

        // Paging past the end returns an empty chunk, not an error.
        let resp = server.handle(&Request::ReplSnapshot { seq, offset: total_len }, "peer");
        let Response::ReplSnapshotChunk { data, .. } = resp else { panic!("{resp:?}") };
        assert!(data.is_empty());
    }

    #[test]
    fn tail_streams_writes_and_reports_zero_lag() {
        let primary = file_backed_server(&tmpdir("tail-e2e-p"));
        let primary_store = Arc::clone(primary.db().store());
        let tcp = TcpServer::spawn(Arc::clone(&primary), "127.0.0.1:0").unwrap();
        let primary_addr = tcp.local_addr().to_string();

        let replica = file_backed_server(&tmpdir("tail-e2e-r"));
        let replica_store = Arc::clone(replica.db().store());
        let tail = ReplicaTail::spawn_with(Arc::clone(&replica), primary_addr, fast_tail_config())
            .unwrap();

        for i in 0..200 {
            primary_store.put("t", format!("k{i}").into_bytes(), vec![b'v'; 50]).unwrap();
        }
        assert!(
            wait_until(10_000, || replica_store.content_dump() == primary_store.content_dump()),
            "replica must converge on the primary's contents"
        );
        assert!(wait_until(10_000, || replica.repl_state().metrics().lag_entries == 0));
        let metrics = replica.repl_state().metrics();
        assert_eq!(metrics.applied_seq, primary_store.committed_seq());

        // The metrics page carries all four series on both roles.
        for series in [
            "softrep_repl_lag_entries",
            "softrep_repl_lag_bytes",
            "softrep_repl_applied_seq",
            "softrep_repl_reconnects_total",
        ] {
            assert!(replica.metrics_text().contains(series), "replica missing {series}");
            assert!(primary.metrics_text().contains(series), "primary missing {series}");
        }

        tail.shutdown();
        tcp.shutdown();
    }

    #[test]
    fn tail_bootstraps_from_snapshot_after_compaction() {
        let primary = file_backed_server(&tmpdir("tail-snap-p"));
        let primary_store = Arc::clone(primary.db().store());
        for i in 0..300 {
            primary_store.put("t", format!("k{i}").into_bytes(), vec![b'v'; 40]).unwrap();
        }
        // Retire the whole log: a fresh subscriber must bootstrap.
        primary_store.compact().unwrap();
        let tcp = TcpServer::spawn(Arc::clone(&primary), "127.0.0.1:0").unwrap();

        let replica = file_backed_server(&tmpdir("tail-snap-r"));
        let replica_store = Arc::clone(replica.db().store());
        let tail = ReplicaTail::spawn_with(
            Arc::clone(&replica),
            tcp.local_addr().to_string(),
            fast_tail_config(),
        )
        .unwrap();

        assert!(
            wait_until(10_000, || replica_store.content_dump() == primary_store.content_dump()),
            "replica must bootstrap to the primary's contents"
        );
        // And keep tailing after the bootstrap.
        primary_store.put("t", b"post-snapshot".to_vec(), b"v".to_vec()).unwrap();
        assert!(wait_until(10_000, || {
            replica_store.content_dump() == primary_store.content_dump()
        }));

        tail.shutdown();
        tcp.shutdown();
    }

    #[test]
    fn tail_survives_primary_restart() {
        let dir_p = tmpdir("restart-p");
        let primary = file_backed_server(&dir_p);
        let primary_store = Arc::clone(primary.db().store());
        let tcp = TcpServer::spawn(Arc::clone(&primary), "127.0.0.1:0").unwrap();
        let addr = tcp.local_addr();

        let replica = file_backed_server(&tmpdir("restart-r"));
        let replica_store = Arc::clone(replica.db().store());
        let tail =
            ReplicaTail::spawn_with(Arc::clone(&replica), addr.to_string(), fast_tail_config())
                .unwrap();

        primary_store.put("t", b"before".to_vec(), b"1".to_vec()).unwrap();
        assert!(wait_until(10_000, || {
            replica_store.content_dump() == primary_store.content_dump()
        }));

        // Stop the primary's front end; the tail must ride out the outage.
        primary_store.sync().unwrap();
        tcp.shutdown();
        drop(primary);
        std::thread::sleep(Duration::from_millis(50));

        // Reopen the same data directory on the same port.
        let primary = {
            let store = Arc::new(Store::open(&dir_p).unwrap());
            let db = ReputationDb::new(store, SecretPepper::new(b"repl-pepper".to_vec()));
            Arc::new(ReputationServer::new(
                db,
                Arc::new(SimClock::new()),
                ServerConfig { puzzle_difficulty: 0, ..ServerConfig::default() },
                12,
            ))
        };
        let primary_store = Arc::clone(primary.db().store());
        let tcp2 = TcpServer::spawn(Arc::clone(&primary), addr).unwrap();
        primary_store.put("t", b"after".to_vec(), b"2".to_vec()).unwrap();

        assert!(
            wait_until(10_000, || replica_store.content_dump() == primary_store.content_dump()),
            "tail must reconnect and resume after a primary restart"
        );
        assert!(
            replica.repl_state().metrics().reconnects > 0,
            "the outage must be visible in the reconnect counter"
        );

        tail.shutdown();
        tcp2.shutdown();
    }
}
