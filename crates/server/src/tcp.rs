//! TCP front end: framed XML over `std::net`, one thread per connection.
//!
//! Used by the networked examples; the agent simulations call
//! [`crate::handler::ReputationServer::handle`] in-process for speed. The
//! source identity given to the flood guard is the peer address — which is
//! observed only transiently for throttling and never persisted (§2.2).

use std::io::BufReader;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use softrep_proto::framing::{read_frame, write_frame, FrameError};
use softrep_proto::{Request, Response};

use crate::handler::ReputationServer;

/// A running TCP server.
pub struct TcpServer {
    local_addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind `addr` and serve `server` until [`TcpServer::shutdown`].
    pub fn spawn(server: Arc<ReputationServer>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            // Non-blocking accept loop so shutdown is observed promptly.
            listener.set_nonblocking(true).expect("set_nonblocking");
            while !accept_shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        let server = Arc::clone(&server);
                        std::thread::spawn(move || {
                            let _ = serve_connection(&server, stream, &peer.to_string());
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(TcpServer { local_addr, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address (use port 0 to get an ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop accepting and join the accept thread. Existing connections
    /// finish their in-flight request.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn serve_connection(
    server: &ReputationServer,
    stream: TcpStream,
    peer: &str,
) -> Result<(), FrameError> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let body = match read_frame(&mut reader) {
            Ok(body) => body,
            Err(FrameError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        let response = match Request::decode(&body) {
            Ok(request) => server.handle(&request, peer),
            Err(e) => Response::error("bad-request", e.to_string()),
        };
        write_frame(&mut writer, &response.encode())?;
    }
}

/// A blocking protocol client for the TCP front end.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(TcpClient { reader: BufReader::new(stream), writer })
    }

    /// Send a request and wait for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, FrameError> {
        write_frame(&mut self.writer, &request.encode())?;
        let body = read_frame(&mut self.reader)?;
        Response::decode(&body)
            .map_err(|_| FrameError::NotUtf8)
            .or_else(|_| Ok(Response::error("bad-response", "could not decode server response")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrep_core::clock::SimClock;
    use softrep_core::db::ReputationDb;
    use softrep_crypto::puzzle::Challenge;

    use crate::handler::ServerConfig;

    fn spawn_server() -> (TcpServer, Arc<ReputationServer>) {
        let clock = SimClock::new();
        let db = ReputationDb::in_memory("tcp-pepper");
        let server = Arc::new(ReputationServer::new(
            db,
            Arc::new(clock),
            ServerConfig { puzzle_difficulty: 2, ..ServerConfig::default() },
            7,
        ));
        let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").unwrap();
        (tcp, server)
    }

    #[test]
    fn end_to_end_over_real_sockets() {
        let (tcp, server) = spawn_server();
        let mut client = TcpClient::connect(tcp.local_addr()).unwrap();

        // Register through the real transport.
        let Response::Puzzle { challenge } = client.call(&Request::GetPuzzle).unwrap() else {
            panic!("expected puzzle")
        };
        let (solution, _) = Challenge::decode(&challenge).unwrap().solve();
        let resp = client
            .call(&Request::Register {
                username: "netuser".into(),
                password: "pw".into(),
                email: "net@example.com".into(),
                puzzle_challenge: challenge,
                puzzle_solution: solution.nonce,
            })
            .unwrap();
        let Response::Registered { activation_token } = resp else { panic!("{resp:?}") };
        assert_eq!(
            client
                .call(&Request::Activate { username: "netuser".into(), token: activation_token })
                .unwrap(),
            Response::Ok
        );
        let Response::Session { token } = client
            .call(&Request::Login { username: "netuser".into(), password: "pw".into() })
            .unwrap()
        else {
            panic!("expected session")
        };

        let sw = "ab".repeat(20);
        client
            .call(&Request::RegisterSoftware {
                software_id: sw.clone(),
                file_name: "net.exe".into(),
                file_size: 5,
                company: None,
                version: None,
            })
            .unwrap();
        assert_eq!(
            client
                .call(&Request::SubmitVote {
                    session: token,
                    software_id: sw.clone(),
                    score: 9,
                    behaviours: vec![],
                })
                .unwrap(),
            Response::Ok
        );
        server.db().force_aggregation(server.now()).unwrap();

        let resp = client.call(&Request::QuerySoftware { software_id: sw }).unwrap();
        let Response::Software(info) = resp else { panic!("{resp:?}") };
        assert_eq!(info.rating, Some(9.0));

        tcp.shutdown();
    }

    #[test]
    fn malformed_frames_get_error_responses() {
        let (tcp, _server) = spawn_server();
        let stream = TcpStream::connect(tcp.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_frame(&mut writer, "this is not xml").unwrap();
        let body = read_frame(&mut reader).unwrap();
        let resp = Response::decode(&body).unwrap();
        assert!(matches!(resp, Response::Error { ref code, .. } if code == "bad-request"));
        tcp.shutdown();
    }

    #[test]
    fn multiple_concurrent_clients() {
        let (tcp, _server) = spawn_server();
        let addr = tcp.local_addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = TcpClient::connect(addr).unwrap();
                    for _ in 0..5 {
                        let resp = client
                            .call(&Request::QuerySoftware { software_id: "cd".repeat(20) })
                            .unwrap();
                        assert!(matches!(resp, Response::UnknownSoftware { .. }));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        tcp.shutdown();
    }
}
