//! TCP front end: framed XML over `std::net`, served by a bounded worker
//! pool.
//!
//! Used by the networked examples and the deployment binary; the agent
//! simulations call [`crate::handler::ReputationServer::handle`]
//! in-process for speed. Robustness properties (§2.1's availability
//! requirement):
//!
//! * **Bounded concurrency** — at most
//!   [`TcpServerConfig::max_connections`] workers; excess connections get
//!   an immediate `overloaded` error frame and are closed instead of
//!   spawning unboundedly.
//! * **Connection deadlines** — per-connection read/write timeouts so a
//!   dead or silent peer cannot pin a worker forever.
//! * **Graceful shutdown** — stop accepting (a self-connect nudge wakes
//!   the blocking accept immediately), drain in-flight requests up to
//!   [`TcpServerConfig::drain_deadline`], then force-close stragglers and
//!   join every worker handle.
//! * **Flood identity** — the flood guard is keyed on a *pseudonymized
//!   tag of the peer IP only* (`ReputationDb::pseudonym_tag`). Keying on
//!   `ip:port` would mint a fresh token bucket per reconnect, letting a
//!   reconnect-per-request flooder bypass throttling entirely; keying on
//!   the raw IP would let an address outlive the connection inside the
//!   bucket map. The raw address is observed only transiently at the
//!   accept boundary, hashed under the server's secret pepper, and never
//!   flows further (§2.2) — the `taint` lint pass enforces this.
//!
//! Everything the front end does is counted in [`ServerStats`], so tests
//! and experiments can assert throttling instead of guessing.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use softrep_obs::span::{self, SpanFamily};
use softrep_proto::framing::{read_frame_into, write_frame_with, FrameError};
use softrep_proto::{Request, Response};

use crate::handler::ReputationServer;
use crate::pool::WorkerPool;
use crate::stats::{ServerStats, StatsSnapshot};

/// Which serving architecture a [`FrontendServer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// Thread-per-connection over a bounded worker pool: portable, simple,
    /// capacity-bounded by [`TcpServerConfig::max_connections`] threads.
    Threads,
    /// Single epoll event loop plus a bounded dispatch pool: Linux only,
    /// capacity-bounded by [`TcpServerConfig::max_open_connections`]
    /// connection *states* instead of threads.
    #[cfg(target_os = "linux")]
    Epoll,
}

impl Default for Frontend {
    /// The reactor where it exists, threads elsewhere.
    fn default() -> Self {
        #[cfg(target_os = "linux")]
        {
            Frontend::Epoll
        }
        #[cfg(not(target_os = "linux"))]
        {
            Frontend::Threads
        }
    }
}

impl std::str::FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(Frontend::Threads),
            #[cfg(target_os = "linux")]
            "epoll" => Ok(Frontend::Epoll),
            #[cfg(not(target_os = "linux"))]
            "epoll" => Err("the epoll front end is only available on Linux".to_string()),
            other => Err(format!("unknown frontend '{other}' (expected 'threads' or 'epoll')")),
        }
    }
}

/// Tuning knobs for the TCP front end (both architectures; each knob says
/// which front end reads it).
#[derive(Debug, Clone)]
pub struct TcpServerConfig {
    /// Which serving architecture [`FrontendServer::spawn_with`] starts.
    /// [`TcpServer`]/[`crate::reactor::ReactorServer`] spawned directly
    /// ignore this.
    pub frontend: Frontend,
    /// Threads front end: maximum concurrently served connections (= pool
    /// threads); one beyond this is answered with an `overloaded` error
    /// frame and closed.
    pub max_connections: usize,
    /// Epoll front end: maximum concurrently *open* connections; one
    /// beyond this is answered with an `overloaded` error frame and
    /// closed. Idle connections only hold a buffer pair, so this can sit
    /// orders of magnitude above `max_connections`.
    pub max_open_connections: usize,
    /// Epoll front end: handler threads executing requests off the event
    /// loop.
    pub dispatch_workers: usize,
    /// A connection idle (no complete frame) past this deadline is
    /// dropped, freeing its worker.
    pub read_timeout: Duration,
    /// A peer that will not accept response bytes past this deadline is
    /// dropped.
    pub write_timeout: Duration,
    /// How long shutdown waits for in-flight requests before force-closing
    /// remaining connections.
    pub drain_deadline: Duration,
    /// `Some(primary_addr)` runs this node as a read replica:
    /// [`FrontendServer::spawn_with`] marks the handler so writes get a
    /// `not-primary` redirect carrying this address. Starting the tail
    /// that actually pulls the primary's log is the caller's job (see
    /// [`crate::repl::ReplicaTail`]); the deployment binary does both.
    pub replica_of: Option<String>,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        TcpServerConfig {
            frontend: Frontend::default(),
            max_connections: 64,
            max_open_connections: 10_240,
            dispatch_workers: 8,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            replica_of: None,
        }
    }
}

/// A running server behind either front end, selected by
/// [`TcpServerConfig::frontend`]. Both variants speak the same framed XML
/// protocol, account into the same [`ServerStats`], and drain on
/// [`FrontendServer::shutdown`] — tests parameterize over this to prove
/// the two architectures are observationally equivalent.
pub enum FrontendServer {
    /// Thread-per-connection ([`TcpServer`]).
    Threads(TcpServer),
    /// Epoll reactor ([`crate::reactor::ReactorServer`]).
    #[cfg(target_os = "linux")]
    Epoll(crate::reactor::ReactorServer),
}

impl FrontendServer {
    /// Bind `addr` and serve with the default config (reactor on Linux).
    pub fn spawn(server: Arc<ReputationServer>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        FrontendServer::spawn_with(server, addr, TcpServerConfig::default())
    }

    /// Bind `addr` and serve with the front end `config.frontend` names.
    pub fn spawn_with(
        server: Arc<ReputationServer>,
        addr: impl ToSocketAddrs,
        config: TcpServerConfig,
    ) -> std::io::Result<Self> {
        if let Some(primary) = &config.replica_of {
            server.repl_state().set_replica_of(primary.clone());
        }
        match config.frontend {
            Frontend::Threads => {
                Ok(FrontendServer::Threads(TcpServer::spawn_with(server, addr, config)?))
            }
            #[cfg(target_os = "linux")]
            Frontend::Epoll => Ok(FrontendServer::Epoll(
                crate::reactor::ReactorServer::spawn_with(server, addr, config)?,
            )),
        }
    }

    /// The bound address (use port 0 to get an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        match self {
            FrontendServer::Threads(s) => s.local_addr(),
            #[cfg(target_os = "linux")]
            FrontendServer::Epoll(s) => s.local_addr(),
        }
    }

    /// A consistent snapshot of the transport counters.
    pub fn stats(&self) -> StatsSnapshot {
        match self {
            FrontendServer::Threads(s) => s.stats(),
            #[cfg(target_os = "linux")]
            FrontendServer::Epoll(s) => s.stats(),
        }
    }

    /// A handle to the live counters, usable after shutdown consumes the
    /// server.
    pub fn stats_handle(&self) -> Arc<ServerStats> {
        match self {
            FrontendServer::Threads(s) => s.stats_handle(),
            #[cfg(target_os = "linux")]
            FrontendServer::Epoll(s) => s.stats_handle(),
        }
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        match self {
            FrontendServer::Threads(s) => s.active_connections(),
            #[cfg(target_os = "linux")]
            FrontendServer::Epoll(s) => s.active_connections(),
        }
    }

    /// Stop accepting, drain in-flight requests, and join every thread.
    pub fn shutdown(self) {
        match self {
            FrontendServer::Threads(s) => s.shutdown(),
            #[cfg(target_os = "linux")]
            FrontendServer::Epoll(s) => s.shutdown(),
        }
    }
}

/// Live connections indexed by id, kept so shutdown can force-close
/// stragglers that are blocked reading from silent peers.
#[derive(Default)]
struct ConnRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    next_id: u64,
    conns: HashMap<u64, TcpStream>,
}

impl ConnRegistry {
    /// Track a clone of `stream`; `None` when the clone fails (the
    /// connection is still served, just not force-closable).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id = inner.next_id.wrapping_add(1);
        inner.conns.insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.inner.lock().conns.remove(&id);
    }

    /// Shut down every tracked socket, unblocking workers stuck in reads.
    fn close_all(&self) {
        for conn in self.inner.lock().conns.values() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running TCP server.
pub struct TcpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    pool: Arc<WorkerPool>,
    stats: Arc<ServerStats>,
    registry: Arc<ConnRegistry>,
    drain_deadline: Duration,
}

impl TcpServer {
    /// Bind `addr` and serve `server` with [`TcpServerConfig::default`]
    /// until [`TcpServer::shutdown`].
    pub fn spawn(server: Arc<ReputationServer>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        TcpServer::spawn_with(server, addr, TcpServerConfig::default())
    }

    /// Bind `addr` and serve `server` with explicit tuning knobs.
    pub fn spawn_with(
        server: Arc<ReputationServer>,
        addr: impl ToSocketAddrs,
        config: TcpServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Register the latency series at bind time so `/metrics` exposes
        // it (at zero) before the first request arrives.
        let _ = request_spans();
        let shutdown = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(WorkerPool::new(config.max_connections));
        // Share the handler's counter sink: one snapshot covers transport
        // events and the aggregation batches the handler runs.
        let stats = server.stats_handle();
        let registry = Arc::new(ConnRegistry::default());

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_pool = Arc::clone(&pool);
        let accept_stats = Arc::clone(&stats);
        let accept_registry = Arc::clone(&registry);
        let accept_config = config.clone();
        let accept_thread = std::thread::Builder::new()
            .name("softrep-tcp-accept".to_string())
            .spawn(move || {
                // Blocking accept; shutdown() wakes it with a self-connect
                // nudge, so there is no sleep-poll burning CPU and no
                // latency between the flag flipping and the loop exiting.
                loop {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            if accept_shutdown.load(Ordering::SeqCst) {
                                break; // the nudge itself, or a late client
                            }
                            handle_accept(
                                &server,
                                &accept_pool,
                                &accept_stats,
                                &accept_registry,
                                &accept_shutdown,
                                &accept_config,
                                stream,
                                peer,
                            );
                        }
                        Err(_) if accept_shutdown.load(Ordering::SeqCst) => break,
                        Err(_) => {
                            // Transient accept failure (e.g. fd exhaustion):
                            // back off briefly rather than spinning.
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            })?;

        Ok(TcpServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            pool,
            stats,
            registry,
            drain_deadline: config.drain_deadline,
        })
    }

    /// The bound address (use port 0 to get an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A consistent snapshot of the transport counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// A handle to the live counters, usable after shutdown consumes the
    /// server.
    pub fn stats_handle(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Connections being served right now.
    pub fn active_connections(&self) -> usize {
        self.pool.active()
    }

    /// Stop accepting, drain in-flight requests up to the configured
    /// deadline, force-close stragglers, and join every worker.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return; // already shut down
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept immediately.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(250));
        let _ = handle.join();
        // Give in-flight requests the drain deadline; then force-close
        // whatever is left (idle keep-alive peers, silent sockets) and
        // join the unblocked workers.
        if !self.pool.join_deadline(self.drain_deadline) {
            self.registry.close_all();
            let _ = self.pool.join_deadline(self.drain_deadline.max(Duration::from_millis(250)));
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_accept(
    server: &Arc<ReputationServer>,
    pool: &Arc<WorkerPool>,
    stats: &Arc<ServerStats>,
    registry: &Arc<ConnRegistry>,
    shutdown: &Arc<AtomicBool>,
    config: &TcpServerConfig,
    stream: TcpStream,
    peer: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));

    let Some(permit) = pool.try_acquire() else {
        // Shed load explicitly: tell the peer why, then close. Never
        // spawn beyond the bound.
        stats.record_rejected_overload();
        let mut writer = stream;
        let overloaded =
            Response::error("overloaded", "server is at connection capacity; retry later");
        let _ = write_frame_with(&mut writer, &overloaded.encode(), &mut Vec::new());
        return;
    };

    // The flood-guard identity is a pseudonymized tag of the peer IP
    // only — see module docs. The raw address stops here.
    let peer_tag = server.db().pseudonym_tag("peer", &peer.ip().to_string());
    let reg_id = registry.register(&stream);
    let worker_server = Arc::clone(server);
    let worker_stats = Arc::clone(stats);
    let worker_registry = Arc::clone(registry);
    let worker_shutdown = Arc::clone(shutdown);
    let spawned = pool.spawn(permit, move || {
        worker_stats.record_accepted();
        let _ =
            serve_connection(&worker_server, stream, &peer_tag, &worker_stats, &worker_shutdown);
        if let Some(id) = reg_id {
            worker_registry.deregister(id);
        }
        worker_stats.record_closed();
    });
    if spawned.is_err() {
        // Thread creation failed: the closure (and stream) were dropped,
        // closing the connection; account for it and untrack the clone.
        stats.record_rejected_overload();
        if let Some(id) = reg_id {
            registry.deregister(id);
        }
    }
}

fn serve_connection(
    server: &ReputationServer,
    stream: TcpStream,
    peer_tag: &str,
    stats: &ServerStats,
    shutdown: &AtomicBool,
) -> Result<(), FrameError> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Frame buffers live for the connection: steady-state requests
    // allocate nothing in the framing layer.
    let mut body = Vec::new();
    let mut scratch = Vec::new();
    loop {
        match read_frame_into(&mut reader, &mut body) {
            Ok(()) => {}
            Err(FrameError::Closed) => return Ok(()),
            Err(FrameError::Io(e)) if is_timeout(&e) => {
                stats.record_timed_out();
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        // read_frame_into validated UTF-8; this can only fail if the
        // buffer was corrupted between the two calls.
        let text = std::str::from_utf8(&body).map_err(|_| FrameError::NotUtf8)?;
        // Every request gets a process-unique id (slow-op attribution);
        // the latency span itself is 1-in-N sampled.
        let _scope = span::RequestScope::enter(span::next_request_id());
        let timer = request_spans().maybe_start();
        let response = match Request::decode(text) {
            Ok(request) => server.handle(&request, peer_tag),
            Err(e) => Response::error("bad-request", e.to_string()),
        };
        write_frame_with(&mut writer, &response.encode(), &mut scratch)?;
        drop(timer);
        stats.record_request_served();
        // Drain semantics: the request already in flight is answered, then
        // the connection closes so shutdown can complete.
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Sampled latency spans for the decode → handle → respond cycle. The
/// span lives at the transport layer, not in `handle()`, so the in-memory
/// dispatch path stays clock-free; socket turnaround dwarfs the sampled
/// `Instant` reads that do happen. Shared with the reactor front end so
/// `softrep_request_latency_us` covers both architectures.
pub(crate) fn request_spans() -> &'static SpanFamily {
    static FAMILY: std::sync::OnceLock<SpanFamily> = std::sync::OnceLock::new();
    FAMILY.get_or_init(|| {
        SpanFamily::sampled(
            "tcp_request",
            softrep_obs::registry().histogram("softrep_request_latency_us"),
        )
    })
}

/// A blocking protocol client for the TCP front end.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Response-body buffer, reused across calls.
    body: Vec<u8>,
    /// Outgoing-frame scratch, reused across calls.
    scratch: Vec<u8>,
}

impl TcpClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        TcpClient::from_stream(TcpStream::connect(addr)?)
    }

    /// Wrap an already-connected stream (used by the retrying connector,
    /// which owns connect timeouts).
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        let writer = stream.try_clone()?;
        Ok(TcpClient {
            reader: BufReader::new(stream),
            writer,
            body: Vec::new(),
            scratch: Vec::new(),
        })
    }

    /// Apply read/write deadlines to the underlying socket.
    pub fn set_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(read)?;
        self.writer.set_write_timeout(write)
    }

    /// Send a request and wait for its response. A response frame that
    /// does not decode is a hard protocol error: the stream may be
    /// desynchronized, so the caller must not keep using this connection.
    pub fn call(&mut self, request: &Request) -> Result<Response, FrameError> {
        write_frame_with(&mut self.writer, &request.encode(), &mut self.scratch)?;
        read_frame_into(&mut self.reader, &mut self.body)?;
        let text = std::str::from_utf8(&self.body).map_err(|_| FrameError::NotUtf8)?;
        Response::decode(text).map_err(|e| FrameError::Decode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrep_proto::framing::{read_frame, write_frame};

    use softrep_core::clock::SimClock;
    use softrep_core::db::ReputationDb;
    use softrep_crypto::puzzle::Challenge;

    use crate::handler::ServerConfig;

    fn spawn_server() -> (TcpServer, Arc<ReputationServer>) {
        let clock = SimClock::new();
        let db = ReputationDb::in_memory("tcp-pepper");
        let server = Arc::new(ReputationServer::new(
            db,
            Arc::new(clock),
            ServerConfig { puzzle_difficulty: 2, ..ServerConfig::default() },
            7,
        ));
        let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").unwrap();
        (tcp, server)
    }

    #[test]
    fn end_to_end_over_real_sockets() {
        let (tcp, server) = spawn_server();
        let mut client = TcpClient::connect(tcp.local_addr()).unwrap();

        // Register through the real transport.
        let Response::Puzzle { challenge } = client.call(&Request::GetPuzzle).unwrap() else {
            panic!("expected puzzle")
        };
        let (solution, _) = Challenge::decode(&challenge).unwrap().solve();
        let resp = client
            .call(&Request::Register {
                username: "netuser".into(),
                password: "pw".into(),
                email: "net@example.com".into(),
                puzzle_challenge: challenge,
                puzzle_solution: solution.nonce,
            })
            .unwrap();
        let Response::Registered { activation_token } = resp else { panic!("{resp:?}") };
        assert_eq!(
            client
                .call(&Request::Activate { username: "netuser".into(), token: activation_token })
                .unwrap(),
            Response::Ok
        );
        let Response::Session { token } = client
            .call(&Request::Login { username: "netuser".into(), password: "pw".into() })
            .unwrap()
        else {
            panic!("expected session")
        };

        let sw = "ab".repeat(20);
        client
            .call(&Request::RegisterSoftware {
                software_id: sw.clone(),
                file_name: "net.exe".into(),
                file_size: 5,
                company: None,
                version: None,
            })
            .unwrap();
        assert_eq!(
            client
                .call(&Request::SubmitVote {
                    session: token,
                    software_id: sw.clone(),
                    score: 9,
                    behaviours: vec![],
                })
                .unwrap(),
            Response::Ok
        );
        server.db().force_aggregation(server.now()).unwrap();

        let resp = client.call(&Request::QuerySoftware { software_id: sw }).unwrap();
        let Response::Software(info) = resp else { panic!("{resp:?}") };
        assert_eq!(info.rating, Some(9.0));

        let stats = tcp.stats();
        assert_eq!(stats.accepted, 1);
        assert!(stats.requests_served >= 6);
        assert_eq!(stats.rejected_overload, 0);

        tcp.shutdown();
    }

    #[test]
    fn malformed_frames_get_error_responses() {
        let (tcp, _server) = spawn_server();
        let stream = TcpStream::connect(tcp.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_frame(&mut writer, "this is not xml").unwrap();
        let body = read_frame(&mut reader).unwrap();
        let resp = Response::decode(&body).unwrap();
        assert!(matches!(resp, Response::Error { ref code, .. } if code == "bad-request"));
        tcp.shutdown();
    }

    #[test]
    fn multiple_concurrent_clients() {
        let (tcp, _server) = spawn_server();
        let addr = tcp.local_addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = TcpClient::connect(addr).unwrap();
                    for _ in 0..5 {
                        let resp = client
                            .call(&Request::QuerySoftware { software_id: "cd".repeat(20) })
                            .unwrap();
                        assert!(matches!(resp, Response::UnknownSoftware { .. }));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // A client can observe its reply a moment before the worker
        // increments `served`; give the counter a bounded beat to settle.
        let sw = softrep_obs::time::Stopwatch::start();
        while tcp.stats().requests_served < 20 && sw.elapsed_micros() < 2_000_000 {
            std::thread::yield_now();
        }
        let stats = tcp.stats();
        assert_eq!(stats.accepted, 4);
        assert_eq!(stats.requests_served, 20);
        tcp.shutdown();
    }

    #[test]
    fn undecodable_server_response_is_a_decode_error_not_a_synthetic_ok() {
        // A hand-rolled "server" that answers one frame with well-framed
        // garbage: the client must surface a decode error (the stream may
        // be desynchronized) rather than fabricating an Ok response.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bogus = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let _ = read_frame(&mut reader).unwrap();
            write_frame(&mut writer, "<<<this is not a Response>>>").unwrap();
        });

        let mut client = TcpClient::connect(addr).unwrap();
        let err = client.call(&Request::GetPuzzle).unwrap_err();
        assert!(matches!(err, FrameError::Decode(_)), "got {err:?}");
        bogus.join().unwrap();
    }

    #[test]
    fn shutdown_joins_all_workers_and_stops_accepting() {
        let (tcp, _server) = spawn_server();
        let addr = tcp.local_addr();
        let mut client = TcpClient::connect(addr).unwrap();
        let resp = client.call(&Request::QuerySoftware { software_id: "cd".repeat(20) }).unwrap();
        assert!(matches!(resp, Response::UnknownSoftware { .. }));

        let stats = tcp.stats_handle();
        tcp.shutdown();
        // Every accepted connection has been closed and joined.
        let s = stats.snapshot();
        assert_eq!(s.active, 0, "shutdown must drain every worker: {s:?}");
        assert_eq!(s.accepted, s.closed);
        // And the port no longer accepts protocol traffic.
        match TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
            Err(_) => {}
            Ok(stream) => {
                // A connect may still succeed transiently; the server side
                // must not answer frames any more.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let _ = write_frame(&mut writer, "<request><get-puzzle/></request>");
                assert!(read_frame(&mut reader).is_err(), "no worker should answer");
            }
        }
    }
}
