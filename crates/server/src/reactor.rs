//! The event-driven (epoll) front end: 1024+ connections on one event
//! loop, zero per-request allocations on the frame path.
//!
//! The thread-per-connection front end in [`crate::tcp`] burns one OS
//! thread per peer, so its availability ceiling is
//! [`crate::tcp::TcpServerConfig::max_connections`] (64 by default) —
//! everything above that is shed, and a slow-loris flooder can pin every
//! worker with half-written frames. This module replaces threads with
//! readiness: every connection is a small state machine driven by a
//! single epoll loop, and only *handler execution* uses threads (a
//! bounded [`crate::pool::DispatchPool`]), so an idle or stalled peer
//! costs a few hundred bytes of state instead of a stack.
//!
//! Architecture (DESIGN.md §14):
//!
//! * **State machine** — `ReadingHeader → ReadingBody → Dispatched →
//!   Writing → ReadingHeader`. Frames reassemble incrementally into a
//!   per-connection buffer that is *recycled* through the dispatch cycle:
//!   the request body `Vec` travels to the worker, comes back holding the
//!   framed response, and swaps with the connection's previous write
//!   buffer — steady state allocates nothing.
//! * **Backpressure** — while a request is in flight the connection's
//!   epoll interest drops to zero (pipelined bytes wait in the kernel
//!   buffer), and a response that overfills the socket buffer arms
//!   `EPOLLOUT` instead of blocking the loop.
//! * **Timer wheel** — a 1024-slot hashed wheel (50 ms ticks) replaces
//!   per-socket `SO_RCVTIMEO`/`SO_SNDTIMEO`; reaping an idle peer is an
//!   O(1) wheel entry, not a parked thread waking from a timeout.
//! * **Completion path** — workers push finished responses onto a queue
//!   and nudge the loop through an [`crate::epoll::EventFd`]; the loop
//!   never blocks on anything but `epoll_wait`.
//! * **Flood identity** — identical to the thread front end: the guard
//!   key is `ReputationDb::pseudonym_tag` of the peer IP, computed once
//!   at accept; the raw address goes no further (§2.2).
//!
//! Everything is accounted in the same [`ServerStats`] the thread front
//! end uses (the differential suite asserts both front ends tell the same
//! story), plus reactor-specific series in the obs registry:
//! `softrep_reactor_open_connections`, `softrep_reactor_wakeups_total`,
//! `softrep_reactor_ready_events`, `softrep_reactor_dispatch_us`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use softrep_obs::metrics::{Counter, Gauge, Histogram};
use softrep_obs::span;
use softrep_obs::time::Stopwatch;
use softrep_proto::framing::{encode_frame_into, MAX_FRAME_LEN};
use softrep_proto::{Request, Response};

use crate::epoll::{self, Epoll, Event, EventFd};
use crate::handler::ReputationServer;
use crate::pool::DispatchPool;
use crate::stats::{ServerStats, StatsSnapshot};
use crate::tcp::{request_spans, TcpServerConfig};

/// Wheel granularity. Deadlines round up to the next tick, so an eviction
/// lands within one tick after the configured timeout.
const TICK_MS: u64 = 50;
/// Hashed-wheel slot count; the horizon (slots × tick ≈ 51 s) only bounds
/// how often a far-out entry is re-bucketed, not the deadline range.
const WHEEL_SLOTS: u64 = 1024;
/// Epoll events drained per wakeup.
const EVENTS_PER_WAKE: usize = 1024;
/// Buffers larger than this shrink once a request cycle completes, so one
/// oversized frame does not pin its high-water mark forever.
const BUF_KEEP: usize = 16 * 1024;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;
/// "No deadline" sentinel tick.
const NEVER: u64 = u64::MAX;

/// A request handed to the dispatch pool.
struct DispatchJob {
    token: u64,
    /// The reassembled frame body (validated UTF-8 before dispatch);
    /// recycled into the framed response buffer by the worker.
    body: Vec<u8>,
    peer_tag: Arc<str>,
    started: Stopwatch,
}

/// A finished response travelling back to the event loop.
struct Completion {
    token: u64,
    /// Framed response bytes (header + body), ready to write. Empty means
    /// the worker had nothing valid to send and the connection must close.
    buf: Vec<u8>,
    started: Stopwatch,
}

/// The worker→loop channel: a mutexed vector plus an eventfd nudge.
struct CompletionQueue {
    ready: Mutex<Vec<Completion>>,
    waker: EventFd,
}

impl CompletionQueue {
    fn push(&self, done: Completion) {
        self.ready.lock().push(done);
        // Signal outside the lock; a failed write leaves the 50 ms tick
        // as the fallback wakeup.
        let _ = self.waker.signal();
    }

    fn drain_into(&self, out: &mut Vec<Completion>) {
        out.clear();
        let mut ready = self.ready.lock();
        std::mem::swap(&mut *ready, out);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating the 4-byte length header.
    ReadingHeader,
    /// Accumulating `body.len()` body bytes (`body` is pre-sized).
    ReadingBody,
    /// A request is with the dispatch pool; interest is zero.
    Dispatched,
    /// Writing the framed response; `EPOLLOUT` armed when the socket
    /// buffer fills.
    Writing,
}

struct Conn {
    stream: TcpStream,
    peer_tag: Arc<str>,
    state: ConnState,
    header: [u8; 4],
    header_got: usize,
    /// Frame body reassembly buffer, sized to the declared length once the
    /// header completes. Travels to the worker at dispatch.
    body: Vec<u8>,
    body_got: usize,
    /// The framed response being written (recycled from the previous
    /// request's body buffer).
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Tick at which the connection is evicted ([`NEVER`] = none).
    deadline: u64,
    /// Tick of this connection's newest wheel entry ([`NEVER`] = none);
    /// entries with any other tick are stale and dropped when they fire.
    scheduled: u64,
    /// The epoll interest currently armed.
    interest: u32,
    /// Close once the in-flight response finishes (drain mode).
    close_after_write: bool,
}

enum ReadOutcome {
    /// Made progress (or hit `WouldBlock`); connection still open.
    Continue,
    /// A complete frame is in `body`.
    FrameReady,
    /// Clean EOF at a frame boundary.
    CleanClose,
    /// Mid-frame EOF, I/O error, or oversized header.
    Broken,
}

enum WriteOutcome {
    Finished,
    Blocked,
    Broken,
}

/// A hashed timer wheel: `(token, tick)` entries, lazily cancelled by
/// comparing the entry tick against the connection's `scheduled` field.
struct TimerWheel {
    slots: Vec<Vec<(u64, u64)>>,
    cursor: u64,
    /// Scratch for re-bucketed entries, reused across advances.
    pending: Vec<(u64, u64)>,
}

impl TimerWheel {
    fn new() -> Self {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            pending: Vec::new(),
        }
    }

    fn insert(&mut self, token: u64, tick: u64) {
        let idx = (tick % WHEEL_SLOTS) as usize;
        if let Some(slot) = self.slots.get_mut(idx) {
            slot.push((token, tick));
        }
    }

    /// Advance to `now`, draining every slot passed. Expired tokens are
    /// appended to `expired`; live entries whose connection now has a
    /// later deadline re-bucket themselves at that deadline.
    fn advance(&mut self, now: u64, conns: &mut HashMap<u64, Conn>, expired: &mut Vec<u64>) {
        if now <= self.cursor {
            return;
        }
        // Visit each slot at most once per advance, even after a long
        // stall (e.g. a suspended machine): the wheel is a ring.
        let steps = (now - self.cursor).min(WHEEL_SLOTS);
        for step in 1..=steps {
            let tick = self.cursor + step;
            let idx = (tick % WHEEL_SLOTS) as usize;
            let mut drained = match self.slots.get_mut(idx) {
                Some(slot) => std::mem::take(slot),
                None => continue,
            };
            for (token, entry_tick) in drained.drain(..) {
                if entry_tick > now {
                    // Bucketed for a future lap of the ring: keep it.
                    self.pending.push((token, entry_tick));
                    continue;
                }
                let Some(conn) = conns.get_mut(&token) else { continue };
                if conn.scheduled != entry_tick {
                    continue; // stale entry; a newer one exists
                }
                if conn.deadline == NEVER {
                    conn.scheduled = NEVER;
                } else if conn.deadline <= now {
                    conn.scheduled = NEVER;
                    expired.push(token);
                } else {
                    // Deadline was pushed out since this entry was filed
                    // (the common keep-alive case): one re-bucket, no new
                    // allocation, no duplicate entries.
                    conn.scheduled = conn.deadline;
                    self.pending.push((token, conn.deadline));
                }
            }
            // Give the slot its capacity back before re-bucketing, since a
            // re-bucketed entry may hash right back into this slot.
            if let Some(slot) = self.slots.get_mut(idx) {
                *slot = drained;
            }
            let mut pending = std::mem::take(&mut self.pending);
            for (token, tick) in pending.drain(..) {
                let idx = (tick % WHEEL_SLOTS) as usize;
                if let Some(slot) = self.slots.get_mut(idx) {
                    slot.push((token, tick));
                }
            }
            self.pending = pending;
        }
        self.cursor = now;
    }
}

/// Reactor-specific observability series, registered eagerly at bind so
/// `/metrics` exposes them (at zero) before the first connection.
struct ReactorMetrics {
    open: Arc<Gauge>,
    wakeups: Arc<Counter>,
    ready_events: Arc<Histogram>,
    dispatch_us: Arc<Histogram>,
}

impl ReactorMetrics {
    fn register() -> Self {
        let registry = softrep_obs::registry();
        ReactorMetrics {
            open: registry.gauge("softrep_reactor_open_connections"),
            wakeups: registry.counter("softrep_reactor_wakeups_total"),
            ready_events: registry.histogram("softrep_reactor_ready_events"),
            dispatch_us: registry.histogram("softrep_reactor_dispatch_us"),
        }
    }
}

/// A running epoll-reactor server. Serves the same framed XML protocol as
/// [`crate::tcp::TcpServer`] with the same stats accounting; select
/// between them with [`crate::tcp::FrontendServer`].
pub struct ReactorServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<CompletionQueue>,
    loop_thread: Option<JoinHandle<()>>,
    stats: Arc<ServerStats>,
}

impl ReactorServer {
    /// Bind `addr` and serve `server` with [`TcpServerConfig::default`]
    /// until [`ReactorServer::shutdown`].
    pub fn spawn(server: Arc<ReputationServer>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        ReactorServer::spawn_with(server, addr, TcpServerConfig::default())
    }

    /// Bind `addr` and serve `server` with explicit tuning knobs.
    /// `config.max_open_connections` bounds concurrent connections and
    /// `config.dispatch_workers` sizes the handler pool;
    /// `config.max_connections` (the thread front end's worker bound) is
    /// ignored here.
    pub fn spawn_with(
        server: Arc<ReputationServer>,
        addr: impl ToSocketAddrs,
        config: TcpServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // Register every series the reactor emits before traffic exists.
        let metrics = ReactorMetrics::register();
        let _ = request_spans();

        let shutdown = Arc::new(AtomicBool::new(false));
        let queue =
            Arc::new(CompletionQueue { ready: Mutex::new(Vec::new()), waker: EventFd::new()? });
        let stats = server.stats_handle();

        let pool = {
            let queue = Arc::clone(&queue);
            let server = Arc::clone(&server);
            DispatchPool::new(config.dispatch_workers, "softrep-reactor-worker", move |job| {
                run_dispatch_job(&server, &queue, job)
            })?
        };

        let epoll = Epoll::new(EVENTS_PER_WAKE)?;
        epoll.add(listener.as_raw_fd(), epoll::EV_READ, TOKEN_LISTENER)?;
        epoll.add(queue.waker.raw(), epoll::EV_READ, TOKEN_WAKER)?;

        let loop_shutdown = Arc::clone(&shutdown);
        let loop_queue = Arc::clone(&queue);
        let loop_stats = Arc::clone(&stats);
        let loop_thread =
            std::thread::Builder::new().name("softrep-reactor".to_string()).spawn(move || {
                let mut reactor = Reactor {
                    epoll,
                    listener,
                    server,
                    config,
                    stats: loop_stats,
                    queue: loop_queue,
                    shutdown: loop_shutdown,
                    metrics,
                    pool: Some(pool),
                    conns: HashMap::new(),
                    wheel: TimerWheel::new(),
                    clock: Stopwatch::start(),
                    next_token: TOKEN_FIRST_CONN,
                    draining: false,
                    drain_end: NEVER,
                    listener_muted_until: 0,
                    overloaded_frame: Vec::new(),
                };
                reactor.run();
                // Loop done: stop accepting jobs, let queued handlers
                // finish, and join the workers.
                if let Some(pool) = reactor.pool.take() {
                    pool.shutdown();
                }
            })?;

        Ok(ReactorServer { local_addr, shutdown, queue, loop_thread: Some(loop_thread), stats })
    }

    /// The bound address (use port 0 to get an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A consistent snapshot of the transport counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// A handle to the live counters, usable after shutdown consumes the
    /// server.
    pub fn stats_handle(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Connections currently open on the reactor.
    pub fn active_connections(&self) -> usize {
        self.stats.snapshot().active as usize
    }

    /// Stop accepting, answer in-flight requests up to the configured
    /// drain deadline, force-close stragglers, and join the event loop and
    /// every dispatch worker.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        let Some(handle) = self.loop_thread.take() else {
            return; // already shut down
        };
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.queue.waker.signal();
        let _ = handle.join();
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Decode, handle, and re-encode one request on a dispatch worker. The
/// body buffer is recycled into the framed response, so the worker
/// allocates nothing on the frame path (the `Response` encoding itself is
/// protocol work, not framing).
fn run_dispatch_job(server: &ReputationServer, queue: &CompletionQueue, job: DispatchJob) {
    let DispatchJob { token, mut body, peer_tag, started } = job;
    // Every request gets a process-unique id (slow-op attribution); the
    // latency span itself is 1-in-N sampled — same policy as the thread
    // front end.
    let _scope = span::RequestScope::enter(span::next_request_id());
    let timer = request_spans().maybe_start();
    let response = match std::str::from_utf8(&body) {
        Ok(text) => match Request::decode(text) {
            Ok(request) => server.handle(&request, &peer_tag),
            Err(e) => Response::error("bad-request", e.to_string()),
        },
        // The loop validated UTF-8 before dispatch; a mismatch here can
        // only mean corruption, so send nothing and close.
        Err(_) => {
            body.clear();
            queue.push(Completion { token, buf: body, started });
            return;
        }
    };
    let encoded = response.encode();
    drop(timer);
    if encode_frame_into(&encoded, &mut body).is_err() {
        // Response larger than a frame allows: nothing valid to send.
        body.clear();
    }
    queue.push(Completion { token, buf: body, started });
}

/// The event loop's owned state.
struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    server: Arc<ReputationServer>,
    config: TcpServerConfig,
    stats: Arc<ServerStats>,
    queue: Arc<CompletionQueue>,
    shutdown: Arc<AtomicBool>,
    metrics: ReactorMetrics,
    /// `Some` while serving; taken after the loop exits to join workers.
    pool: Option<DispatchPool<DispatchJob>>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    clock: Stopwatch,
    next_token: u64,
    draining: bool,
    drain_end: u64,
    /// Tick until which the accept path stays muted after a transient
    /// accept failure (fd exhaustion), so level-triggered readiness does
    /// not spin the loop.
    listener_muted_until: u64,
    /// Pre-encoded `overloaded` shed frame, built once.
    overloaded_frame: Vec<u8>,
}

impl Reactor {
    fn now_tick(&self) -> u64 {
        self.clock.elapsed_micros() / (TICK_MS * 1000)
    }

    fn ticks_for(d: Duration) -> u64 {
        // Round up so a deadline never fires early.
        (d.as_millis() as u64).div_ceil(TICK_MS).max(1)
    }

    /// File (or refresh) the connection's eviction deadline. At most one
    /// live wheel entry per connection: pushing a deadline *out* leaves
    /// the existing entry to re-bucket itself when it fires; only pulling
    /// a deadline *in* files a new entry (and stales the old one).
    fn schedule(wheel: &mut TimerWheel, conn: &mut Conn, token: u64, deadline: u64) {
        conn.deadline = deadline;
        if deadline == NEVER {
            return;
        }
        if conn.scheduled == NEVER || deadline < conn.scheduled {
            conn.scheduled = deadline;
            wheel.insert(token, deadline);
        }
    }

    fn run(&mut self) {
        let overloaded =
            Response::error("overloaded", "server is at connection capacity; retry later").encode();
        let mut frame = Vec::new();
        if encode_frame_into(&overloaded, &mut frame).is_ok() {
            self.overloaded_frame = frame;
        }

        let mut events: Vec<Event> = Vec::new();
        let mut completions: Vec<Completion> = Vec::new();
        let mut expired: Vec<u64> = Vec::new();

        loop {
            let wait_ms = TICK_MS.min(i32::MAX as u64) as i32;
            let ready = match self.epoll.wait(&mut events, wait_ms) {
                Ok(n) => n,
                Err(_) => {
                    // epoll itself failing is unrecoverable for the loop;
                    // close everything and exit rather than spin.
                    self.force_close_all();
                    return;
                }
            };
            self.metrics.wakeups.inc();
            self.metrics.ready_events.record(ready as u64);

            if self.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }

            // Pull the event list out so &mut self methods can run per
            // event; put it back afterwards to keep its capacity.
            let batch = std::mem::take(&mut events);
            for event in &batch {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {
                        self.queue.waker.drain();
                        self.queue.drain_into(&mut completions);
                        for done in completions.drain(..) {
                            self.install_completion(done);
                        }
                    }
                    token => self.conn_ready(token, event),
                }
            }
            events = batch;

            // Timers after I/O: a read that just arrived refreshes its
            // deadline before the wheel can evict it.
            let now = self.now_tick();
            expired.clear();
            self.wheel.advance(now, &mut self.conns, &mut expired);
            for token in expired.drain(..) {
                self.stats.record_timed_out();
                self.close_conn(token);
            }

            if self.draining {
                if self.conns.is_empty() {
                    return;
                }
                if now >= self.drain_end {
                    self.force_close_all();
                    return;
                }
            }
        }
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_end = self.now_tick() + Self::ticks_for(self.config.drain_deadline);
        // Stop accepting for good.
        let _ = self.epoll.delete(self.listener.as_raw_fd());
        self.listener_muted_until = NEVER;
        // Idle keep-alive peers (no frame in progress) close now; anything
        // mid-request gets until the drain deadline, and the answer it is
        // waiting on becomes the last frame it sees.
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::ReadingHeader && c.header_got == 0)
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
        for conn in self.conns.values_mut() {
            conn.close_after_write = true;
        }
    }

    fn force_close_all(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }

    fn accept_ready(&mut self) {
        if self.draining || self.now_tick() < self.listener_muted_until {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => self.admit(stream, peer),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transient failure (e.g. fd exhaustion): mute the
                    // accept path briefly instead of spinning on
                    // level-triggered readiness.
                    self.listener_muted_until = self.now_tick() + 2;
                    return;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream, peer: SocketAddr) {
        if self.conns.len() >= self.config.max_open_connections.max(1) {
            // Shed load explicitly: tell the peer why, then close. The
            // write is nonblocking best-effort; a peer with no socket
            // buffer room just sees the close.
            self.stats.record_rejected_overload();
            let _ = stream.set_nonblocking(true);
            let mut w = &stream;
            let _ = w.write(&self.overloaded_frame);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return; // dead on arrival; never admitted, never counted
        }
        // The flood-guard identity is a pseudonymized tag of the peer IP
        // only — see module docs. The raw address stops here.
        let peer_tag: Arc<str> =
            Arc::from(self.server.db().pseudonym_tag("peer", &peer.ip().to_string()));
        let token = self.next_token;
        self.next_token = self.next_token.wrapping_add(1);
        let interest = epoll::EV_READ | epoll::EV_RDHUP;
        if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
            return; // registration failed; connection dropped unserved
        }
        let deadline = self.now_tick() + Self::ticks_for(self.config.read_timeout);
        let mut conn = Conn {
            stream,
            peer_tag,
            state: ConnState::ReadingHeader,
            header: [0u8; 4],
            header_got: 0,
            body: Vec::new(),
            body_got: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            deadline: NEVER,
            scheduled: NEVER,
            interest,
            close_after_write: false,
        };
        Self::schedule(&mut self.wheel, &mut conn, token, deadline);
        self.conns.insert(token, conn);
        self.stats.record_accepted();
        self.metrics.open.set(self.conns.len() as u64);
        // Bytes may already be queued on the fresh socket; level-triggered
        // epoll reports them on the next wait.
    }

    fn conn_ready(&mut self, token: u64, event: &Event) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        match conn.state {
            ConnState::ReadingHeader | ConnState::ReadingBody => {
                if event.readable() || event.closed() {
                    self.read_ready(token);
                }
            }
            ConnState::Writing => {
                if event.writable() || event.closed() {
                    self.write_ready(token);
                }
            }
            // Interest is zero while dispatched; hangup/error readiness
            // (always reported) resolves once the response tries to write.
            ConnState::Dispatched => {}
        }
    }

    fn read_ready(&mut self, token: u64) {
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            read_into_conn(conn)
        };
        match outcome {
            ReadOutcome::Continue => {
                // Progress refreshes the idle deadline.
                let deadline = self.now_tick() + Self::ticks_for(self.config.read_timeout);
                let wheel = &mut self.wheel;
                if let Some(conn) = self.conns.get_mut(&token) {
                    Self::schedule(wheel, conn, token, deadline);
                }
            }
            ReadOutcome::FrameReady => self.dispatch(token),
            ReadOutcome::CleanClose | ReadOutcome::Broken => self.close_conn(token),
        }
    }

    fn dispatch(&mut self, token: u64) {
        let epoll = &self.epoll;
        let job = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let body = std::mem::take(&mut conn.body);
            // Frame bodies must be UTF-8; the thread front end drops the
            // connection on a NotUtf8 frame and the reactor matches it,
            // pre-dispatch, so workers only ever see valid text.
            if std::str::from_utf8(&body).is_err() {
                None
            } else {
                conn.state = ConnState::Dispatched;
                conn.deadline = NEVER;
                // Zero interest while the request is in flight: pipelined
                // frames wait in the kernel buffer (sequential
                // per-connection semantics, same as the thread front end).
                set_interest(epoll, conn, token, 0);
                let started = Stopwatch::start();
                Some(DispatchJob { token, body, peer_tag: Arc::clone(&conn.peer_tag), started })
            }
        };
        let Some(job) = job else {
            self.close_conn(token);
            return;
        };
        let submitted = self.pool.as_ref().is_some_and(|pool| pool.submit(job));
        if !submitted {
            // Submission only fails after shutdown; drain closes the
            // connection anyway.
            self.close_conn(token);
        }
    }

    fn install_completion(&mut self, done: Completion) {
        let Completion { token, buf, started } = done;
        self.metrics.dispatch_us.record(started.elapsed_micros());
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // evicted or force-closed while the handler ran
        };
        if buf.is_empty() {
            // The worker had nothing valid to send: drop the connection.
            self.close_conn(token);
            return;
        }
        // Buffer rotation: the previous write buffer becomes the next read
        // buffer; the completed response becomes the write buffer.
        conn.body = std::mem::replace(&mut conn.write_buf, buf);
        conn.body.clear();
        conn.write_pos = 0;
        conn.state = ConnState::Writing;
        self.write_ready(token);
    }

    fn write_ready(&mut self, token: u64) {
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            pump_writes(conn)
        };
        match outcome {
            WriteOutcome::Finished => {
                self.stats.record_request_served();
                if self.conns.get(&token).is_some_and(|c| c.close_after_write) {
                    self.close_conn(token);
                    return;
                }
                let deadline = self.now_tick() + Self::ticks_for(self.config.read_timeout);
                let epoll = &self.epoll;
                let wheel = &mut self.wheel;
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::ReadingHeader;
                    conn.header_got = 0;
                    conn.body_got = 0;
                    conn.write_pos = 0;
                    // One oversized frame must not pin its high-water mark
                    // for the connection's lifetime.
                    conn.body.clear();
                    conn.body.shrink_to(BUF_KEEP);
                    conn.write_buf.shrink_to(BUF_KEEP);
                    set_interest(epoll, conn, token, epoll::EV_READ | epoll::EV_RDHUP);
                    Self::schedule(wheel, conn, token, deadline);
                }
            }
            WriteOutcome::Blocked => {
                // Backpressure: arm EPOLLOUT and give the peer the write
                // deadline to make room.
                let deadline = self.now_tick() + Self::ticks_for(self.config.write_timeout);
                let epoll = &self.epoll;
                let wheel = &mut self.wheel;
                if let Some(conn) = self.conns.get_mut(&token) {
                    set_interest(epoll, conn, token, epoll::EV_WRITE);
                    Self::schedule(wheel, conn, token, deadline);
                }
            }
            WriteOutcome::Broken => self.close_conn(token),
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.stats.record_closed();
            self.metrics.open.set(self.conns.len() as u64);
        }
    }
}

/// Arm `interest` on the connection's socket, remembering what is armed so
/// redundant `epoll_ctl` calls are skipped.
fn set_interest(epoll: &Epoll, conn: &mut Conn, token: u64, interest: u32) {
    if conn.interest != interest {
        let _ = epoll.modify(conn.stream.as_raw_fd(), interest, token);
        conn.interest = interest;
    }
}

/// Push response bytes until done, `WouldBlock`, or a dead peer.
fn pump_writes(conn: &mut Conn) -> WriteOutcome {
    loop {
        let Some(rest) = conn.write_buf.get(conn.write_pos..) else {
            return WriteOutcome::Finished;
        };
        if rest.is_empty() {
            return WriteOutcome::Finished;
        }
        let mut w = &conn.stream;
        match w.write(rest) {
            Ok(0) => return WriteOutcome::Broken,
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return WriteOutcome::Blocked,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return WriteOutcome::Broken,
        }
    }
}

/// Pump nonblocking reads through the header/body state machine until
/// `WouldBlock`, a complete frame, or a terminal condition.
fn read_into_conn(conn: &mut Conn) -> ReadOutcome {
    loop {
        match conn.state {
            ConnState::ReadingHeader => {
                let Some(dst) = conn.header.get_mut(conn.header_got..) else {
                    return ReadOutcome::Broken; // unreachable: header_got <= 4
                };
                if dst.is_empty() {
                    return ReadOutcome::Broken; // unreachable by construction
                }
                let mut r = &conn.stream;
                match r.read(dst) {
                    Ok(0) if conn.header_got == 0 => return ReadOutcome::CleanClose,
                    Ok(0) => return ReadOutcome::Broken, // mid-header EOF
                    Ok(n) => {
                        conn.header_got += n;
                        if conn.header_got == 4 {
                            let len = u32::from_be_bytes(conn.header);
                            if len > MAX_FRAME_LEN {
                                return ReadOutcome::Broken; // refuse, never allocate
                            }
                            conn.body.clear();
                            conn.body.resize(len as usize, 0);
                            conn.body_got = 0;
                            conn.header_got = 0;
                            if len == 0 {
                                return ReadOutcome::FrameReady;
                            }
                            conn.state = ConnState::ReadingBody;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        return ReadOutcome::Continue
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return ReadOutcome::Broken,
                }
            }
            ConnState::ReadingBody => {
                let Some(dst) = conn.body.get_mut(conn.body_got..) else {
                    return ReadOutcome::Broken; // unreachable: body_got <= len
                };
                if dst.is_empty() {
                    conn.state = ConnState::ReadingHeader;
                    return ReadOutcome::FrameReady;
                }
                let mut r = &conn.stream;
                match r.read(dst) {
                    Ok(0) => return ReadOutcome::Broken, // mid-body EOF
                    Ok(n) => {
                        conn.body_got += n;
                        if conn.body_got == conn.body.len() {
                            conn.state = ConnState::ReadingHeader;
                            return ReadOutcome::FrameReady;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        return ReadOutcome::Continue
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return ReadOutcome::Broken,
                }
            }
            ConnState::Dispatched | ConnState::Writing => return ReadOutcome::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrep_core::clock::SimClock;
    use softrep_core::db::ReputationDb;

    use crate::handler::ServerConfig;
    use crate::tcp::TcpClient;

    fn spawn_reactor(config: TcpServerConfig) -> ReactorServer {
        let clock = SimClock::new();
        let db = ReputationDb::in_memory("reactor-pepper");
        let server = Arc::new(ReputationServer::new(
            db,
            Arc::new(clock),
            ServerConfig { puzzle_difficulty: 2, ..ServerConfig::default() },
            7,
        ));
        ReactorServer::spawn_with(server, "127.0.0.1:0", config).unwrap()
    }

    #[test]
    fn serves_keepalive_requests_end_to_end() {
        let reactor = spawn_reactor(TcpServerConfig::default());
        let mut client = TcpClient::connect(reactor.local_addr()).unwrap();
        for _ in 0..5 {
            let resp =
                client.call(&Request::QuerySoftware { software_id: "ab".repeat(20) }).unwrap();
            assert!(matches!(resp, Response::UnknownSoftware { .. }));
        }
        drop(client);
        // The loop thread records `served` just after the response bytes
        // reach the kernel; the client can observe its reply a moment
        // earlier, so give the counter a bounded beat to settle.
        let sw = Stopwatch::start();
        while reactor.stats().requests_served < 5 && sw.elapsed_micros() < 2_000_000 {
            std::thread::yield_now();
        }
        let stats = reactor.stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.requests_served, 5);
        reactor.shutdown();
    }

    #[test]
    fn sheds_beyond_max_open_connections_with_an_overloaded_frame() {
        let config = TcpServerConfig { max_open_connections: 2, ..TcpServerConfig::default() };
        let reactor = spawn_reactor(config);
        let addr = reactor.local_addr();
        // Two admitted connections, held open with a served request each.
        let mut a = TcpClient::connect(addr).unwrap();
        let mut b = TcpClient::connect(addr).unwrap();
        for c in [&mut a, &mut b] {
            let resp = c.call(&Request::QuerySoftware { software_id: "cd".repeat(20) }).unwrap();
            assert!(matches!(resp, Response::UnknownSoftware { .. }));
        }
        // The third sees an explicit overloaded frame (or, if it races the
        // accept loop, at least a prompt close — never a served request).
        let mut c = TcpClient::connect(addr).unwrap();
        c.set_timeouts(Some(Duration::from_secs(5)), Some(Duration::from_secs(5))).unwrap();
        match c.call(&Request::GetPuzzle) {
            Ok(Response::Error { code, .. }) => assert_eq!(code, "overloaded"),
            Ok(other) => panic!("shed connection must not be served: {other:?}"),
            Err(e) => assert!(e.is_disconnect(), "expected disconnect, got {e:?}"),
        }
        let sw = Stopwatch::start();
        while reactor.stats().rejected_overload < 1 && sw.elapsed_micros() < 2_000_000 {
            std::thread::yield_now();
        }
        assert_eq!(reactor.stats().rejected_overload, 1);
        reactor.shutdown();
    }

    #[test]
    fn shutdown_answers_in_flight_and_closes_idle_peers() {
        let reactor = spawn_reactor(TcpServerConfig {
            drain_deadline: Duration::from_millis(500),
            ..TcpServerConfig::default()
        });
        let addr = reactor.local_addr();
        let mut served = TcpClient::connect(addr).unwrap();
        let resp = served.call(&Request::QuerySoftware { software_id: "ef".repeat(20) }).unwrap();
        assert!(matches!(resp, Response::UnknownSoftware { .. }));
        let _idle = TcpClient::connect(addr).unwrap();

        let stats = reactor.stats_handle();
        reactor.shutdown();
        let s = stats.snapshot();
        assert_eq!(s.active, 0, "shutdown must close every connection: {s:?}");
        assert_eq!(s.accepted, s.closed);
    }

    #[test]
    fn oversized_header_drops_the_connection_without_allocating() {
        let reactor = spawn_reactor(TcpServerConfig::default());
        let mut stream = TcpStream::connect(reactor.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Declare a 2 GiB frame: the reactor must refuse and close.
        stream.write_all(&(2u32 << 30).to_be_bytes()).unwrap();
        let mut sink = [0u8; 16];
        let n = stream.read(&mut sink).unwrap_or(0);
        assert_eq!(n, 0, "oversized frame must be met with a close, not bytes");
        reactor.shutdown();
    }

    #[test]
    fn timer_wheel_evicts_only_expired_entries_and_honours_refreshes() {
        fn conn_stub(deadline: u64, scheduled: u64) -> Conn {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            Conn {
                stream,
                peer_tag: Arc::from("t"),
                state: ConnState::ReadingHeader,
                header: [0u8; 4],
                header_got: 0,
                body: Vec::new(),
                body_got: 0,
                write_buf: Vec::new(),
                write_pos: 0,
                deadline,
                scheduled,
                interest: 0,
                close_after_write: false,
            }
        }

        let mut wheel = TimerWheel::new();
        let mut conns = HashMap::new();
        // Token 1 expires at tick 3; token 2 was filed at 3 but its
        // deadline has since been pushed to 10 (keep-alive refresh).
        conns.insert(1u64, conn_stub(3, 3));
        conns.insert(2u64, conn_stub(10, 3));
        wheel.insert(1, 3);
        wheel.insert(2, 3);

        let mut expired = Vec::new();
        wheel.advance(5, &mut conns, &mut expired);
        assert_eq!(expired, vec![1]);
        assert_eq!(conns.get(&2).map(|c| c.scheduled), Some(10), "refresh re-buckets");

        // The re-bucketed entry fires at its true deadline.
        expired.clear();
        conns.remove(&1);
        wheel.advance(10, &mut conns, &mut expired);
        assert_eq!(expired, vec![2]);

        // A stale entry (scheduled moved past it) is dropped silently, and
        // a wheel-lap-future entry survives a full ring traversal.
        expired.clear();
        conns.insert(3u64, conn_stub(WHEEL_SLOTS * 3, WHEEL_SLOTS * 3));
        wheel.insert(3, WHEEL_SLOTS * 3);
        wheel.advance(WHEEL_SLOTS * 2, &mut conns, &mut expired);
        assert!(expired.is_empty(), "future-lap entry must not fire early");
        wheel.advance(WHEEL_SLOTS * 3, &mut conns, &mut expired);
        assert_eq!(expired, vec![3]);
    }
}
