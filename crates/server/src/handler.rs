//! The request dispatcher: protocol messages → reputation database.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_core::clock::{Clock, Timestamp};
use softrep_core::db::{ReputationDb, SoftwareReport};
use softrep_core::error::CoreError;
use softrep_crypto::bignum::BigUint;
use softrep_crypto::rsa::{RsaKeypair, RsaSignature};
use softrep_crypto::sha256::Sha256;
use softrep_proto::message::{CommentInfo, SoftwareInfo};
use softrep_proto::{Request, Response};

use crate::flood::FloodGuard;
use crate::puzzle_gate::{PuzzleGate, PuzzleRejection};
use crate::repl::ReplServerState;
use crate::session::SessionManager;
use crate::stats::ServerStats;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Leading zero bits required of registration puzzles. 0 disables the
    /// puzzle requirement entirely (the ablation arm of experiment D3).
    pub puzzle_difficulty: u8,
    /// Session lifetime.
    pub session_ttl_secs: u64,
    /// Flood-guard burst capacity per identity.
    pub flood_capacity: u32,
    /// Flood-guard sustained requests/hour per identity.
    pub flood_refill_per_hour: u32,
    /// Upper bound on identities the flood guard tracks at once; beyond
    /// it, stale (fully refilled) buckets are evicted so identity churn
    /// cannot exhaust server memory.
    pub flood_max_identities: usize,
    /// Maximum comments returned in a software report.
    pub max_comments_in_report: usize,
    /// Shared secret authenticating runtime analyzers (§5 evidence
    /// submission). `None` disables the evidence endpoint.
    pub analyzer_token: Option<String>,
    /// Modulus size for the §5 pseudonym-credential RSA key. 0 (the
    /// default) disables the pseudonym endpoints and skips keygen at
    /// startup; the deployment binary enables 1024.
    pub pseudonym_key_bits: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            puzzle_difficulty: 12,
            session_ttl_secs: 24 * 3_600,
            flood_capacity: 60,
            flood_refill_per_hour: 120,
            flood_max_identities: crate::flood::DEFAULT_MAX_TRACKED,
            max_comments_in_report: 10,
            analyzer_token: None,
            pseudonym_key_bits: 0,
        }
    }
}

/// The reputation server: wraps the database with sessions, puzzles and
/// flood control, and speaks the wire protocol's typed messages.
pub struct ReputationServer {
    db: ReputationDb,
    clock: Arc<dyn Clock>,
    sessions: SessionManager,
    puzzles: PuzzleGate,
    flood: FloodGuard,
    config: ServerConfig,
    rng: Mutex<StdRng>,
    pseudonym_key: Option<RsaKeypair>,
    stats: Arc<ServerStats>,
    repl: ReplServerState,
}

impl ReputationServer {
    /// Assemble a server. `rng_seed` makes simulations reproducible; pass
    /// entropy-derived seeds in production.
    pub fn new(
        db: ReputationDb,
        clock: Arc<dyn Clock>,
        config: ServerConfig,
        rng_seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let pseudonym_key = (config.pseudonym_key_bits > 0)
            .then(|| RsaKeypair::generate(config.pseudonym_key_bits.max(64), &mut rng));
        ReputationServer {
            sessions: SessionManager::new(config.session_ttl_secs),
            puzzles: PuzzleGate::new(config.puzzle_difficulty),
            flood: FloodGuard::with_limits(
                config.flood_capacity,
                config.flood_refill_per_hour,
                config.flood_max_identities,
            ),
            rng: Mutex::new(rng),
            db,
            clock,
            config,
            pseudonym_key,
            stats: Arc::new(ServerStats::new()),
            repl: ReplServerState::default(),
        }
    }

    /// The replication state: role marker, snapshot cache, lag metrics.
    pub fn repl_state(&self) -> &ReplServerState {
        &self.repl
    }

    /// The shared counter sink. The TCP front end records transport events
    /// here, so one snapshot covers both transport and aggregation work.
    pub fn stats_handle(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// The wrapped database (used by simulations for direct inspection).
    pub fn db(&self) -> &ReputationDb {
        &self.db
    }

    /// The server clock.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The flood guard (for experiment metrics).
    pub fn flood_guard(&self) -> &FloodGuard {
        &self.flood
    }

    /// Run periodic maintenance: the 24 h aggregation batch (incremental —
    /// only titles dirtied since the previous batch) and session pruning.
    /// Returns the number of ratings recomputed.
    pub fn tick(&self) -> usize {
        let now = self.clock.now();
        self.sessions.prune(now);
        let before = self.db.aggregation_stats().incremental_runs;
        let recomputed = self.db.run_aggregation_if_due(now).unwrap_or(0);
        if self.db.aggregation_stats().incremental_runs > before {
            self.stats.record_aggregation_incremental(recomputed as u64);
        }
        recomputed
    }

    /// Operator command: run the paper-faithful full batch immediately,
    /// regardless of schedule or dirty set. Returns the number of ratings
    /// recomputed.
    pub fn run_full_aggregation(&self) -> usize {
        let recomputed = self.db.force_aggregation_full(self.clock.now()).unwrap_or(0);
        self.stats.record_aggregation_full(recomputed as u64);
        recomputed
    }

    /// One coherent Prometheus-style snapshot of the whole process: the
    /// obs registry (latency histograms, WAL/fsync/aggregation series)
    /// plus the pre-existing transport, flood, storage, and aggregation
    /// counters rendered as external series.
    pub fn metrics_text(&self) -> String {
        use softrep_obs::metrics::{render_external_counter, render_external_gauge};

        let mut out = softrep_obs::registry().render();

        let transport = self.stats.snapshot();
        render_external_counter(
            &mut out,
            "softrep_server_connections_accepted_total",
            transport.accepted,
        );
        render_external_gauge(&mut out, "softrep_server_connections_active", transport.active);
        render_external_counter(
            &mut out,
            "softrep_server_rejected_overload_total",
            transport.rejected_overload,
        );
        render_external_counter(&mut out, "softrep_server_timed_out_total", transport.timed_out);
        render_external_counter(
            &mut out,
            "softrep_server_requests_served_total",
            transport.requests_served,
        );
        render_external_counter(
            &mut out,
            "softrep_server_connections_closed_total",
            transport.closed,
        );

        let flood = self.flood.stats();
        render_external_gauge(&mut out, "softrep_flood_tracked_identities", flood.tracked as u64);
        render_external_counter(&mut out, "softrep_flood_rejected_total", flood.rejected);
        render_external_counter(&mut out, "softrep_flood_evicted_total", flood.evicted);

        let store = self.db.store_stats();
        render_external_gauge(&mut out, "softrep_store_trees", store.trees as u64);
        render_external_gauge(&mut out, "softrep_store_keys", store.keys as u64);
        render_external_counter(
            &mut out,
            "softrep_store_batches_applied_total",
            store.batches_applied,
        );
        render_external_gauge(
            &mut out,
            "softrep_store_ops_since_compaction",
            store.ops_since_compaction,
        );
        render_external_gauge(&mut out, "softrep_store_wal_bytes", store.wal_bytes);
        render_external_counter(&mut out, "softrep_store_group_commits_total", store.group_commits);
        render_external_counter(&mut out, "softrep_store_fsyncs_saved_total", store.fsyncs_saved);
        render_external_gauge(&mut out, "softrep_store_max_group_depth", store.max_group_depth);
        render_external_counter(&mut out, "softrep_store_wal_rotations_total", store.wal_rotations);

        let agg = self.db.aggregation_stats();
        render_external_counter(
            &mut out,
            "softrep_agg_incremental_runs_total",
            agg.incremental_runs,
        );
        render_external_counter(&mut out, "softrep_agg_full_runs_total", agg.full_runs);
        render_external_counter(
            &mut out,
            "softrep_agg_titles_incremental_total",
            agg.titles_recomputed_incremental,
        );
        render_external_counter(
            &mut out,
            "softrep_agg_titles_full_total",
            agg.titles_recomputed_full,
        );
        render_external_counter(&mut out, "softrep_agg_dirty_marks_total", agg.dirty_marks);
        render_external_counter(
            &mut out,
            "softrep_agg_report_cache_hits_total",
            agg.report_cache_hits,
        );
        render_external_counter(
            &mut out,
            "softrep_agg_report_cache_misses_total",
            agg.report_cache_misses,
        );
        render_external_counter(
            &mut out,
            "softrep_agg_vendor_cache_hits_total",
            agg.vendor_cache_hits,
        );
        render_external_counter(
            &mut out,
            "softrep_agg_vendor_cache_misses_total",
            agg.vendor_cache_misses,
        );
        render_external_gauge(&mut out, "softrep_agg_dirty_titles", self.db.dirty_count() as u64);

        // Seconds since the last aggregation pass. A deployment that has
        // never aggregated reports its full uptime-equivalent (now.0) so
        // the staleness alarm still has a monotone signal to watch.
        let now = self.clock.now();
        let lag = match self.db.last_aggregation() {
            Ok(Some(t)) => now.since(t),
            Ok(None) | Err(_) => now.0,
        };
        render_external_gauge(&mut out, "softrep_agg_lag_seconds", lag);

        let slow = softrep_obs::slow_ops();
        render_external_gauge(&mut out, "softrep_slow_ops_retained", slow.recent().len() as u64);
        render_external_counter(&mut out, "softrep_slow_ops_dropped_total", slow.dropped());
        render_external_gauge(&mut out, "softrep_slow_op_threshold_us", slow.threshold_us());

        // Replication lag (DESIGN.md §15). Rendered on every role: a
        // primary reports zeros, so dashboards and the CI smoke test can
        // depend on the series existing unconditionally.
        let repl = self.repl.metrics();
        render_external_gauge(&mut out, "softrep_repl_lag_entries", repl.lag_entries);
        render_external_gauge(&mut out, "softrep_repl_lag_bytes", repl.lag_bytes);
        render_external_gauge(&mut out, "softrep_repl_applied_seq", repl.applied_seq);
        render_external_counter(&mut out, "softrep_repl_reconnects_total", repl.reconnects);

        out
    }

    /// Handle one request from `source` (a transport-level identity used
    /// only for flood control — never persisted, per §2.2).
    pub fn handle(&self, request: &Request, source: &str) -> Response {
        let now = self.clock.now();
        // Replication polling is machine-to-machine at tailing cadence;
        // the human-scale flood budget would starve it within a minute.
        let is_repl =
            matches!(request, Request::ReplSubscribe { .. } | Request::ReplSnapshot { .. });
        if !is_repl && !self.flood.allow(source, now) {
            return Response::error("throttled", "too many requests; slow down");
        }
        // A read replica answers the read-only subset from its local
        // store; everything else is redirected to the primary with its
        // address, so clients can follow without extra configuration.
        if let Some(primary) = self.repl.replica_of() {
            if !request.is_replica_servable() {
                return Response::NotPrimary { primary: primary.to_string() };
            }
        }
        match request {
            Request::GetPuzzle => {
                let challenge = self.puzzles.issue(&mut *self.rng.lock());
                Response::Puzzle { challenge }
            }
            Request::Register { username, password, email, puzzle_challenge, puzzle_solution } => {
                if self.config.puzzle_difficulty > 0 {
                    match self.puzzles.redeem(puzzle_challenge, *puzzle_solution) {
                        Ok(()) => {}
                        Err(PuzzleRejection::UnknownChallenge) => {
                            return Response::error(
                                "bad-puzzle",
                                "challenge not issued or already used",
                            )
                        }
                        Err(PuzzleRejection::WrongSolution) => {
                            return Response::error("bad-puzzle", "puzzle solution does not verify")
                        }
                    }
                }
                let mut rng = self.rng.lock();
                match self.db.register_user(username, password, email, now, &mut *rng) {
                    Ok(activation_token) => Response::Registered { activation_token },
                    Err(e) => error_response(e),
                }
            }
            Request::Activate { username, token } => match self.db.activate_user(username, token) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(e),
            },
            Request::Login { username, password } => match self.db.login(username, password, now) {
                Ok(()) => {
                    let token = self.sessions.create(username, now, &mut *self.rng.lock());
                    Response::Session { token }
                }
                Err(e) => error_response(e),
            },
            Request::QuerySoftware { software_id } | Request::QueryDetails { software_id } => {
                match self.db.software_report(software_id) {
                    Ok(Some(report)) => Response::Software(self.render_report(report)),
                    Ok(None) => Response::UnknownSoftware { software_id: software_id.clone() },
                    Err(e) => error_response(e),
                }
            }
            Request::RegisterSoftware { software_id, file_name, file_size, company, version } => {
                match self.db.register_software(
                    software_id,
                    file_name,
                    *file_size,
                    company.clone(),
                    version.clone(),
                    now,
                ) {
                    Ok(_) => Response::Ok,
                    Err(e) => error_response(e),
                }
            }
            Request::SubmitVote { session, software_id, score, behaviours } => {
                let Some(username) = self.sessions.resolve(session, now) else {
                    return Response::error("bad-session", "session invalid or expired");
                };
                match self.db.submit_vote(&username, software_id, *score, behaviours.clone(), now) {
                    Ok(()) => Response::Ok,
                    Err(e) => error_response(e),
                }
            }
            Request::SubmitComment { session, software_id, text } => {
                let Some(username) = self.sessions.resolve(session, now) else {
                    return Response::error("bad-session", "session invalid or expired");
                };
                match self.db.submit_comment(&username, software_id, text, now) {
                    Ok(_) => Response::Ok,
                    Err(e) => error_response(e),
                }
            }
            Request::RateComment { session, comment_id, positive } => {
                let Some(username) = self.sessions.resolve(session, now) else {
                    return Response::error("bad-session", "session invalid or expired");
                };
                match self.db.remark_comment(&username, *comment_id, *positive, now) {
                    Ok(()) => Response::Ok,
                    Err(e) => error_response(e),
                }
            }
            Request::QueryVendor { vendor } => match self.db.vendor_report(vendor) {
                Ok(report) => Response::Vendor {
                    vendor: report.vendor,
                    rating: report.rating,
                    software_count: report.software_count,
                },
                Err(e) => error_response(e),
            },
            Request::SubmitEvidence { analyzer_token, software_id, behaviours, analyzer } => {
                let authorised = self.config.analyzer_token.as_deref().is_some_and(|expected| {
                    softrep_crypto::hmac::constant_time_eq(
                        expected.as_bytes(),
                        analyzer_token.as_bytes(),
                    )
                });
                if !authorised {
                    return Response::error("bad-analyzer-token", "evidence submission rejected");
                }
                match self.db.record_evidence(software_id, behaviours.clone(), analyzer, now) {
                    Ok(()) => Response::Ok,
                    Err(e) => error_response(e),
                }
            }
            Request::CreateFeed { session, name } => {
                let Some(username) = self.sessions.resolve(session, now) else {
                    return Response::error("bad-session", "session invalid or expired");
                };
                match self.db.create_feed(name, &username, now) {
                    Ok(()) => Response::Ok,
                    Err(e) => error_response(e),
                }
            }
            Request::PublishFeedEntry { session, feed, software_id, rating, behaviours } => {
                let Some(username) = self.sessions.resolve(session, now) else {
                    return Response::error("bad-session", "session invalid or expired");
                };
                match self.db.publish_feed_entry(
                    &username,
                    feed,
                    software_id,
                    *rating,
                    behaviours.clone(),
                    now,
                ) {
                    Ok(()) => Response::Ok,
                    Err(e) => error_response(e),
                }
            }
            Request::QueryFeedEntry { feed, software_id } => {
                match self.db.feed_entry(feed, software_id) {
                    Ok(Some(entry)) => Response::FeedEntry {
                        feed: entry.feed,
                        software_id: entry.software_id,
                        rating: entry.rating,
                        behaviours: entry.behaviours,
                    },
                    Ok(None) => Response::error("unknown-feed-entry", "no entry for this software"),
                    Err(e) => error_response(e),
                }
            }
            Request::GetPseudonymKey => match &self.pseudonym_key {
                Some(key) => Response::PseudonymKey {
                    n: key.public_key().n.to_hex(),
                    e: key.public_key().e.to_hex(),
                },
                None => Response::error("pseudonyms-disabled", "no pseudonym key configured"),
            },
            Request::BlindSignPseudonym { session, blinded } => {
                let Some(key) = &self.pseudonym_key else {
                    return Response::error("pseudonyms-disabled", "no pseudonym key configured");
                };
                let Some(username) = self.sessions.resolve(session, now) else {
                    return Response::error("bad-session", "session invalid or expired");
                };
                let Some(blinded) = BigUint::from_hex(blinded) else {
                    return Response::error("bad-request", "blinded element is not hex");
                };
                // One credential per member, marked *before* signing so a
                // crash cannot double-issue.
                if let Err(e) = self.db.mark_pseudonym_credential_issued(&username) {
                    return error_response(e);
                }
                Response::BlindSignature { value: key.sign_raw(&blinded).to_hex() }
            }
            Request::RegisterPseudonym { username, password, token, signature } => {
                let Some(key) = &self.pseudonym_key else {
                    return Response::error("pseudonyms-disabled", "no pseudonym key configured");
                };
                let (Some(token_bytes), Some(sig_value)) =
                    (softrep_crypto::hex::decode(token), BigUint::from_hex(signature))
                else {
                    return Response::error("bad-request", "token/signature must be hex");
                };
                if !key.public_key().verify(&token_bytes, &RsaSignature(sig_value)) {
                    return Response::error(
                        "bad-credential",
                        "pseudonym credential does not verify",
                    );
                }
                let token_digest = softrep_crypto::hex::encode(&Sha256::digest(&token_bytes));
                let mut rng = self.rng.lock();
                match self.db.register_pseudonym(username, password, &token_digest, now, &mut *rng)
                {
                    Ok(()) => Response::Ok,
                    Err(e) => error_response(e),
                }
            }
            Request::ReplSubscribe { from_seq, max_entries, max_bytes } => {
                crate::repl::serve_subscribe(self.db.store(), *from_seq, *max_entries, *max_bytes)
            }
            Request::ReplSnapshot { seq, offset } => {
                crate::repl::serve_snapshot(&self.repl, self.db.store(), *seq, *offset)
            }
        }
    }

    fn render_report(&self, report: SoftwareReport) -> SoftwareInfo {
        let (rating, vote_count, behaviours) = match &report.rating {
            Some(r) => (
                Some(r.rating),
                r.vote_count,
                r.behaviours.iter().map(|(b, _)| b.clone()).collect(),
            ),
            None => (None, 0, Vec::new()),
        };
        let verified_behaviours =
            report.evidence.as_ref().map(|e| e.behaviours.clone()).unwrap_or_default();
        SoftwareInfo {
            software_id: report.software.software_id,
            file_name: (!report.software.file_name.is_empty())
                .then(|| report.software.file_name.clone()),
            company: report.software.company,
            version: report.software.version,
            rating,
            vote_count,
            behaviours,
            verified_behaviours,
            comments: report
                .comments
                .into_iter()
                .take(self.config.max_comments_in_report)
                .map(|pc| CommentInfo {
                    id: pc.comment.id,
                    author: pc.comment.author,
                    text: pc.comment.text,
                    remark_score: pc.remark_score,
                })
                .collect(),
        }
    }
}

fn error_response(e: CoreError) -> Response {
    Response::error(e.code(), e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrep_core::clock::SimClock;
    use softrep_crypto::puzzle::Challenge;

    fn server_with(config: ServerConfig) -> (ReputationServer, SimClock) {
        let clock = SimClock::new();
        let db = ReputationDb::in_memory("test-pepper");
        let server = ReputationServer::new(db, Arc::new(clock.clone()), config, 1234);
        (server, clock)
    }

    fn server() -> (ReputationServer, SimClock) {
        server_with(ServerConfig { puzzle_difficulty: 4, ..ServerConfig::default() })
    }

    fn sw_id(tag: u8) -> String {
        format!("{tag:02x}").repeat(20)
    }

    /// Full registration: puzzle → register → activate → login → session.
    fn join(server: &ReputationServer, name: &str) -> String {
        let Response::Puzzle { challenge } = server.handle(&Request::GetPuzzle, name) else {
            panic!("expected puzzle")
        };
        let (solution, _) = Challenge::decode(&challenge).unwrap().solve();
        let resp = server.handle(
            &Request::Register {
                username: name.into(),
                password: "pw".into(),
                email: format!("{name}@example.com"),
                puzzle_challenge: challenge,
                puzzle_solution: solution.nonce,
            },
            name,
        );
        let Response::Registered { activation_token } = resp else {
            panic!("expected registered, got {resp:?}")
        };
        assert_eq!(
            server.handle(
                &Request::Activate { username: name.into(), token: activation_token },
                name
            ),
            Response::Ok
        );
        let Response::Session { token } =
            server.handle(&Request::Login { username: name.into(), password: "pw".into() }, name)
        else {
            panic!("expected session")
        };
        token
    }

    #[test]
    fn full_happy_path_register_vote_query() {
        let (server, _clock) = server();
        let session = join(&server, "alice");

        assert_eq!(
            server.handle(
                &Request::RegisterSoftware {
                    software_id: sw_id(1),
                    file_name: "weatherbar.exe".into(),
                    file_size: 1000,
                    company: Some("Acme".into()),
                    version: Some("1.0".into()),
                },
                "alice"
            ),
            Response::Ok
        );
        assert_eq!(
            server.handle(
                &Request::SubmitVote {
                    session: session.clone(),
                    software_id: sw_id(1),
                    score: 3,
                    behaviours: vec!["popup_ads".into()],
                },
                "alice"
            ),
            Response::Ok
        );
        server.db().force_aggregation(server.now()).unwrap();

        let resp = server.handle(&Request::QuerySoftware { software_id: sw_id(1) }, "bob");
        let Response::Software(info) = resp else { panic!("{resp:?}") };
        assert_eq!(info.rating, Some(3.0));
        assert_eq!(info.vote_count, 1);
        assert_eq!(info.behaviours, vec!["popup_ads".to_string()]);
        assert_eq!(info.company.as_deref(), Some("Acme"));
    }

    #[test]
    fn unknown_software_reported_as_such() {
        let (server, _) = server();
        let resp = server.handle(&Request::QuerySoftware { software_id: sw_id(9) }, "x");
        assert_eq!(resp, Response::UnknownSoftware { software_id: sw_id(9) });
    }

    #[test]
    fn registration_without_valid_puzzle_fails() {
        let (server, _) = server();
        let resp = server.handle(
            &Request::Register {
                username: "eve".into(),
                password: "pw".into(),
                email: "eve@example.com".into(),
                puzzle_challenge: "4:00000000000000000000000000000000".into(),
                puzzle_solution: 0,
            },
            "eve",
        );
        let Response::Error { code, .. } = resp else { panic!("{resp:?}") };
        assert_eq!(code, "bad-puzzle");
    }

    #[test]
    fn puzzle_difficulty_zero_disables_gate() {
        let (server, _) =
            server_with(ServerConfig { puzzle_difficulty: 0, ..ServerConfig::default() });
        let resp = server.handle(
            &Request::Register {
                username: "easy".into(),
                password: "pw".into(),
                email: "easy@example.com".into(),
                puzzle_challenge: String::new(),
                puzzle_solution: 0,
            },
            "easy",
        );
        assert!(matches!(resp, Response::Registered { .. }));
    }

    #[test]
    fn duplicate_email_maps_to_protocol_error() {
        let (server, _) = server();
        join(&server, "alice");
        let Response::Puzzle { challenge } = server.handle(&Request::GetPuzzle, "eve") else {
            panic!()
        };
        let (solution, _) = Challenge::decode(&challenge).unwrap().solve();
        let resp = server.handle(
            &Request::Register {
                username: "eve".into(),
                password: "pw".into(),
                email: "ALICE@example.com".into(), // same address, different case
                puzzle_challenge: challenge,
                puzzle_solution: solution.nonce,
            },
            "eve",
        );
        let Response::Error { code, .. } = resp else { panic!("{resp:?}") };
        assert_eq!(code, "duplicate-email");
    }

    #[test]
    fn votes_require_a_valid_session() {
        let (server, clock) = server();
        let session = join(&server, "alice");
        server.handle(
            &Request::RegisterSoftware {
                software_id: sw_id(1),
                file_name: "a.exe".into(),
                file_size: 1,
                company: None,
                version: None,
            },
            "alice",
        );

        let bogus = server.handle(
            &Request::SubmitVote {
                session: "not-a-session".into(),
                software_id: sw_id(1),
                score: 5,
                behaviours: vec![],
            },
            "alice",
        );
        assert!(matches!(bogus, Response::Error { ref code, .. } if code == "bad-session"));

        // Sessions expire with the clock.
        clock.advance_secs(ServerConfig::default().session_ttl_secs + 1);
        let expired = server.handle(
            &Request::SubmitVote { session, software_id: sw_id(1), score: 5, behaviours: vec![] },
            "alice",
        );
        assert!(matches!(expired, Response::Error { ref code, .. } if code == "bad-session"));
    }

    #[test]
    fn flood_guard_throttles_noisy_sources() {
        let (server, _) = server_with(ServerConfig {
            flood_capacity: 3,
            flood_refill_per_hour: 1,
            puzzle_difficulty: 0,
            ..ServerConfig::default()
        });
        for _ in 0..3 {
            let resp = server.handle(&Request::QuerySoftware { software_id: sw_id(1) }, "10.0.0.1");
            assert!(!matches!(resp, Response::Error { ref code, .. } if code == "throttled"));
        }
        let resp = server.handle(&Request::QuerySoftware { software_id: sw_id(1) }, "10.0.0.1");
        assert!(matches!(resp, Response::Error { ref code, .. } if code == "throttled"));
        // Other sources are unaffected.
        let resp = server.handle(&Request::QuerySoftware { software_id: sw_id(1) }, "10.0.0.2");
        assert!(!matches!(resp, Response::Error { ref code, .. } if code == "throttled"));
    }

    #[test]
    fn tick_runs_aggregation_on_schedule() {
        let (server, clock) = server();
        let session = join(&server, "alice");
        server.handle(
            &Request::RegisterSoftware {
                software_id: sw_id(1),
                file_name: "a.exe".into(),
                file_size: 1,
                company: None,
                version: None,
            },
            "alice",
        );
        server.handle(
            &Request::SubmitVote { session, software_id: sw_id(1), score: 8, behaviours: vec![] },
            "alice",
        );
        assert_eq!(server.tick(), 1, "first tick aggregates the new vote");
        assert_eq!(server.tick(), 0, "second tick is before the next 24h boundary");
        clock.advance_days(1);
        assert_eq!(server.tick(), 0, "due, but nothing dirty: incremental batch is a no-op");
        server.handle(
            &Request::SubmitVote {
                session: join(&server, "bob"),
                software_id: sw_id(1),
                score: 4,
                behaviours: vec![],
            },
            "bob",
        );
        clock.advance_days(1);
        assert_eq!(server.tick(), 1, "fresh vote dirtied the title for the next batch");
        let stats = server.stats_handle().snapshot();
        assert!(stats.agg_incremental_runs >= 3, "every due tick counts as a run");
        assert_eq!(stats.agg_titles_recomputed, 2);
        // The operator's full batch recomputes everything and is counted
        // separately.
        assert_eq!(server.run_full_aggregation(), 1);
        assert_eq!(server.stats_handle().snapshot().agg_full_runs, 1);
    }

    #[test]
    fn comments_flow_through_reports_and_remarks() {
        let (server, _) = server();
        let alice = join(&server, "alice");
        let bob = join(&server, "bob");
        server.handle(
            &Request::RegisterSoftware {
                software_id: sw_id(1),
                file_name: "a.exe".into(),
                file_size: 1,
                company: None,
                version: None,
            },
            "alice",
        );
        server.handle(
            &Request::SubmitComment {
                session: alice,
                software_id: sw_id(1),
                text: "bundles a tracker".into(),
            },
            "alice",
        );
        let resp = server.handle(&Request::QueryDetails { software_id: sw_id(1) }, "bob");
        let Response::Software(info) = resp else { panic!("{resp:?}") };
        assert_eq!(info.comments.len(), 1);
        let comment_id = info.comments[0].id;

        assert_eq!(
            server
                .handle(&Request::RateComment { session: bob, comment_id, positive: true }, "bob"),
            Response::Ok
        );
        assert_eq!(server.db().trust_of("alice").unwrap().unwrap(), 2.0);
    }

    #[test]
    fn evidence_endpoint_requires_the_analyzer_token() {
        let (server, _) = server_with(ServerConfig {
            puzzle_difficulty: 0,
            analyzer_token: Some("lab-secret".into()),
            ..ServerConfig::default()
        });
        server.handle(
            &Request::RegisterSoftware {
                software_id: sw_id(1),
                file_name: "a.exe".into(),
                file_size: 1,
                company: None,
                version: None,
            },
            "lab",
        );
        // Wrong token rejected.
        let resp = server.handle(
            &Request::SubmitEvidence {
                analyzer_token: "wrong".into(),
                software_id: sw_id(1),
                behaviours: vec!["tracking".into()],
                analyzer: "sandbox-v1".into(),
            },
            "lab",
        );
        assert!(matches!(resp, Response::Error { ref code, .. } if code == "bad-analyzer-token"));

        // Right token lands and surfaces as verified behaviours.
        let resp = server.handle(
            &Request::SubmitEvidence {
                analyzer_token: "lab-secret".into(),
                software_id: sw_id(1),
                behaviours: vec!["tracking".into()],
                analyzer: "sandbox-v1".into(),
            },
            "lab",
        );
        assert_eq!(resp, Response::Ok);
        let Response::Software(info) =
            server.handle(&Request::QuerySoftware { software_id: sw_id(1) }, "q")
        else {
            panic!("expected report")
        };
        assert_eq!(info.verified_behaviours, vec!["tracking".to_string()]);
    }

    #[test]
    fn evidence_endpoint_disabled_without_configured_token() {
        let (server, _) =
            server_with(ServerConfig { puzzle_difficulty: 0, ..ServerConfig::default() });
        let resp = server.handle(
            &Request::SubmitEvidence {
                analyzer_token: String::new(),
                software_id: sw_id(1),
                behaviours: vec![],
                analyzer: "x".into(),
            },
            "lab",
        );
        assert!(matches!(resp, Response::Error { ref code, .. } if code == "bad-analyzer-token"));
    }

    #[test]
    fn feed_lifecycle_over_the_protocol() {
        let (server, _) = server();
        let alice = join(&server, "alice");
        let bob = join(&server, "bob");
        server.handle(
            &Request::RegisterSoftware {
                software_id: sw_id(1),
                file_name: "a.exe".into(),
                file_size: 1,
                company: None,
                version: None,
            },
            "x",
        );

        assert_eq!(
            server.handle(
                &Request::CreateFeed { session: alice.clone(), name: "sec-team".into() },
                "a"
            ),
            Response::Ok
        );
        // Bob cannot publish into Alice's feed.
        let resp = server.handle(
            &Request::PublishFeedEntry {
                session: bob,
                feed: "sec-team".into(),
                software_id: sw_id(1),
                rating: 2.0,
                behaviours: vec![],
            },
            "b",
        );
        assert!(matches!(resp, Response::Error { ref code, .. } if code == "not-feed-owner"));

        assert_eq!(
            server.handle(
                &Request::PublishFeedEntry {
                    session: alice,
                    feed: "sec-team".into(),
                    software_id: sw_id(1),
                    rating: 2.0,
                    behaviours: vec!["popup_ads".into()],
                },
                "a",
            ),
            Response::Ok
        );
        let resp = server.handle(
            &Request::QueryFeedEntry { feed: "sec-team".into(), software_id: sw_id(1) },
            "q",
        );
        assert_eq!(
            resp,
            Response::FeedEntry {
                feed: "sec-team".into(),
                software_id: sw_id(1),
                rating: 2.0,
                behaviours: vec!["popup_ads".into()],
            }
        );
        // Missing entries answer with a stable error code.
        let resp = server.handle(
            &Request::QueryFeedEntry { feed: "sec-team".into(), software_id: sw_id(2) },
            "q",
        );
        assert!(matches!(resp, Response::Error { ref code, .. } if code == "unknown-feed-entry"));
    }

    #[test]
    fn vendor_query_round_trips() {
        let (server, _) = server();
        let session = join(&server, "alice");
        server.handle(
            &Request::RegisterSoftware {
                software_id: sw_id(1),
                file_name: "a.exe".into(),
                file_size: 1,
                company: Some("Acme".into()),
                version: None,
            },
            "alice",
        );
        server.handle(
            &Request::SubmitVote { session, software_id: sw_id(1), score: 6, behaviours: vec![] },
            "alice",
        );
        server.db().force_aggregation(server.now()).unwrap();
        let resp = server.handle(&Request::QueryVendor { vendor: "Acme".into() }, "x");
        assert_eq!(
            resp,
            Response::Vendor { vendor: "Acme".into(), rating: Some(6.0), software_count: 1 }
        );
    }
}
