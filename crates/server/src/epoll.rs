//! A minimal typed wrapper over Linux `epoll`, `eventfd`, and `fcntl`.
//!
//! The workspace vendors no FFI crates, so the four syscalls the reactor
//! needs are declared by hand against the libc that `std` already links.
//! Everything here is `#[cfg(target_os = "linux")]` (gated at the crate
//! root); the thread-per-connection front end remains the portable
//! fallback. Every syscall result is decoded into `io::Result` — this
//! file is under the no-panic lint, so a failing kernel call surfaces as
//! a typed error, never an unwrap.
//!
//! Scope is deliberately tiny: level-triggered readiness, one interest
//! mask per fd, a `u64` token per registration, and an [`EventFd`] the
//! worker pool uses to hand completions back to the event loop without
//! the loop ever blocking on a lock.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};

/// Readable readiness (`EPOLLIN`).
pub const EV_READ: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EV_WRITE: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const EV_ERROR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`) — always reported, never requested.
pub const EV_HANGUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EV_RDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// packs it there so 32- and 64-bit layouts agree); natural alignment on
/// other architectures.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut RawEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Raw `EPOLL*` bits; use [`Event::readable`]/[`Event::writable`]/
    /// [`Event::closed`] instead of matching bits by hand.
    pub mask: u32,
}

impl Event {
    /// Data (or a hangup that reads as EOF) is available.
    pub fn readable(&self) -> bool {
        self.mask & (EV_READ | EV_RDHUP | EV_HANGUP) != 0
    }

    /// The socket can accept more bytes.
    pub fn writable(&self) -> bool {
        self.mask & EV_WRITE != 0
    }

    /// The connection errored or hung up; reads will resolve it (EOF or a
    /// concrete error), so treat it as readable rather than guessing.
    pub fn closed(&self) -> bool {
        self.mask & (EV_ERROR | EV_HANGUP) != 0
    }
}

/// An epoll instance. Closed on drop.
pub struct Epoll {
    fd: RawFd,
    /// Scratch buffer `wait` hands to the kernel, reused across calls.
    scratch: Vec<RawEvent>,
}

impl Epoll {
    /// Create a close-on-exec epoll instance sized for `capacity` events
    /// per [`Epoll::wait`] call.
    pub fn new(capacity: usize) -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers.
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let capacity = capacity.clamp(1, 4096);
        Ok(Epoll { fd, scratch: vec![RawEvent { events: 0, data: 0 }; capacity] })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = RawEvent { events: interest, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        check(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` with the given interest bits and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Re-arm an already registered fd with new interest bits.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Remove `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = RawEvent { events: 0, data: 0 };
        // SAFETY: pre-2.6.9 kernels require a non-null event pointer even
        // for DEL; passing one is harmless everywhere else.
        check(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Block up to `timeout_ms` (`-1` = forever) for readiness, appending
    /// the notifications to `out` (cleared first). Returns the event
    /// count. `EINTR` retries internally so callers never see it.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        out.clear();
        let n = loop {
            let cap = self.scratch.len().min(c_int::MAX as usize) as c_int;
            // SAFETY: `scratch` holds `cap` initialized RawEvents; the
            // kernel writes at most `cap` of them.
            let rc = unsafe { epoll_wait(self.fd, self.scratch.as_mut_ptr(), cap, timeout_ms) };
            match check(rc) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for raw in self.scratch.iter().take(n) {
            // Copy out of the (possibly packed) struct before use.
            let RawEvent { events, data } = *raw;
            out.push(Event { token: data, mask: events });
        }
        Ok(n)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` came from epoll_create1 and is closed exactly once.
        let _ = unsafe { close(self.fd) };
    }
}

/// A nonblocking `eventfd`: a one-word wakeup channel from worker threads
/// into the event loop. Writers [`EventFd::signal`]; the loop registers
/// the fd for `EV_READ` and [`EventFd::drain`]s on wakeup.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Create a nonblocking, close-on-exec eventfd with counter zero.
    pub fn new() -> io::Result<Self> {
        // SAFETY: eventfd takes no pointers.
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for registration with an [`Epoll`].
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Wake the event loop. A counter already at its max means a wakeup
    /// is still pending, so `WouldBlock` counts as success.
    pub fn signal(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: 8 valid bytes at `one`'s address for the u64 write.
        let n = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        if n == 8 {
            return Ok(());
        }
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(e)
        }
    }

    /// Consume all pending wakeups (resets the counter to zero).
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: 8 writable bytes at `buf`'s address; nonblocking read
        // either consumes the counter or returns WouldBlock.
        let _ = unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `fd` came from eventfd and is closed exactly once.
        let _ = unsafe { close(self.fd) };
    }
}

/// Switch `fd` into (or out of) nonblocking mode via `fcntl`.
pub fn set_nonblocking(fd: RawFd, on: bool) -> io::Result<()> {
    // SAFETY: F_GETFL/F_SETFL take no pointers.
    let flags = check(unsafe { fcntl(fd, F_GETFL, 0) })?;
    let flags = if on { flags | O_NONBLOCK } else { flags & !O_NONBLOCK };
    check(unsafe { fcntl(fd, F_SETFL, flags) })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let mut ep = Epoll::new(8).unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw(), EV_READ, 42).unwrap();

        let mut events = Vec::new();
        // Nothing signalled: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        efd.signal().unwrap();
        efd.signal().unwrap(); // coalesces, still one readable fd
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        let ev = events.first().copied().unwrap();
        assert_eq!(ev.token, 42);
        assert!(ev.readable());

        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "drained eventfd is quiet");
    }

    #[test]
    fn socket_readiness_and_interest_rearming() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        set_nonblocking(server_side.as_raw_fd(), true).unwrap();

        let mut ep = Epoll::new(8).unwrap();
        ep.add(server_side.as_raw_fd(), EV_READ, 7).unwrap();

        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no bytes yet");

        client.write_all(b"hi").unwrap();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        assert!(events.first().is_some_and(|e| e.token == 7 && e.readable()));

        // Re-arm for write: a fresh socket is immediately writable.
        ep.modify(server_side.as_raw_fd(), EV_WRITE, 7).unwrap();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        assert!(events.first().is_some_and(|e| e.writable()));

        // Deregister: no further notifications even with data pending.
        ep.delete(server_side.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        let mut sink = [0u8; 2];
        let mut s = &server_side;
        s.read_exact(&mut sink).unwrap();
    }

    #[test]
    fn hangup_reports_as_readable_and_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut ep = Epoll::new(8).unwrap();
        ep.add(server_side.as_raw_fd(), EV_READ | EV_RDHUP, 3).unwrap();

        drop(client);
        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        let ev = events.first().copied().unwrap();
        assert!(ev.readable(), "hangup must read as EOF-readable: {:x}", ev.mask);
    }
}
