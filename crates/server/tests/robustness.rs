//! Server robustness: arbitrary protocol input must never panic the
//! dispatcher, and every response must itself re-encode cleanly (the
//! closed-loop property a long-running daemon needs).

use std::sync::Arc;

use proptest::prelude::*;

use softrep_core::clock::SimClock;
use softrep_core::db::ReputationDb;
use softrep_proto::{Request, Response};
use softrep_server::{ReputationServer, ServerConfig};

fn server() -> Arc<ReputationServer> {
    Arc::new(ReputationServer::new(
        ReputationDb::in_memory("robustness"),
        Arc::new(SimClock::new()),
        ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            analyzer_token: Some("tok".into()),
            ..ServerConfig::default()
        },
        17,
    ))
}

fn arb_string() -> impl Strategy<Value = String> {
    prop_oneof![
        any::<String>(),
        "[a-z0-9]{1,64}",
        Just(String::new()),
        Just("ab".repeat(20)),                  // valid-looking software id
        Just("\u{0}\u{1}<script>".to_string()), // hostile bytes
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::GetPuzzle),
        (arb_string(), arb_string(), arb_string(), arb_string(), any::<u64>()).prop_map(
            |(username, password, email, puzzle_challenge, puzzle_solution)| Request::Register {
                username,
                password,
                email,
                puzzle_challenge,
                puzzle_solution,
            }
        ),
        (arb_string(), arb_string())
            .prop_map(|(username, token)| Request::Activate { username, token }),
        (arb_string(), arb_string())
            .prop_map(|(username, password)| Request::Login { username, password }),
        arb_string().prop_map(|software_id| Request::QuerySoftware { software_id }),
        (arb_string(), arb_string(), any::<u64>()).prop_map(
            |(software_id, file_name, file_size)| {
                Request::RegisterSoftware {
                    software_id,
                    file_name,
                    file_size,
                    company: None,
                    version: None,
                }
            }
        ),
        (arb_string(), arb_string(), any::<u8>(), proptest::collection::vec(arb_string(), 0..3))
            .prop_map(|(session, software_id, score, behaviours)| Request::SubmitVote {
                session,
                software_id,
                score,
                behaviours,
            }),
        (arb_string(), arb_string(), arb_string()).prop_map(|(session, software_id, text)| {
            Request::SubmitComment { session, software_id, text }
        }),
        (arb_string(), any::<u64>(), any::<bool>()).prop_map(|(session, comment_id, positive)| {
            Request::RateComment { session, comment_id, positive }
        }),
        arb_string().prop_map(|vendor| Request::QueryVendor { vendor }),
        (arb_string(), arb_string(), proptest::collection::vec(arb_string(), 0..3), arb_string())
            .prop_map(|(analyzer_token, software_id, behaviours, analyzer)| {
                Request::SubmitEvidence { analyzer_token, software_id, behaviours, analyzer }
            }),
        (arb_string(), arb_string())
            .prop_map(|(session, name)| Request::CreateFeed { session, name }),
        (arb_string(), arb_string(), arb_string(), any::<f64>(), Just(vec![])).prop_map(
            |(session, feed, software_id, rating, behaviours)| {
                Request::PublishFeedEntry { session, feed, software_id, rating, behaviours }
            }
        ),
        (arb_string(), arb_string())
            .prop_map(|(feed, software_id)| Request::QueryFeedEntry { feed, software_id }),
        Just(Request::GetPseudonymKey),
        (arb_string(), arb_string())
            .prop_map(|(session, blinded)| Request::BlindSignPseudonym { session, blinded }),
        (arb_string(), arb_string(), arb_string(), arb_string()).prop_map(
            |(username, password, token, signature)| Request::RegisterPseudonym {
                username,
                password,
                token,
                signature,
            },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn dispatcher_is_total_over_arbitrary_requests(
        requests in proptest::collection::vec(arb_request(), 1..24),
        source in "[a-z0-9.:-]{1,24}",
    ) {
        let server = server();
        for request in &requests {
            let response = server.handle(request, &source);
            // The server must always answer, and the answer must encode.
            let encoded = response.encode();
            prop_assert!(!encoded.is_empty());
            // Responses that decode must round-trip through XML. (Some
            // hostile inputs echo back strings XML cannot carry, e.g.
            // NUL bytes; those decode-fail, which is acceptable — the
            // transport would reject them. Panics are not acceptable.)
            let _ = Response::decode(&encoded);
        }
        // The database must still be serviceable afterwards.
        prop_assert!(server.db().software_count() < 10_000);
        server.tick();
    }

    #[test]
    fn web_renderer_is_total_over_arbitrary_paths(path in any::<String>()) {
        let server = server();
        let target = format!("/{path}");
        let (status, body) = softrep_server::web::render(&server, &target);
        prop_assert!(!status.is_empty());
        prop_assert!(!body.is_empty());
    }

    #[test]
    fn web_renderer_escapes_reflected_input(q in "[a-zA-Z0-9<>&\"' ]{1,24}") {
        let server = server();
        // Reflected search queries must never echo raw HTML metacharacters.
        let encoded: String = q
            .bytes()
            .map(|b| format!("%{b:02x}"))
            .collect();
        let (_, body) = softrep_server::web::render(&server, &format!("/search?q={encoded}"));
        prop_assert!(!body.contains("<script"), "raw reflection in {body}");
        // Any '<' from the query must appear escaped.
        if q.contains('<') {
            prop_assert!(body.contains("&lt;"));
        }
    }
}

#[test]
fn session_tokens_do_not_collide_under_load() {
    let server = server();
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    let db = server.db();
    let mut tokens = std::collections::HashSet::new();
    for i in 0..50 {
        let name = format!("load{i:03}");
        let token = db
            .register_user(&name, "pw", &format!("{name}@x.example"), server.now(), &mut rng)
            .unwrap();
        db.activate_user(&name, &token).unwrap();
        let resp =
            server.handle(&Request::Login { username: name, password: "pw".into() }, "load-host");
        let Response::Session { token } = resp else { panic!("{resp:?}") };
        assert!(tokens.insert(token), "session token collision");
    }
}
