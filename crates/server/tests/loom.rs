//! Race-detection tests for the server's concurrent structures.
//!
//! Run with `cargo test -p softrep-server --features loom`. Each test
//! executes its body under `loom::model_with_stats`, which re-runs the
//! closure under many seeded schedules; the vendored `parking_lot` yields
//! to the model scheduler around every lock operation, so the production
//! session table, flood guard, puzzle gate, and (Mutex-wrapped) WAL are
//! interleaved at every lock boundary without any test-only forks in the
//! production code. Every test also asserts that the exploration actually
//! exercised at least three distinct interleavings — a schedule-diversity
//! floor that keeps these from silently degenerating into single-path
//! tests.
#![cfg(feature = "loom")]

use std::sync::atomic::{AtomicUsize, Ordering};

use loom::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_core::clock::Timestamp;
use softrep_crypto::puzzle::Challenge;
use softrep_server::flood::FloodGuard;
use softrep_server::pool::WorkerPool;
use softrep_server::puzzle_gate::{PuzzleGate, PuzzleRejection};
use softrep_server::session::SessionManager;
use softrep_server::stats::ServerStats;
use softrep_storage::wal::Wal;
use softrep_storage::{Store, WriteBatch};

const MIN_DISTINCT: usize = 3;

#[test]
fn session_create_resolve_revoke_under_interleaving() {
    let stats = loom::model_with_stats(|| {
        let mgr = Arc::new(SessionManager::new(100));

        let creator_a = {
            let mgr = Arc::clone(&mgr);
            loom::thread::spawn(move || {
                mgr.create("alice", Timestamp(0), &mut StdRng::seed_from_u64(1))
            })
        };
        let creator_b = {
            let mgr = Arc::clone(&mgr);
            loom::thread::spawn(move || {
                mgr.create("bob", Timestamp(0), &mut StdRng::seed_from_u64(2))
            })
        };
        let token_a = creator_a.join().expect("creator a");
        let token_b = creator_b.join().expect("creator b");
        assert_ne!(token_a, token_b, "independent RNG seeds produce distinct tokens");

        // One thread revokes alice while another resolves both tokens.
        let revoker = {
            let mgr = Arc::clone(&mgr);
            let token_a = token_a.clone();
            loom::thread::spawn(move || mgr.revoke(&token_a))
        };
        let resolver = {
            let mgr = Arc::clone(&mgr);
            let token_a = token_a.clone();
            let token_b = token_b.clone();
            loom::thread::spawn(move || {
                let a = mgr.resolve(&token_a, Timestamp(10));
                let b = mgr.resolve(&token_b, Timestamp(10));
                (a, b)
            })
        };
        revoker.join().expect("revoker");
        let (a, b) = resolver.join().expect("resolver");

        // Racing a revoke, alice resolves to her name or nothing — never
        // to someone else's session.
        assert!(a.is_none() || a.as_deref() == Some("alice"), "got {a:?}");
        // Bob's session is untouched by alice's revocation.
        assert_eq!(b.as_deref(), Some("bob"));
        // After both threads settle, alice is definitely gone.
        assert!(mgr.resolve(&token_a, Timestamp(10)).is_none());
        assert_eq!(mgr.len(), 1);
    });
    assert!(
        stats.distinct_schedules >= MIN_DISTINCT,
        "explored only {} distinct schedules",
        stats.distinct_schedules
    );
}

#[test]
fn flood_guard_never_overspends_last_token() {
    let stats = loom::model_with_stats(|| {
        // Capacity 1, negligible refill: of two racing requests, exactly
        // one may pass — a lost update on the bucket would admit both.
        let guard = Arc::new(FloodGuard::new(1, 1));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let g = Arc::clone(&guard);
                loom::thread::spawn(move || g.allow("attacker", Timestamp(0)))
            })
            .collect();
        let admitted = handles
            .into_iter()
            .map(|h| h.join().expect("requester"))
            .filter(|&allowed| allowed)
            .count();
        assert_eq!(admitted, 1, "exactly one request may spend the last token");
        assert_eq!(guard.rejected_count(), 1);
        assert_eq!(guard.tracked_identities(), 1);
        // The counters share the bucket-map lock, so a snapshot can never
        // tear: every number agrees with the map state it describes.
        let snap = guard.stats();
        assert_eq!(
            (snap.tracked, snap.rejected, snap.evicted),
            (1, 1, 0),
            "torn flood snapshot: {snap:?}"
        );
    });
    assert!(
        stats.distinct_schedules >= MIN_DISTINCT,
        "explored only {} distinct schedules",
        stats.distinct_schedules
    );
}

#[test]
fn puzzle_redeem_is_exactly_once_under_races() {
    let stats = loom::model_with_stats(|| {
        let gate = Arc::new(PuzzleGate::new(4));
        let encoded = gate.issue(&mut StdRng::seed_from_u64(7));
        let (solution, _) = Challenge::decode(&encoded).expect("decode issued").solve();

        // Two clients race to redeem the same solved challenge.
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let encoded = encoded.clone();
                loom::thread::spawn(move || gate.redeem(&encoded, solution.nonce))
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().expect("redeemer")).collect();

        let successes = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(successes, 1, "a puzzle solution must redeem exactly once, got {results:?}");
        assert!(results
            .iter()
            .all(|r| matches!(r, Ok(()) | Err(PuzzleRejection::UnknownChallenge))));
        assert_eq!(gate.outstanding_count(), 0, "challenge fully consumed");
    });
    assert!(
        stats.distinct_schedules >= MIN_DISTINCT,
        "explored only {} distinct schedules",
        stats.distinct_schedules
    );
}

#[test]
fn worker_pool_grants_the_last_slot_exactly_once() {
    let stats = loom::model_with_stats(|| {
        // One free slot, two racing acceptors: a lost update on the active
        // count would admit both and break the concurrency bound the whole
        // overload defence rests on.
        let pool = Arc::new(WorkerPool::new(1));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&pool);
                loom::thread::spawn(move || p.try_acquire())
            })
            .collect();
        let permits: Vec<_> = handles.into_iter().map(|h| h.join().expect("acceptor")).collect();
        let admitted = permits.iter().filter(|p| p.is_some()).count();
        assert_eq!(admitted, 1, "exactly one acceptor may claim the last slot");
        assert_eq!(pool.active(), 1);

        // Releasing the permit (from whichever thread won) makes the slot
        // reusable — and never double-frees below zero.
        drop(permits);
        assert_eq!(pool.active(), 0);
        assert!(pool.try_acquire().is_some(), "released slot is reusable");
    });
    assert!(
        stats.distinct_schedules >= MIN_DISTINCT,
        "explored only {} distinct schedules",
        stats.distinct_schedules
    );
}

#[test]
fn server_stats_snapshots_stay_internally_consistent() {
    let stats = loom::model_with_stats(|| {
        // Two connection lifecycles race a snapshot reader. Because every
        // counter lives behind one lock, any snapshot must satisfy the
        // lifecycle invariant active == accepted - closed; split atomics
        // would let a reader observe a torn intermediate state.
        let counters = Arc::new(ServerStats::new());
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counters);
                loom::thread::spawn(move || {
                    c.record_accepted();
                    c.record_request_served();
                    c.record_closed();
                })
            })
            .collect();
        let reader = {
            let c = Arc::clone(&counters);
            loom::thread::spawn(move || c.snapshot())
        };
        for w in workers {
            w.join().expect("worker");
        }
        let mid = reader.join().expect("reader");
        assert_eq!(
            mid.active as i64,
            mid.accepted as i64 - mid.closed as i64,
            "torn snapshot: {mid:?}"
        );
        assert!(mid.requests_served <= mid.accepted, "torn snapshot: {mid:?}");

        let fin = counters.snapshot();
        assert_eq!(fin.accepted, 2);
        assert_eq!(fin.closed, 2);
        assert_eq!(fin.active, 0);
        assert_eq!(fin.requests_served, 2);
    });
    assert!(
        stats.distinct_schedules >= MIN_DISTINCT,
        "explored only {} distinct schedules",
        stats.distinct_schedules
    );
}

#[test]
fn vote_racing_aggregation_drain_lands_in_this_batch_or_the_next() {
    let stats = loom::model_with_stats(|| {
        // The incremental aggregation protocol at store level: a voter
        // applies {vote, dirty mark} in one batch while the aggregator
        // drains the marks and *then* reads the votes. Whatever the
        // interleaving, the vote must be visible to this batch's read or
        // its mark must survive for the next batch — a vote observed by
        // neither would fall out of the published ratings forever.
        let store = Arc::new(Store::in_memory());
        let voter = {
            let store = Arc::clone(&store);
            loom::thread::spawn(move || {
                let mut batch = WriteBatch::new();
                batch.put("votes", b"sw1/alice".to_vec(), b"score9".to_vec());
                batch.put("agg_dirty", b"sw1".to_vec(), Vec::new());
                store.apply(&batch).expect("vote batch");
            })
        };
        let aggregator = {
            let store = Arc::clone(&store);
            loom::thread::spawn(move || {
                // Drain: delete the marks before reading any votes.
                let marks = store.scan_all("agg_dirty");
                if !marks.is_empty() {
                    let mut purge = WriteBatch::new();
                    for (key, _) in &marks {
                        purge.delete("agg_dirty", key.clone());
                    }
                    store.apply(&purge).expect("purge marks");
                }
                let votes_seen = store.scan_prefix("votes", b"sw1").len();
                (marks.len(), votes_seen)
            })
        };
        voter.join().expect("voter");
        let (drained, votes_seen) = aggregator.join().expect("aggregator");

        if drained == 1 {
            // The mark was visible, so the atomic batch had landed — the
            // later vote read must have seen the ballot (it is folded into
            // this aggregation).
            assert_eq!(votes_seen, 1, "drained the mark but missed the vote");
        }
        // Never dropped: the vote made this batch, or its mark is intact
        // for the next one.
        let mark_remains = store.contains("agg_dirty", b"sw1");
        assert!(
            votes_seen == 1 || mark_remains,
            "vote invisible to this batch and unmarked for the next (drained={drained})"
        );
        assert_eq!(mark_remains, drained == 0, "drain must consume exactly the marks it saw");
    });
    assert!(
        stats.distinct_schedules >= MIN_DISTINCT,
        "explored only {} distinct schedules",
        stats.distinct_schedules
    );
}

#[test]
fn wal_appends_from_two_writers_all_survive_replay() {
    // Each schedule needs its own WAL file; a process-unique counter keeps
    // parallel test binaries and successive seeds from colliding.
    static RUN: AtomicUsize = AtomicUsize::new(0);
    let stats = loom::model_with_stats(|| {
        let run = RUN.fetch_add(1, Ordering::SeqCst);
        let path =
            std::env::temp_dir().join(format!("softrep-loom-wal-{}-{run}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let wal = Arc::new(Mutex::new(Wal::open(&path).expect("open wal")));
        let handles: Vec<_> = (0u8..2)
            .map(|writer| {
                let wal = Arc::clone(&wal);
                loom::thread::spawn(move || {
                    let payload = [writer; 8];
                    let mut guard = wal.lock();
                    guard.append(&payload).expect("append");
                    guard.sync().expect("sync");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer");
        }

        let entries = Wal::replay(&path).expect("replay");
        assert_eq!(entries.len(), 2, "both appends survive whatever the order");
        let mut seen: Vec<u8> = entries.iter().map(|e| e[0]).collect();
        seen.sort_unstable();
        assert_eq!(seen, [0, 1]);
        assert!(entries.iter().all(|e| e.len() == 8));
        let _ = std::fs::remove_file(&path);
    });
    assert!(
        stats.distinct_schedules >= MIN_DISTINCT,
        "explored only {} distinct schedules",
        stats.distinct_schedules
    );
}
