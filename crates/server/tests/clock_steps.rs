//! Clock-step robustness: sessions, the registration puzzle gate, and the
//! flood guard under backward and forward time steps.
//!
//! The server's components take `Timestamp` values from their caller, so
//! a stepped clock (NTP correction, VM resume, operator fat-finger) shows
//! up as non-monotonic `now` arguments. The invariants: a backward step
//! never expires a session early, never mints flood tokens, and never
//! reopens a redeemed puzzle; a forward step expires exactly what its
//! magnitude says it should.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use softrep_core::clock::Timestamp;
use softrep_crypto::puzzle::Challenge;
use softrep_server::flood::FloodGuard;
use softrep_server::puzzle_gate::{PuzzleGate, PuzzleRejection};
use softrep_server::session::SessionManager;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0xc10c)
}

// ---------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------

/// A backward clock step must not expire a live session: expiry compares
/// against the issued-at deadline, and an earlier `now` is further from
/// it, not closer.
#[test]
fn backward_step_does_not_expire_a_live_session() {
    let mgr = SessionManager::new(100);
    let token = mgr.create("alice", Timestamp(1_000), &mut rng());

    assert_eq!(mgr.resolve(&token, Timestamp(1_050)).as_deref(), Some("alice"));
    // The clock steps back 900 s mid-session.
    assert_eq!(
        mgr.resolve(&token, Timestamp(150)).as_deref(),
        Some("alice"),
        "a backward step must not invalidate a session early"
    );
    // Housekeeping at the stepped-back time must not collect it either.
    assert_eq!(mgr.prune(Timestamp(150)), 0, "prune at an earlier now must keep live sessions");
    // Back on the original timeline the TTL is unchanged: still valid
    // just before the deadline, gone at it.
    assert_eq!(mgr.resolve(&token, Timestamp(1_099)).as_deref(), Some("alice"));
    assert_eq!(mgr.resolve(&token, Timestamp(1_100)), None, "TTL did not stretch");
}

/// A forward step expires exactly the sessions whose deadlines it passes
/// — and resolution after expiry removes the token for good, so stepping
/// back afterwards cannot resurrect it.
#[test]
fn forward_step_expires_and_expiry_is_final_across_later_backward_steps() {
    let mgr = SessionManager::new(100);
    let mut rng = rng();
    let young = mgr.create("young", Timestamp(1_000), &mut rng);
    let old = mgr.create("old", Timestamp(500), &mut rng);

    // Jump forward past `old`'s deadline (600) but not `young`'s (1100).
    assert_eq!(mgr.resolve(&old, Timestamp(1_050)), None, "deadline passed during the jump");
    assert_eq!(mgr.resolve(&young, Timestamp(1_050)).as_deref(), Some("young"));

    // The clock steps back to before `old`'s original deadline: the token
    // was removed at expiry, so it must stay dead.
    assert_eq!(
        mgr.resolve(&old, Timestamp(550)),
        None,
        "an expired-and-removed session must not resurrect on a backward step"
    );
    assert_eq!(mgr.len(), 1, "only the live session remains tracked");
}

/// Pruning with a far-forward `now` collects everything at once and a
/// session created after a backward step lives its full TTL from its own
/// (earlier) issue time.
#[test]
fn prune_under_steps_collects_exactly_the_dead() {
    let mgr = SessionManager::new(100);
    let mut rng = rng();
    let _a = mgr.create("a", Timestamp(1_000), &mut rng);
    // The clock steps back 500 s; a login happens on the stepped clock.
    let b = mgr.create("b", Timestamp(500), &mut rng);

    // At t=650 (still stepped back): b expired at 600, a is alive.
    assert_eq!(mgr.prune(Timestamp(650)), 1, "only the b session is past its deadline");
    assert_eq!(mgr.resolve(&b, Timestamp(650)), None);
    assert_eq!(mgr.len(), 1);

    // A massive forward step collects the rest.
    assert_eq!(mgr.prune(Timestamp(1_000_000)), 1);
    assert!(mgr.is_empty());
}

// ---------------------------------------------------------------------
// Puzzle gate
// ---------------------------------------------------------------------

/// The puzzle gate is deliberately clock-free: a challenge solved during
/// any clock turbulence redeems exactly once, and a replay is refused no
/// matter where the clock has stepped meanwhile. No step mints a free
/// (re-usable) registration token.
#[test]
fn puzzle_redemption_is_single_use_regardless_of_clock_steps() {
    let gate = PuzzleGate::new(4);
    let mut rng = rng();

    let encoded = gate.issue(&mut rng);
    let challenge = Challenge::decode(&encoded).expect("issued challenge decodes");
    let (solution, _attempts) = challenge.solve();

    // (Simulated clock steps happen here — the gate cannot observe them,
    // which is the property under test: nothing in issue/redeem takes a
    // timestamp that a step could exploit.)
    assert_eq!(gate.redeem(&encoded, solution.nonce), Ok(()));
    assert_eq!(
        gate.redeem(&encoded, solution.nonce),
        Err(PuzzleRejection::UnknownChallenge),
        "replaying a redeemed puzzle must fail whatever the clock did in between"
    );
    assert_eq!(gate.outstanding_count(), 0, "no re-issued obligation after the replay attempt");

    // A wrong solution leaves the challenge retryable; the prior state is
    // not corrupted by the failed attempt.
    let encoded2 = gate.issue(&mut rng);
    let challenge2 = Challenge::decode(&encoded2).expect("decodes");
    let (solution2, _) = challenge2.solve();
    assert_eq!(
        gate.redeem(&encoded2, solution2.nonce.wrapping_add(1)),
        Err(PuzzleRejection::WrongSolution)
    );
    assert_eq!(gate.redeem(&encoded2, solution2.nonce), Ok(()), "retry after wrong solution");
}

// ---------------------------------------------------------------------
// Flood guard
// ---------------------------------------------------------------------

/// A backward step mints no tokens: refill is measured as saturating
/// elapsed time since the last refill, so `now` values in the past
/// contribute zero.
#[test]
fn backward_step_mints_no_flood_tokens() {
    // 1 token/second refill, 3-token burst.
    let guard = FloodGuard::new(3, 3_600);
    let id = "peer-a";

    for _ in 0..3 {
        assert!(guard.allow(id, Timestamp(1_000)), "burst capacity");
    }
    assert!(!guard.allow(id, Timestamp(1_000)), "bucket drained");

    // Step back 900 s: still drained — elapsed time saturates at zero.
    assert!(!guard.allow(id, Timestamp(100)), "backward step must not refill");
    // And critically the refill watermark did not move backwards: coming
    // back to the original time is still zero elapsed, not +900 s.
    assert!(
        !guard.allow(id, Timestamp(1_000)),
        "recovering the original time must not replay the interval's refill"
    );
    // Real forward progress refills normally.
    assert!(guard.allow(id, Timestamp(1_002)), "one second of real time, one token");
}

/// An oscillating clock (repeated forward/backward steps over the same
/// interval) is worth at most one traversal of that interval in refill —
/// the guard never pays for the same second twice.
#[test]
fn oscillating_clock_cannot_multiply_refill() {
    let guard = FloodGuard::new(10, 3_600);
    let id = "peer-b";

    for _ in 0..10 {
        assert!(guard.allow(id, Timestamp(5_000)));
    }
    assert!(!guard.allow(id, Timestamp(5_000)), "drained");

    // 20 swings between t=5_000 and t=5_010: if each forward swing
    // re-minted the 10 s interval, the flooder would get ~200 tokens.
    // It must get exactly the 10 the interval is worth.
    let mut granted = 0;
    for _ in 0..10 {
        for t in [5_010, 5_000] {
            for _ in 0..3 {
                if guard.allow(id, Timestamp(t)) {
                    granted += 1;
                }
            }
        }
    }
    assert_eq!(granted, 10, "an oscillated interval refills exactly once");
    assert!(guard.rejected_count() > 0, "the excess was rejected, not queued");
}

/// Forward steps refill proportionally and cap at the burst capacity —
/// a month-long jump is worth a full bucket, not an unbounded credit.
#[test]
fn forward_jump_caps_at_capacity() {
    let guard = FloodGuard::new(3, 3_600);
    let id = "peer-c";

    for _ in 0..3 {
        assert!(guard.allow(id, Timestamp(0)));
    }
    assert!(!guard.allow(id, Timestamp(0)));

    // One month forward: worth a full burst and nothing more.
    let month = Timestamp(Duration::from_secs(30 * 24 * 3_600).as_secs());
    for _ in 0..3 {
        assert!(guard.allow(id, month), "refilled to capacity");
    }
    assert!(!guard.allow(id, month), "not beyond capacity");
}
