//! Network chaos suite for the TCP front ends (DESIGN.md §13): scripted
//! connection-level faults — truncated frames, mid-frame stalls past the
//! read deadline, garbage bodies, oversized headers, abrupt closes —
//! singly and in a seeded random sweep. After every schedule the server
//! must still answer a healthy request, hold no workers hostage, and keep
//! its counters consistent: chaos degrades one connection, never the
//! service.
//!
//! Every scripted fault runs against *both* serving architectures (the
//! thread pool and, on Linux, the epoll reactor), and a differential test
//! replays the seeded sweep against both front ends asserting
//! byte-identical response transcripts. `SOFTREP_FRONTEND=threads|epoll`
//! restricts a run to one architecture.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use softrep_core::clock::SimClock;
use softrep_core::db::ReputationDb;
use softrep_proto::framing::write_frame;
use softrep_proto::{Request, Response};
use softrep_server::tcp::{Frontend, FrontendServer, TcpClient, TcpServerConfig};
use softrep_server::{ReputationServer, ServerConfig};

fn reputation_server() -> Arc<ReputationServer> {
    Arc::new(ReputationServer::new(
        ReputationDb::in_memory("chaos-pepper"),
        Arc::new(SimClock::new()),
        ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            ..ServerConfig::default()
        },
        7,
    ))
}

/// The front ends this run exercises: both by default, one when
/// `SOFTREP_FRONTEND` says so.
fn frontends() -> Vec<Frontend> {
    match std::env::var("SOFTREP_FRONTEND").as_deref() {
        Ok("threads") => vec![Frontend::Threads],
        #[cfg(target_os = "linux")]
        Ok("epoll") => vec![Frontend::Epoll],
        _ => {
            #[cfg(target_os = "linux")]
            {
                vec![Frontend::Threads, Frontend::Epoll]
            }
            #[cfg(not(target_os = "linux"))]
            {
                vec![Frontend::Threads]
            }
        }
    }
}

fn spawn_with(
    frontend: Frontend,
    read_timeout: Duration,
) -> (FrontendServer, Arc<ReputationServer>) {
    let server = reputation_server();
    let fe = FrontendServer::spawn_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        TcpServerConfig { frontend, read_timeout, ..TcpServerConfig::default() },
    )
    .unwrap();
    (fe, server)
}

fn query() -> Request {
    Request::QuerySoftware { software_id: "ab".repeat(20) }
}

/// A healthy exchange must succeed — the proof that chaos did not take
/// the service down with the connection it hit.
fn assert_service_healthy(fe: &FrontendServer) {
    let mut client = TcpClient::connect(fe.local_addr()).unwrap();
    let response = client.call(&query()).unwrap();
    assert!(
        !matches!(&response, Response::Error { code, .. } if code == "overloaded"),
        "healthy request shed after chaos: {response:?}"
    );
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "not reached within 5s: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Same generator as the failpoint registry's `Chance` action — tiny,
/// seedable, and dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A frame whose header promises more bytes than ever arrive, then a
/// clean close: the body read fails mid-frame and the connection is
/// dropped without a response — and without wedging the front end.
#[test]
fn truncated_request_frame_drops_only_that_connection() {
    for frontend in frontends() {
        let (fe, _server) = spawn_with(frontend, Duration::from_secs(30));

        let mut stream = TcpStream::connect(fe.local_addr()).unwrap();
        let body = query().encode();
        stream.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
        stream.write_all(&body.as_bytes()[..body.len() / 2]).unwrap();
        stream.flush().unwrap();
        drop(stream); // tear: the rest of the frame never arrives

        wait_for("truncated connection closed", || fe.stats().closed == 1);
        let stats = fe.stats();
        assert_eq!(stats.accepted, 1, "{frontend:?}");
        assert_eq!(stats.requests_served, 0, "{frontend:?}: a torn request must not be dispatched");
        assert_eq!(stats.active, 0, "{frontend:?}: capacity freed");

        assert_service_healthy(&fe);
        fe.shutdown();
    }
}

/// A peer that sends half a frame and then goes silent (socket open, no
/// bytes) is evicted at the read deadline, freeing its capacity — the
/// delay path of the chaos matrix.
#[test]
fn mid_frame_stall_is_evicted_at_the_read_deadline() {
    for frontend in frontends() {
        let (fe, _server) = spawn_with(frontend, Duration::from_millis(200));

        let mut stream = TcpStream::connect(fe.local_addr()).unwrap();
        let body = query().encode();
        stream.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
        stream.write_all(&body.as_bytes()[..4]).unwrap();
        stream.flush().unwrap();
        // Keep the socket open and silent: only the deadline can free the
        // connection now.
        let started = Instant::now();
        wait_for("stalled connection evicted", || fe.stats().closed == 1);
        assert!(
            started.elapsed() >= Duration::from_millis(150),
            "{frontend:?}: eviction should come from the read deadline, not an instant error"
        );
        let stats = fe.stats();
        assert_eq!(stats.timed_out, 1, "{frontend:?}: eviction accounted as a timeout");
        assert_eq!(stats.requests_served, 0, "{frontend:?}");
        assert_eq!(stats.active, 0, "{frontend:?}");
        drop(stream);

        assert_service_healthy(&fe);
        fe.shutdown();
    }
}

/// While capacity is pinned by stalled peers, new arrivals are shed with
/// an explicit `overloaded` frame; once the deadline evicts the stallers,
/// service resumes — shed and deadline paths composing.
#[test]
fn shed_path_engages_while_stalled_peers_pin_the_workers() {
    for frontend in frontends() {
        let server = reputation_server();
        let fe = FrontendServer::spawn_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            TcpServerConfig {
                frontend,
                max_connections: 2,
                max_open_connections: 2,
                read_timeout: Duration::from_millis(400),
                ..TcpServerConfig::default()
            },
        )
        .unwrap();

        // Two silent peers pin the whole capacity.
        let pin_a = TcpStream::connect(fe.local_addr()).unwrap();
        let pin_b = TcpStream::connect(fe.local_addr()).unwrap();
        wait_for("capacity pinned", || fe.stats().active == 2);

        // A third connection is shed with a decodable overloaded frame.
        let mut client = TcpClient::connect(fe.local_addr()).unwrap();
        client.set_timeouts(Some(Duration::from_secs(5)), None).unwrap();
        match client.call(&query()) {
            Ok(Response::Error { code, .. }) => assert_eq!(code, "overloaded", "{frontend:?}"),
            other => panic!("{frontend:?}: expected an overloaded error frame, got {other:?}"),
        }
        assert_eq!(fe.stats().rejected_overload, 1, "{frontend:?}");

        // The deadline evicts the stallers and capacity returns.
        wait_for("stallers evicted", || fe.stats().timed_out == 2);
        drop(pin_a);
        drop(pin_b);
        assert_service_healthy(&fe);
        fe.shutdown();
    }
}

/// Seeded random sweep: a few dozen connections each misbehave in a
/// randomly chosen way. Whatever the schedule, every connection ends,
/// no capacity leaks, well-formed requests are all answered, and the
/// server still serves. Reproduce a failure with
/// `SOFTREP_CHAOS_SEED=<seed> cargo test -p softrep-server --test chaos`.
#[test]
fn seeded_fault_sweep_never_degrades_the_service() {
    let seed: u64 =
        std::env::var("SOFTREP_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xdecaf);
    for frontend in frontends() {
        let mut rng = SplitMix64(seed);
        let (fe, _server) = spawn_with(frontend, Duration::from_millis(300));

        let connections = 32;
        let mut well_formed = 0u64;
        for i in 0..connections {
            let ctx = || format!("{frontend:?}, seed {seed}, connection {i}");
            run_sweep_connection(&fe, &mut rng, i, &ctx, &mut well_formed, &mut Vec::new());
        }

        // Every connection winds down (the stragglers at the read
        // deadline) and no capacity leaks.
        wait_for("all chaos connections closed", || {
            let s = fe.stats();
            s.closed + s.rejected_overload >= connections
        });
        wait_for("no active connections", || fe.stats().active == 0);
        let stats = fe.stats();
        assert_eq!(
            stats.requests_served, well_formed,
            "{frontend:?}, seed {seed}: every well-formed request answered, malformed ones \
             never dispatched"
        );
        assert_service_healthy(&fe);
        fe.shutdown();
    }
}

/// One connection of the seeded sweep. Responses received on well-formed
/// exchanges are appended to `transcript` (raw frame bytes) so the
/// differential test can compare front ends byte-for-byte; fault cases
/// append a fixed marker keyed by the case.
fn run_sweep_connection(
    fe: &FrontendServer,
    rng: &mut SplitMix64,
    i: u64,
    ctx: &dyn Fn() -> String,
    well_formed: &mut u64,
    transcript: &mut Vec<Vec<u8>>,
) {
    match rng.below(6) {
        // A healthy request/response exchange; the queried id varies per
        // connection so the echoed response body differs too.
        0 => {
            let software_id = format!("{i:02}").repeat(20);
            let request = Request::QuerySoftware { software_id };
            let mut client = TcpClient::connect(fe.local_addr()).unwrap();
            let response = client.call(&request).unwrap_or_else(|e| panic!("{}: {e}", ctx()));
            transcript.push(response.encode().into_bytes());
            *well_formed += 1;
        }
        // Connect and immediately hang up.
        1 => {
            drop(TcpStream::connect(fe.local_addr()).unwrap());
            transcript.push(b"<hangup>".to_vec());
        }
        // Truncated frame, then close.
        2 => {
            let mut stream = TcpStream::connect(fe.local_addr()).unwrap();
            let body = query().encode();
            let keep = rng.below(body.len() as u64) as usize;
            stream.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
            stream.write_all(&body.as_bytes()[..keep]).unwrap();
            transcript.push(b"<truncated>".to_vec());
        }
        // A frame header promising more than the 1 MiB cap.
        3 => {
            let mut stream = TcpStream::connect(fe.local_addr()).unwrap();
            stream.write_all(&(8 * 1024 * 1024u32).to_be_bytes()).unwrap();
            transcript.push(b"<oversized>".to_vec());
        }
        // A well-framed body that is not a protocol message: answered
        // with a bad-request error, connection stays up.
        4 => {
            let mut stream = TcpStream::connect(fe.local_addr()).unwrap();
            write_frame(&mut stream, "<gibberish>").unwrap();
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            let frame = softrep_proto::framing::read_frame(&mut reader)
                .unwrap_or_else(|e| panic!("{}: no bad-request reply: {e}", ctx()));
            match Response::decode(&frame) {
                Ok(Response::Error { ref code, .. }) => assert_eq!(code, "bad-request"),
                other => panic!("{}: expected bad-request, got {other:?}", ctx()),
            }
            transcript.push(frame.into_bytes());
            *well_formed += 1;
        }
        // A partial header (less than 4 length bytes), then close.
        _ => {
            let mut stream = TcpStream::connect(fe.local_addr()).unwrap();
            stream.write_all(&[0u8; 2]).unwrap();
            transcript.push(b"<partial-header>".to_vec());
        }
    }
}

/// Differential oracle: the thread front end and the epoll reactor must
/// produce **byte-identical** response transcripts for the same seeded
/// 32-connection misbehaviour schedule against identically-seeded
/// servers. The thread pool is the simple, obviously-correct
/// implementation; any divergence is a reactor bug.
#[cfg(target_os = "linux")]
#[test]
fn differential_sweep_is_byte_identical_across_front_ends() {
    let seed: u64 =
        std::env::var("SOFTREP_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xdecaf);

    let run = |frontend: Frontend| -> Vec<Vec<u8>> {
        let mut rng = SplitMix64(seed);
        let (fe, _server) = spawn_with(frontend, Duration::from_millis(300));
        let mut transcript = Vec::new();
        let mut well_formed = 0u64;
        for i in 0..32u64 {
            let ctx = || format!("{frontend:?}, seed {seed}, connection {i}");
            run_sweep_connection(&fe, &mut rng, i, &ctx, &mut well_formed, &mut transcript);
        }
        wait_for("sweep settled", || {
            let s = fe.stats();
            s.closed + s.rejected_overload >= 32 && s.active == 0
        });
        assert_eq!(fe.stats().requests_served, well_formed, "{frontend:?}");
        fe.shutdown();
        transcript
    };

    let threads = run(Frontend::Threads);
    let epoll = run(Frontend::Epoll);
    assert_eq!(threads.len(), epoll.len());
    let markers: [&[u8]; 4] = [b"<hangup>", b"<truncated>", b"<oversized>", b"<partial-header>"];
    assert!(
        threads.iter().any(|t| !markers.contains(&t.as_slice())),
        "the seeded schedule must exercise at least one served response"
    );
    for (i, (t, e)) in threads.iter().zip(&epoll).enumerate() {
        assert_eq!(
            t,
            e,
            "seed {seed}, connection {i}: front ends diverged\n threads: {:?}\n epoll:   {:?}",
            String::from_utf8_lossy(t),
            String::from_utf8_lossy(e)
        );
    }
}
