//! Network chaos suite for the TCP front end (DESIGN.md §13): scripted
//! connection-level faults — truncated frames, mid-frame stalls past the
//! read deadline, garbage bodies, oversized headers, abrupt closes —
//! singly and in a seeded random sweep. After every schedule the server
//! must still answer a healthy request, hold no workers hostage, and keep
//! its counters consistent: chaos degrades one connection, never the
//! service.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use softrep_core::clock::SimClock;
use softrep_core::db::ReputationDb;
use softrep_proto::framing::write_frame;
use softrep_proto::{Request, Response};
use softrep_server::tcp::{TcpClient, TcpServer, TcpServerConfig};
use softrep_server::{ReputationServer, ServerConfig};

fn reputation_server() -> Arc<ReputationServer> {
    Arc::new(ReputationServer::new(
        ReputationDb::in_memory("chaos-pepper"),
        Arc::new(SimClock::new()),
        ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            ..ServerConfig::default()
        },
        7,
    ))
}

fn spawn_with(read_timeout: Duration) -> (TcpServer, Arc<ReputationServer>) {
    let server = reputation_server();
    let tcp = TcpServer::spawn_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        TcpServerConfig { read_timeout, ..TcpServerConfig::default() },
    )
    .unwrap();
    (tcp, server)
}

fn query() -> Request {
    Request::QuerySoftware { software_id: "ab".repeat(20) }
}

/// A healthy exchange must succeed — the proof that chaos did not take
/// the service down with the connection it hit.
fn assert_service_healthy(tcp: &TcpServer) {
    let mut client = TcpClient::connect(tcp.local_addr()).unwrap();
    let response = client.call(&query()).unwrap();
    assert!(
        !matches!(&response, Response::Error { code, .. } if code == "overloaded"),
        "healthy request shed after chaos: {response:?}"
    );
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "not reached within 5s: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Same generator as the failpoint registry's `Chance` action — tiny,
/// seedable, and dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A frame whose header promises more bytes than ever arrive, then a
/// clean close: the worker's body read fails mid-frame and the connection
/// is dropped without a response — and without wedging the worker.
#[test]
fn truncated_request_frame_drops_only_that_connection() {
    let (tcp, _server) = spawn_with(Duration::from_secs(30));

    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    let body = query().encode();
    stream.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
    stream.write_all(&body.as_bytes()[..body.len() / 2]).unwrap();
    stream.flush().unwrap();
    drop(stream); // tear: the rest of the frame never arrives

    wait_for("truncated connection closed", || tcp.stats().closed == 1);
    let stats = tcp.stats();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.requests_served, 0, "a torn request must not be dispatched");
    assert_eq!(stats.active, 0, "worker freed");

    assert_service_healthy(&tcp);
    tcp.shutdown();
}

/// A peer that sends half a frame and then goes silent (socket open, no
/// bytes) is evicted at the read deadline, freeing its worker — the delay
/// path of the chaos matrix.
#[test]
fn mid_frame_stall_is_evicted_at_the_read_deadline() {
    let (tcp, _server) = spawn_with(Duration::from_millis(200));

    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    let body = query().encode();
    stream.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
    stream.write_all(&body.as_bytes()[..4]).unwrap();
    stream.flush().unwrap();
    // Keep the socket open and silent: only the deadline can free the
    // worker now.
    let started = Instant::now();
    wait_for("stalled connection evicted", || tcp.stats().closed == 1);
    assert!(
        started.elapsed() >= Duration::from_millis(150),
        "eviction should come from the read deadline, not an instant error"
    );
    let stats = tcp.stats();
    assert_eq!(stats.timed_out, 1, "eviction must be accounted as a timeout");
    assert_eq!(stats.requests_served, 0);
    assert_eq!(stats.active, 0);
    drop(stream);

    assert_service_healthy(&tcp);
    tcp.shutdown();
}

/// While every worker is pinned by stalled-mid-frame peers, new arrivals
/// are shed with an explicit `overloaded` frame; once the deadline evicts
/// the stallers, service resumes — shed and deadline paths composing.
#[test]
fn shed_path_engages_while_stalled_peers_pin_the_workers() {
    let server = reputation_server();
    let tcp = TcpServer::spawn_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        TcpServerConfig {
            max_connections: 2,
            read_timeout: Duration::from_millis(400),
            ..TcpServerConfig::default()
        },
    )
    .unwrap();

    // Two silent peers pin both workers.
    let pin_a = TcpStream::connect(tcp.local_addr()).unwrap();
    let pin_b = TcpStream::connect(tcp.local_addr()).unwrap();
    wait_for("both workers pinned", || tcp.stats().active == 2);

    // A third connection is shed with a decodable overloaded frame.
    let mut client = TcpClient::connect(tcp.local_addr()).unwrap();
    match client.call(&query()) {
        Ok(Response::Error { code, .. }) => assert_eq!(code, "overloaded"),
        other => panic!("expected an overloaded error frame, got {other:?}"),
    }
    assert_eq!(tcp.stats().rejected_overload, 1);

    // The deadline evicts the stallers and capacity returns.
    wait_for("stallers evicted", || tcp.stats().timed_out == 2);
    drop(pin_a);
    drop(pin_b);
    assert_service_healthy(&tcp);
    tcp.shutdown();
}

/// Seeded random sweep: a few dozen connections each misbehave in a
/// randomly chosen way. Whatever the schedule, every connection ends,
/// no worker leaks, well-formed requests are all answered, and the server
/// still serves. Reproduce a failure with
/// `SOFTREP_CHAOS_SEED=<seed> cargo test -p softrep-server --test chaos`.
#[test]
fn seeded_fault_sweep_never_degrades_the_service() {
    let seed: u64 =
        std::env::var("SOFTREP_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xdecaf);
    let mut rng = SplitMix64(seed);
    let (tcp, _server) = spawn_with(Duration::from_millis(300));

    let connections = 32;
    let mut well_formed = 0u64;
    for i in 0..connections {
        let ctx = || format!("seed {seed}, connection {i}");
        match rng.below(6) {
            // A healthy request/response exchange.
            0 => {
                let mut client = TcpClient::connect(tcp.local_addr()).unwrap();
                client.call(&query()).unwrap_or_else(|e| panic!("{}: {e}", ctx()));
                well_formed += 1;
            }
            // Connect and immediately hang up.
            1 => {
                drop(TcpStream::connect(tcp.local_addr()).unwrap());
            }
            // Truncated frame, then close.
            2 => {
                let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
                let body = query().encode();
                let keep = rng.below(body.len() as u64) as usize;
                stream.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
                stream.write_all(&body.as_bytes()[..keep]).unwrap();
            }
            // A frame header promising more than the 1 MiB cap.
            3 => {
                let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
                stream.write_all(&(8 * 1024 * 1024u32).to_be_bytes()).unwrap();
            }
            // A well-framed body that is not a protocol message: answered
            // with a bad-request error, connection stays up.
            4 => {
                let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
                write_frame(&mut stream, "<gibberish>").unwrap();
                let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
                let frame = softrep_proto::framing::read_frame(&mut reader)
                    .unwrap_or_else(|e| panic!("{}: no bad-request reply: {e}", ctx()));
                match Response::decode(&frame) {
                    Ok(Response::Error { code, .. }) => assert_eq!(code, "bad-request"),
                    other => panic!("{}: expected bad-request, got {other:?}", ctx()),
                }
                well_formed += 1;
            }
            // A partial header (less than 4 length bytes), then close.
            _ => {
                let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
                stream.write_all(&[0u8; 2]).unwrap();
            }
        }
    }

    // Every connection winds down (the stragglers at the read deadline)
    // and no worker leaks.
    wait_for("all chaos connections closed", || {
        let s = tcp.stats();
        s.closed + s.rejected_overload >= connections
    });
    wait_for("no active workers", || tcp.stats().active == 0);
    let stats = tcp.stats();
    assert_eq!(
        stats.requests_served, well_formed,
        "seed {seed}: every well-formed request answered, malformed ones never dispatched"
    );
    assert_service_healthy(&tcp);
    tcp.shutdown();
}
