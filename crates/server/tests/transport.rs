//! Socket-level robustness tests for the TCP front end: flood-guard
//! identity keying, overload shedding, idle-peer disconnect, and graceful
//! shutdown latency — each asserted through `ServerStats` counters rather
//! than inferred.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use softrep_core::clock::SimClock;
use softrep_core::db::ReputationDb;
use softrep_proto::framing::{read_frame, write_frame, FrameError};
use softrep_proto::{Request, Response};
use softrep_server::tcp::{TcpClient, TcpServer, TcpServerConfig};
use softrep_server::{ReputationServer, ServerConfig};

fn reputation_server(config: ServerConfig) -> Arc<ReputationServer> {
    Arc::new(ReputationServer::new(
        ReputationDb::in_memory("transport-pepper"),
        Arc::new(SimClock::new()),
        config,
        7,
    ))
}

fn query() -> Request {
    Request::QuerySoftware { software_id: "ab".repeat(20) }
}

fn is_throttled(resp: &Response) -> bool {
    matches!(resp, Response::Error { code, .. } if code == "throttled")
}

/// Poll until `cond` holds (the worker thread increments counters just
/// after writing the response, so a client can observe the response a
/// moment before the counter).
fn wait_for(mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "condition not reached within 5s");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Regression for the flood-guard identity bug: the guard used to be keyed
/// on `SocketAddr::to_string()` (ip **and** ephemeral port), so every
/// reconnect minted a fresh token bucket and a reconnect-per-request
/// flooder was never throttled. Keyed on the IP alone, connections from
/// the same host share one bucket.
#[test]
fn reconnecting_flooder_shares_one_bucket_and_gets_throttled() {
    let server = reputation_server(ServerConfig {
        puzzle_difficulty: 0,
        flood_capacity: 3,
        flood_refill_per_hour: 1,
        ..ServerConfig::default()
    });
    let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").unwrap();

    let mut throttled = 0;
    for _ in 0..8 {
        // Fresh connection per request — the flooder's reconnect trick.
        let mut client = TcpClient::connect(tcp.local_addr()).unwrap();
        if is_throttled(&client.call(&query()).unwrap()) {
            throttled += 1;
        }
    }
    assert_eq!(throttled, 5, "3-token burst, then every reconnect is throttled");
    assert_eq!(server.flood_guard().rejected_count(), 5);
    assert_eq!(
        server.flood_guard().tracked_identities(),
        1,
        "eight connections from 127.0.0.1 must share one bucket"
    );

    wait_for(|| tcp.stats().requests_served == 8);
    let stats = tcp.stats();
    assert_eq!(stats.accepted, 8);
    assert_eq!(stats.requests_served, 8, "throttled answers are still served responses");
    tcp.shutdown();
}

/// Two simultaneously open connections from the same IP also share the
/// bucket (the fix must hold for parallel connections, not just serial
/// reconnects).
#[test]
fn two_live_connections_from_one_ip_share_one_bucket() {
    let server = reputation_server(ServerConfig {
        puzzle_difficulty: 0,
        flood_capacity: 2,
        flood_refill_per_hour: 1,
        ..ServerConfig::default()
    });
    let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").unwrap();

    let mut a = TcpClient::connect(tcp.local_addr()).unwrap();
    let mut b = TcpClient::connect(tcp.local_addr()).unwrap();
    assert!(!is_throttled(&a.call(&query()).unwrap()));
    assert!(!is_throttled(&b.call(&query()).unwrap()));
    // The burst of 2 is spent across both connections; either one is now
    // throttled.
    assert!(is_throttled(&a.call(&query()).unwrap()));
    assert!(is_throttled(&b.call(&query()).unwrap()));
    assert_eq!(server.flood_guard().tracked_identities(), 1);
    tcp.shutdown();
}

/// Connections beyond the pool bound get an immediate `overloaded` error
/// and a close — never an unbounded thread spawn.
#[test]
fn overload_is_shed_with_an_error_frame_and_counted() {
    let server = reputation_server(ServerConfig {
        puzzle_difficulty: 0,
        flood_capacity: u32::MAX,
        flood_refill_per_hour: u32::MAX,
        ..ServerConfig::default()
    });
    let tcp = TcpServer::spawn_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        TcpServerConfig { max_connections: 2, ..TcpServerConfig::default() },
    )
    .unwrap();

    // Occupy both worker slots with live connections (a served response
    // proves the worker is running).
    let mut a = TcpClient::connect(tcp.local_addr()).unwrap();
    let mut b = TcpClient::connect(tcp.local_addr()).unwrap();
    assert!(matches!(a.call(&query()).unwrap(), Response::UnknownSoftware { .. }));
    assert!(matches!(b.call(&query()).unwrap(), Response::UnknownSoftware { .. }));
    assert_eq!(tcp.active_connections(), 2);

    // Overflow connections are turned away at the door.
    for _ in 0..3 {
        let stream = TcpStream::connect(tcp.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut reader = BufReader::new(stream);
        let body = read_frame(&mut reader).unwrap();
        let resp = Response::decode(&body).unwrap();
        assert!(
            matches!(resp, Response::Error { ref code, .. } if code == "overloaded"),
            "{resp:?}"
        );
        // After the error frame the server closes the connection.
        assert!(matches!(read_frame(&mut reader), Err(FrameError::Closed)));
    }

    let stats = tcp.stats();
    assert_eq!(stats.rejected_overload, 3);
    assert_eq!(stats.accepted, 2, "overflow connections never reach a worker");
    assert_eq!(stats.active, 2);

    // Releasing a slot restores service. The freed slot may take a moment
    // to be reclaimed, so retry through any residual overload answers.
    drop(a);
    let mut served = false;
    for _ in 0..100 {
        let mut c = TcpClient::connect(tcp.local_addr()).unwrap();
        c.set_timeouts(Some(Duration::from_secs(5)), None).unwrap();
        if matches!(c.call(&query()), Ok(Response::UnknownSoftware { .. })) {
            served = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(served, "a freed slot must restore service");
    tcp.shutdown();
}

/// A peer that connects and then goes silent is disconnected at the read
/// deadline, freeing its worker and incrementing `timed_out`.
#[test]
fn idle_peer_is_disconnected_at_the_read_deadline() {
    let server = reputation_server(ServerConfig {
        puzzle_difficulty: 0,
        flood_capacity: u32::MAX,
        flood_refill_per_hour: u32::MAX,
        ..ServerConfig::default()
    });
    let tcp = TcpServer::spawn_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        TcpServerConfig {
            max_connections: 4,
            read_timeout: Duration::from_millis(150),
            ..TcpServerConfig::default()
        },
    )
    .unwrap();

    let mut client = TcpClient::connect(tcp.local_addr()).unwrap();
    client.set_timeouts(Some(Duration::from_secs(5)), None).unwrap();
    assert!(matches!(client.call(&query()).unwrap(), Response::UnknownSoftware { .. }));

    // Go silent past the server's read deadline; it must hang up.
    std::thread::sleep(Duration::from_millis(500));
    let err = client.call(&query()); // write may succeed locally...
    let disconnected = match err {
        // ...but the response read observes the server-side close,
        Err(e) => e.is_disconnect(),
        // or the write itself already failed on a torn-down socket.
        Ok(_) => false,
    };
    assert!(disconnected, "server must close the idle connection");

    // The worker slot is free again and the timeout was counted.
    wait_for(|| tcp.active_connections() == 0);
    assert_eq!(tcp.stats().timed_out, 1);
    tcp.shutdown();
}

/// Shutdown with idle keep-alive connections must not wait out the full
/// read timeout: it drains for `drain_deadline`, force-closes stragglers,
/// and joins every worker.
#[test]
fn shutdown_latency_is_bounded_by_the_drain_deadline_not_the_read_timeout() {
    let server = reputation_server(ServerConfig {
        puzzle_difficulty: 0,
        flood_capacity: u32::MAX,
        flood_refill_per_hour: u32::MAX,
        ..ServerConfig::default()
    });
    let tcp = TcpServer::spawn_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        TcpServerConfig {
            max_connections: 4,
            read_timeout: Duration::from_secs(30), // deliberately long
            drain_deadline: Duration::from_millis(200),
            ..TcpServerConfig::default()
        },
    )
    .unwrap();

    // Two idle keep-alive clients pin two workers in blocking reads.
    let mut a = TcpClient::connect(tcp.local_addr()).unwrap();
    let mut b = TcpClient::connect(tcp.local_addr()).unwrap();
    assert!(matches!(a.call(&query()).unwrap(), Response::UnknownSoftware { .. }));
    assert!(matches!(b.call(&query()).unwrap(), Response::UnknownSoftware { .. }));

    let stats = tcp.stats_handle();
    let started = Instant::now();
    tcp.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "shutdown took {elapsed:?}; must not wait out the 30 s read timeout"
    );
    let s = stats.snapshot();
    assert_eq!(s.active, 0, "every worker joined: {s:?}");
    assert_eq!(s.accepted, s.closed);
}

/// The accept loop's shutdown wakeup (self-connect nudge) fires even when
/// no client ever connected — the seed's 5 ms sleep-poll is gone, so this
/// also guards against a blocking accept hanging shutdown forever.
#[test]
fn shutdown_with_no_traffic_is_prompt() {
    let server = reputation_server(ServerConfig::default());
    let tcp = TcpServer::spawn(server, "127.0.0.1:0").unwrap();
    let started = Instant::now();
    tcp.shutdown();
    assert!(started.elapsed() < Duration::from_secs(2), "idle shutdown must be immediate");
}

/// Raw protocol violations (oversized frame headers) drop the connection
/// without taking the worker down with a panic.
#[test]
fn oversized_frame_header_drops_the_connection_cleanly() {
    let server = reputation_server(ServerConfig::default());
    let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").unwrap();

    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Declare a 512 MiB frame; the server must refuse rather than allocate.
    use std::io::Write;
    stream.write_all(&(512u32 * 1024 * 1024).to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert!(read_frame(&mut reader).is_err(), "connection must be dropped");

    // The server is still alive for well-behaved clients.
    let mut client = TcpClient::connect(tcp.local_addr()).unwrap();
    assert!(matches!(client.call(&query()).unwrap(), Response::UnknownSoftware { .. }));
    tcp.shutdown();
}

/// `write_frame`/`read_frame` still interoperate with the server loop when
/// many requests share one connection (sanity for the counter arithmetic).
#[test]
fn request_counter_tracks_pipelined_traffic() {
    let server = reputation_server(ServerConfig {
        puzzle_difficulty: 0,
        flood_capacity: u32::MAX,
        flood_refill_per_hour: u32::MAX,
        ..ServerConfig::default()
    });
    let tcp = TcpServer::spawn(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(tcp.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Pipeline: write all requests, then read all responses.
    for _ in 0..10 {
        write_frame(&mut writer, &query().encode()).unwrap();
    }
    for _ in 0..10 {
        let body = read_frame(&mut reader).unwrap();
        assert!(matches!(Response::decode(&body).unwrap(), Response::UnknownSoftware { .. }));
    }
    wait_for(|| tcp.stats().requests_served == 10);
    tcp.shutdown();
}
