//! Socket-level robustness tests for the protocol front ends: flood-guard
//! identity keying, overload shedding, idle-peer disconnect, and graceful
//! shutdown latency — each asserted through `ServerStats` counters rather
//! than inferred.
//!
//! Every behavioural test runs against *both* serving architectures (the
//! thread-per-connection pool and, on Linux, the epoll reactor): the two
//! front ends must be observationally equivalent at this level. Set
//! `SOFTREP_FRONTEND=threads` or `SOFTREP_FRONTEND=epoll` to restrict a
//! run to one architecture (the CI epoll shard uses this).

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use softrep_core::clock::SimClock;
use softrep_core::db::ReputationDb;
use softrep_proto::framing::{read_frame, write_frame, FrameError};
use softrep_proto::{Request, Response};
use softrep_server::tcp::{Frontend, FrontendServer, TcpClient, TcpServerConfig};
use softrep_server::{ReputationServer, ServerConfig};

fn reputation_server(config: ServerConfig) -> Arc<ReputationServer> {
    Arc::new(ReputationServer::new(
        ReputationDb::in_memory("transport-pepper"),
        Arc::new(SimClock::new()),
        config,
        7,
    ))
}

/// The front ends this run exercises: both by default, one when
/// `SOFTREP_FRONTEND` says so.
fn frontends() -> Vec<Frontend> {
    match std::env::var("SOFTREP_FRONTEND").as_deref() {
        Ok("threads") => vec![Frontend::Threads],
        #[cfg(target_os = "linux")]
        Ok("epoll") => vec![Frontend::Epoll],
        _ => {
            #[cfg(target_os = "linux")]
            {
                vec![Frontend::Threads, Frontend::Epoll]
            }
            #[cfg(not(target_os = "linux"))]
            {
                vec![Frontend::Threads]
            }
        }
    }
}

fn query() -> Request {
    Request::QuerySoftware { software_id: "ab".repeat(20) }
}

fn is_throttled(resp: &Response) -> bool {
    matches!(resp, Response::Error { code, .. } if code == "throttled")
}

/// Poll until `cond` holds (the serving thread increments counters just
/// after writing the response, so a client can observe the response a
/// moment before the counter).
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "condition not reached within 5s: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Regression for the flood-guard identity bug: the guard used to be keyed
/// on `SocketAddr::to_string()` (ip **and** ephemeral port), so every
/// reconnect minted a fresh token bucket and a reconnect-per-request
/// flooder was never throttled. Keyed on the IP alone, connections from
/// the same host share one bucket — on both front ends.
#[test]
fn reconnecting_flooder_shares_one_bucket_and_gets_throttled() {
    for frontend in frontends() {
        let server = reputation_server(ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: 3,
            flood_refill_per_hour: 1,
            ..ServerConfig::default()
        });
        let fe = FrontendServer::spawn_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            TcpServerConfig { frontend, ..TcpServerConfig::default() },
        )
        .unwrap();

        let mut throttled = 0;
        for _ in 0..8 {
            // Fresh connection per request — the flooder's reconnect trick.
            let mut client = TcpClient::connect(fe.local_addr()).unwrap();
            if is_throttled(&client.call(&query()).unwrap()) {
                throttled += 1;
            }
        }
        assert_eq!(throttled, 5, "{frontend:?}: 3-token burst, then every reconnect throttled");
        assert_eq!(server.flood_guard().rejected_count(), 5);
        assert_eq!(
            server.flood_guard().tracked_identities(),
            1,
            "{frontend:?}: eight connections from 127.0.0.1 must share one bucket"
        );

        wait_for("8 served", || fe.stats().requests_served == 8);
        let stats = fe.stats();
        assert_eq!(stats.accepted, 8);
        assert_eq!(
            stats.requests_served, 8,
            "{frontend:?}: throttled answers are still served responses"
        );
        fe.shutdown();
    }
}

/// Two simultaneously open connections from the same IP also share the
/// bucket (the fix must hold for parallel connections, not just serial
/// reconnects).
#[test]
fn two_live_connections_from_one_ip_share_one_bucket() {
    for frontend in frontends() {
        let server = reputation_server(ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: 2,
            flood_refill_per_hour: 1,
            ..ServerConfig::default()
        });
        let fe = FrontendServer::spawn_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            TcpServerConfig { frontend, ..TcpServerConfig::default() },
        )
        .unwrap();

        let mut a = TcpClient::connect(fe.local_addr()).unwrap();
        let mut b = TcpClient::connect(fe.local_addr()).unwrap();
        assert!(!is_throttled(&a.call(&query()).unwrap()));
        assert!(!is_throttled(&b.call(&query()).unwrap()));
        // The burst of 2 is spent across both connections; either one is
        // now throttled.
        assert!(is_throttled(&a.call(&query()).unwrap()), "{frontend:?}");
        assert!(is_throttled(&b.call(&query()).unwrap()), "{frontend:?}");
        assert_eq!(server.flood_guard().tracked_identities(), 1);
        fe.shutdown();
    }
}

/// Connections beyond the capacity bound get an immediate `overloaded`
/// error and a close — never an unbounded thread spawn (threads) or an
/// unbounded state table (epoll).
#[test]
fn overload_is_shed_with_an_error_frame_and_counted() {
    for frontend in frontends() {
        let server = reputation_server(ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            ..ServerConfig::default()
        });
        let fe = FrontendServer::spawn_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            TcpServerConfig {
                frontend,
                max_connections: 2,
                max_open_connections: 2,
                ..TcpServerConfig::default()
            },
        )
        .unwrap();

        // Occupy both capacity slots with live connections (a served
        // response proves each one is fully admitted).
        let mut a = TcpClient::connect(fe.local_addr()).unwrap();
        let mut b = TcpClient::connect(fe.local_addr()).unwrap();
        assert!(matches!(a.call(&query()).unwrap(), Response::UnknownSoftware { .. }));
        assert!(matches!(b.call(&query()).unwrap(), Response::UnknownSoftware { .. }));
        assert_eq!(fe.active_connections(), 2, "{frontend:?}");

        // Overflow connections are turned away at the door.
        for _ in 0..3 {
            let stream = TcpStream::connect(fe.local_addr()).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut reader = BufReader::new(stream);
            let body = read_frame(&mut reader).unwrap();
            let resp = Response::decode(&body).unwrap();
            assert!(
                matches!(resp, Response::Error { ref code, .. } if code == "overloaded"),
                "{frontend:?}: {resp:?}"
            );
            // After the error frame the server closes the connection.
            assert!(matches!(read_frame(&mut reader), Err(FrameError::Closed)), "{frontend:?}");
        }

        let stats = fe.stats();
        assert_eq!(stats.rejected_overload, 3, "{frontend:?}");
        assert_eq!(stats.accepted, 2, "{frontend:?}: overflow connections never admitted");
        assert_eq!(stats.active, 2, "{frontend:?}");

        // Releasing a slot restores service. The freed slot may take a
        // moment to be reclaimed, so retry through residual shed answers.
        drop(a);
        let mut served = false;
        for _ in 0..100 {
            let mut c = TcpClient::connect(fe.local_addr()).unwrap();
            c.set_timeouts(Some(Duration::from_secs(5)), None).unwrap();
            if matches!(c.call(&query()), Ok(Response::UnknownSoftware { .. })) {
                served = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(served, "{frontend:?}: a freed slot must restore service");
        fe.shutdown();
    }
}

/// A peer that connects and then goes silent is disconnected at the read
/// deadline, freeing its capacity and incrementing `timed_out`.
#[test]
fn idle_peer_is_disconnected_at_the_read_deadline() {
    for frontend in frontends() {
        let server = reputation_server(ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            ..ServerConfig::default()
        });
        let fe = FrontendServer::spawn_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            TcpServerConfig {
                frontend,
                max_connections: 4,
                read_timeout: Duration::from_millis(150),
                ..TcpServerConfig::default()
            },
        )
        .unwrap();

        let mut client = TcpClient::connect(fe.local_addr()).unwrap();
        client.set_timeouts(Some(Duration::from_secs(5)), None).unwrap();
        assert!(matches!(client.call(&query()).unwrap(), Response::UnknownSoftware { .. }));

        // Go silent past the server's read deadline; it must hang up.
        std::thread::sleep(Duration::from_millis(500));
        let err = client.call(&query()); // write may succeed locally...
        let disconnected = match err {
            // ...but the response read observes the server-side close,
            Err(e) => e.is_disconnect(),
            // or the write itself already failed on a torn-down socket.
            Ok(_) => false,
        };
        assert!(disconnected, "{frontend:?}: server must close the idle connection");

        // The capacity slot is free again and the timeout was counted.
        wait_for("idle conn reaped", || fe.active_connections() == 0);
        assert_eq!(fe.stats().timed_out, 1, "{frontend:?}");
        fe.shutdown();
    }
}

/// Shutdown with idle keep-alive connections must not wait out the full
/// read timeout: it drains for `drain_deadline`, force-closes stragglers,
/// and joins every serving thread.
#[test]
fn shutdown_latency_is_bounded_by_the_drain_deadline_not_the_read_timeout() {
    for frontend in frontends() {
        let server = reputation_server(ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            ..ServerConfig::default()
        });
        let fe = FrontendServer::spawn_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            TcpServerConfig {
                frontend,
                max_connections: 4,
                read_timeout: Duration::from_secs(30), // deliberately long
                drain_deadline: Duration::from_millis(200),
                ..TcpServerConfig::default()
            },
        )
        .unwrap();

        // Two idle keep-alive clients sit in open connections.
        let mut a = TcpClient::connect(fe.local_addr()).unwrap();
        let mut b = TcpClient::connect(fe.local_addr()).unwrap();
        assert!(matches!(a.call(&query()).unwrap(), Response::UnknownSoftware { .. }));
        assert!(matches!(b.call(&query()).unwrap(), Response::UnknownSoftware { .. }));

        let stats = fe.stats_handle();
        let started = Instant::now();
        fe.shutdown();
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "{frontend:?}: shutdown took {elapsed:?}; must not wait out the 30 s read timeout"
        );
        let s = stats.snapshot();
        assert_eq!(s.active, 0, "{frontend:?}: every connection closed: {s:?}");
        assert_eq!(s.accepted, s.closed, "{frontend:?}");
    }
}

/// Shutdown fires promptly even when no client ever connected — guards
/// against a blocking accept (threads) or a stuck event loop (epoll)
/// hanging shutdown forever.
#[test]
fn shutdown_with_no_traffic_is_prompt() {
    for frontend in frontends() {
        let server = reputation_server(ServerConfig::default());
        let fe = FrontendServer::spawn_with(
            server,
            "127.0.0.1:0",
            TcpServerConfig { frontend, ..TcpServerConfig::default() },
        )
        .unwrap();
        let started = Instant::now();
        fe.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "{frontend:?}: idle shutdown must be immediate"
        );
    }
}

/// Raw protocol violations (oversized frame headers) drop the connection
/// without taking the serving thread down with a panic.
#[test]
fn oversized_frame_header_drops_the_connection_cleanly() {
    for frontend in frontends() {
        let server = reputation_server(ServerConfig::default());
        let fe = FrontendServer::spawn_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            TcpServerConfig { frontend, ..TcpServerConfig::default() },
        )
        .unwrap();

        let mut stream = TcpStream::connect(fe.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Declare a 512 MiB frame; the server must refuse, not allocate.
        use std::io::Write;
        stream.write_all(&(512u32 * 1024 * 1024).to_be_bytes()).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert!(read_frame(&mut reader).is_err(), "{frontend:?}: connection must be dropped");

        // The server is still alive for well-behaved clients.
        let mut client = TcpClient::connect(fe.local_addr()).unwrap();
        assert!(matches!(client.call(&query()).unwrap(), Response::UnknownSoftware { .. }));
        fe.shutdown();
    }
}

/// Many requests on one connection, written ahead of the reads: both front
/// ends answer each in order and count each (sanity for the counter
/// arithmetic and the reactor's kernel-buffered pipelining).
#[test]
fn request_counter_tracks_pipelined_traffic() {
    for frontend in frontends() {
        let server = reputation_server(ServerConfig {
            puzzle_difficulty: 0,
            flood_capacity: u32::MAX,
            flood_refill_per_hour: u32::MAX,
            ..ServerConfig::default()
        });
        let fe = FrontendServer::spawn_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            TcpServerConfig { frontend, ..TcpServerConfig::default() },
        )
        .unwrap();
        let stream = TcpStream::connect(fe.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        // Pipeline: write all requests, then read all responses.
        for _ in 0..10 {
            write_frame(&mut writer, &query().encode()).unwrap();
        }
        for i in 0..10 {
            let body = read_frame(&mut reader)
                .unwrap_or_else(|e| panic!("{frontend:?}: response {i}: {e}"));
            assert!(matches!(Response::decode(&body).unwrap(), Response::UnknownSoftware { .. }));
        }
        wait_for("10 served", || fe.stats().requests_served == 10);
        fe.shutdown();
    }
}

/// The tentpole capacity claim: 1024 concurrent slow-loris connections —
/// each parks two header bytes and goes silent — are *held* by the reactor
/// (admitted, not shed) while a well-behaved client is still served. The
/// thread front end sheds at `max_connections` (64) under the same attack;
/// here the reactor's connection table absorbs the whole flood with no
/// thread per peer.
#[cfg(target_os = "linux")]
#[test]
fn reactor_sustains_1024_slow_loris_connections_while_serving() {
    use std::io::Write;

    const LORIS: usize = 1024;
    let server = reputation_server(ServerConfig {
        puzzle_difficulty: 0,
        flood_capacity: u32::MAX,
        flood_refill_per_hour: u32::MAX,
        ..ServerConfig::default()
    });
    let fe = FrontendServer::spawn_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        TcpServerConfig {
            frontend: Frontend::Epoll,
            max_open_connections: 4096,
            read_timeout: Duration::from_secs(60), // hold the flood open
            drain_deadline: Duration::from_millis(250),
            ..TcpServerConfig::default()
        },
    )
    .unwrap();
    let addr = fe.local_addr();

    let mut holds = Vec::with_capacity(LORIS);
    let deadline = Instant::now() + Duration::from_secs(60);
    while holds.len() < LORIS {
        // The listener backlog is finite; under a connect burst some
        // attempts need a retry while the reactor drains the queue.
        match TcpStream::connect_timeout(&addr, Duration::from_secs(5)) {
            Ok(mut stream) => {
                stream.write_all(&[0u8, 0u8]).unwrap(); // 2 of 4 header bytes
                holds.push(stream);
            }
            Err(_) => {
                assert!(Instant::now() < deadline, "could not open {LORIS} connections");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }

    let admitted = Instant::now() + Duration::from_secs(30);
    while (fe.stats().accepted as usize) < LORIS {
        assert!(Instant::now() < admitted, "flood not admitted: {:?}", fe.stats());
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = fe.stats();
    assert_eq!(stats.rejected_overload, 0, "the flood must be held, not shed: {stats:?}");
    assert!(stats.active as usize >= LORIS, "{stats:?}");

    // Under the full flood, a well-behaved client still gets answered.
    let mut client = TcpClient::connect(addr).unwrap();
    client.set_timeouts(Some(Duration::from_secs(10)), Some(Duration::from_secs(10))).unwrap();
    for _ in 0..3 {
        assert!(matches!(client.call(&query()).unwrap(), Response::UnknownSoftware { .. }));
    }

    drop(client);
    drop(holds);
    let stats = fe.stats_handle();
    fe.shutdown();
    assert_eq!(stats.snapshot().active, 0, "shutdown must reap the flood");
}
