//! The replication acceptance test (DESIGN.md §15): a primary under a
//! mixed 10k-write workload streams its WAL to a replica through a fault
//! proxy that tears the stream mid-frame (twice), while the replica is
//! killed and restarted once mid-stream. At quiesce the replica's store
//! must be **byte-identical** to the primary's and report zero lag.
//!
//! The proxy cuts at byte granularity, so the replica sees torn frames
//! and dropped connections — exactly the faults the tail's
//! watermark-resubscribe protocol must absorb without ever applying a
//! gap or a double.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use softrep_core::clock::SimClock;
use softrep_core::db::ReputationDb;
use softrep_crypto::salted::SecretPepper;
use softrep_server::repl::{ReplicaTail, ReplicaTailConfig};
use softrep_server::tcp::TcpServer;
use softrep_server::{ReputationServer, ServerConfig};
use softrep_storage::batch::WriteBatch;
use softrep_storage::replication;
use softrep_storage::Store;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("softrep-repl-acc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn file_backed_server(dir: &PathBuf) -> Arc<ReputationServer> {
    let store = Arc::new(Store::open(dir).unwrap());
    let db = ReputationDb::new(store, SecretPepper::new(b"repl-acceptance".to_vec()));
    Arc::new(ReputationServer::new(
        db,
        Arc::new(SimClock::new()),
        ServerConfig { puzzle_difficulty: 0, ..ServerConfig::default() },
        23,
    ))
}

fn fast_tail() -> ReplicaTailConfig {
    ReplicaTailConfig {
        poll_interval: Duration::from_millis(5),
        backoff_start: Duration::from_millis(5),
        backoff_max: Duration::from_millis(100),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        ..ReplicaTailConfig::default()
    }
}

/// A TCP proxy that forwards to `upstream`, cutting the Nth connection's
/// server→client stream after a scheduled number of bytes — a torn frame
/// from the subscriber's point of view. Connections beyond the schedule
/// pass through untouched.
struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    faults: Arc<AtomicU64>,
}

impl FaultProxy {
    fn spawn(upstream: SocketAddr, cut_after: Vec<usize>) -> FaultProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let faults = Arc::new(AtomicU64::new(0));
        let conn_counter = Arc::new(AtomicUsize::new(0));

        let accept_stop = Arc::clone(&stop);
        let accept_faults = Arc::clone(&faults);
        let accept = std::thread::spawn(move || loop {
            let Ok((client, _)) = listener.accept() else { break };
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let n = conn_counter.fetch_add(1, Ordering::SeqCst);
            let budget = cut_after.get(n).copied();
            let Ok(server) = TcpStream::connect(upstream) else {
                continue; // primary briefly unreachable; client sees a drop
            };
            // client → server: never cut (requests are tiny; faults on
            // this leg would just look like the response-leg drop anyway).
            let (c_read, c_write) = (client.try_clone().unwrap(), client);
            let (s_read, s_write) = (server.try_clone().unwrap(), server);
            std::thread::spawn(move || pump(c_read, s_write, None, None));
            let pump_faults = Arc::clone(&accept_faults);
            std::thread::spawn(move || pump(s_read, c_write, budget, Some(pump_faults)));
        });

        FaultProxy { addr, stop, accept: Some(accept), faults }
    }

    fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::SeqCst)
    }

    fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept awake.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Copy bytes `from` → `to`; with a budget, stop mid-stream once it is
/// spent and kill both directions (a torn frame for the reader).
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    mut budget: Option<usize>,
    faults: Option<Arc<AtomicU64>>,
) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let allowed = match budget {
            Some(remaining) if n >= remaining => {
                // Forward a prefix, then cut: the reader sees a frame
                // whose promised bytes never arrive.
                let _ = to.write_all(&buf[..remaining]);
                if let Some(f) = &faults {
                    f.fetch_add(1, Ordering::SeqCst);
                }
                let _ = from.shutdown(std::net::Shutdown::Both);
                let _ = to.shutdown(std::net::Shutdown::Both);
                return;
            }
            Some(remaining) => {
                budget = Some(remaining - n);
                n
            }
            None => n,
        };
        if to.write_all(&buf[..allowed]).is_err() {
            break;
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Both);
}

fn wait_for(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < end, "not reached within {deadline:?}: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One mixed write on the primary store: puts of varying sizes, deletes
/// of earlier keys, and occasional multi-op batches — enough shape
/// variety that replication cannot get away with special-casing
/// single-put entries.
fn mixed_write(store: &Store, i: usize) {
    let tree = ["titles", "votes", "comments"][i % 3];
    if i % 7 == 3 && i > 20 {
        store.delete(tree, format!("key-{}", i - 21).into_bytes()).unwrap();
    } else if i % 13 == 5 {
        let mut batch = WriteBatch::new();
        batch.put(tree, format!("key-{i}").into_bytes(), vec![b'm'; 1 + i % 200]);
        batch.put("meta", format!("batch-{i}").into_bytes(), i.to_le_bytes().to_vec());
        batch.delete("meta", format!("batch-{}", i.saturating_sub(50)).into_bytes());
        store.apply(&batch).unwrap();
    } else {
        store.put(tree, format!("key-{i}").into_bytes(), vec![b'v'; 1 + i % 97]).unwrap();
    }
}

/// The acceptance run: 10k mixed writes, two mid-stream cuts, one replica
/// restart → byte-identical stores and zero reported lag.
#[test]
fn replica_converges_byte_identically_through_faults_and_a_restart() {
    let dir_p = tmpdir("diff-p");
    let dir_r = tmpdir("diff-r");

    let primary = file_backed_server(&dir_p);
    let primary_store = Arc::clone(primary.db().store());
    let tcp = TcpServer::spawn(Arc::clone(&primary), "127.0.0.1:0").unwrap();

    // Two scheduled stream faults: the first and second proxied
    // connections are cut after 16 KiB and 64 KiB of response bytes.
    let proxy = FaultProxy::spawn(tcp.local_addr(), vec![16 * 1024, 64 * 1024]);
    let proxy_addr = proxy.addr.to_string();

    let replica = file_backed_server(&dir_r);
    let replica_store = Arc::clone(replica.db().store());
    let tail =
        ReplicaTail::spawn_with(Arc::clone(&replica), proxy_addr.clone(), fast_tail()).unwrap();

    // Phase one: 6k mixed writes racing the tail (and the fault cuts).
    for i in 0..6_000 {
        mixed_write(&primary_store, i);
    }
    wait_for("replica made initial progress", Duration::from_secs(30), || {
        replication::applied_watermark(&replica_store) > 1_000
    });

    // Kill the replica mid-stream and bring it back on the same data
    // directory: the persisted watermark must make the restart seamless.
    tail.shutdown();
    drop(replica);
    drop(replica_store);
    let replica = file_backed_server(&dir_r);
    let replica_store = Arc::clone(replica.db().store());
    assert!(
        replication::applied_watermark(&replica_store) > 0,
        "the watermark must survive the restart"
    );
    let tail = ReplicaTail::spawn_with(Arc::clone(&replica), proxy_addr, fast_tail()).unwrap();

    // Phase two: the rest of the workload, past 10k writes total.
    for i in 6_000..10_000 {
        mixed_write(&primary_store, i);
    }

    // Quiesce: identical bytes, zero lag, and the faults really fired.
    wait_for("replica converged", Duration::from_secs(60), || {
        replica_store.content_dump() == primary_store.content_dump()
    });
    wait_for("lag drained to zero", Duration::from_secs(30), || {
        replica.repl_state().metrics().lag_entries == 0
    });
    assert_eq!(
        replica_store.content_dump(),
        primary_store.content_dump(),
        "replica store must be byte-identical to the primary at quiesce"
    );
    assert_eq!(
        replication::applied_watermark(&replica_store),
        primary_store.committed_seq(),
        "watermark must sit exactly at the primary's committed sequence"
    );
    assert!(
        proxy.faults_injected() >= 2,
        "the schedule must have injected both stream faults, got {}",
        proxy.faults_injected()
    );
    let metrics_page = replica.metrics_text();
    assert!(
        metrics_page.contains("softrep_repl_lag_entries 0"),
        "metrics must report zero lag at quiesce"
    );

    tail.shutdown();
    proxy.shutdown();
    tcp.shutdown();
}

/// A replica killed *between* the snapshot-install batches restarts with
/// the bootstrap sentinel set and re-bootstraps rather than serving the
/// torn state — the crash-window half of the bootstrap handshake.
#[test]
fn interrupted_bootstrap_is_redone_not_trusted() {
    let dir_p = tmpdir("torn-p");
    let dir_r = tmpdir("torn-r");

    let primary = file_backed_server(&dir_p);
    let primary_store = Arc::clone(primary.db().store());
    for i in 0..2_000 {
        mixed_write(&primary_store, i);
    }
    // Retire the log so any fresh subscriber must bootstrap.
    primary_store.compact().unwrap();
    let tcp = TcpServer::spawn(Arc::clone(&primary), "127.0.0.1:0").unwrap();

    // Simulate a replica that died mid-install: sentinel present, half
    // the data missing.
    {
        let store = Store::open(&dir_r).unwrap();
        store
            .put(
                replication::REPL_META_TREE,
                replication::BOOTSTRAP_KEY.to_vec(),
                1u64.to_be_bytes().to_vec(),
            )
            .unwrap();
        store.put("titles", b"torn-half".to_vec(), b"stale".to_vec()).unwrap();
        store.sync().unwrap();
    }

    let replica = file_backed_server(&dir_r);
    let replica_store = Arc::clone(replica.db().store());
    assert!(replication::bootstrap_pending(&replica_store));
    let tail =
        ReplicaTail::spawn_with(Arc::clone(&replica), tcp.local_addr().to_string(), fast_tail())
            .unwrap();

    wait_for("re-bootstrap converged", Duration::from_secs(30), || {
        replica_store.content_dump() == primary_store.content_dump()
    });
    assert!(!replication::bootstrap_pending(&replica_store));
    assert!(replica_store.get("titles", b"torn-half").is_none(), "torn state replaced");

    tail.shutdown();
    tcp.shutdown();
}
