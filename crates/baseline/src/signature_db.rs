//! The signature (definition) database.
//!
//! Versioned so the engine can model client-side update lag: a client that
//! last synced at version `v` scans with the database as it existed at
//! `v`, not with the vendor's current master copy.

use std::collections::BTreeMap;

/// The binary verdict of the black-and-white world (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Flagged by a definition.
    Malicious,
    /// Not in the database (which the industry markets as "clean").
    Clean,
}

/// A versioned set of detection signatures keyed by software id.
///
/// Every mutation bumps the version; queries can be evaluated *as of* any
/// historical version, which is how client update lag is simulated without
/// copying databases around.
#[derive(Debug, Default)]
pub struct SignatureDb {
    /// software_id → activity intervals `(version added, version removed)`,
    /// newest last. Keeping the full history lets stale-client scans see
    /// the database exactly as it was at their sync version.
    entries: BTreeMap<String, Vec<(u64, Option<u64>)>>,
    version: u64,
}

impl SignatureDb {
    /// Empty database at version 0.
    pub fn new() -> Self {
        SignatureDb::default()
    }

    /// Current master version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Add a detection signature. Returns the new version. Re-adding a
    /// withdrawn signature re-activates it.
    pub fn add_signature(&mut self, software_id: &str) -> u64 {
        self.version += 1;
        let intervals = self.entries.entry(software_id.to_string()).or_default();
        match intervals.last_mut() {
            Some(last) if last.1.is_none() => last.0 = last.0.min(self.version),
            _ => intervals.push((self.version, None)),
        }
        self.version
    }

    /// Withdraw a signature (the lawsuit path). Returns the new version,
    /// or `None` if no active signature existed.
    pub fn withdraw_signature(&mut self, software_id: &str) -> Option<u64> {
        let intervals = self.entries.get_mut(software_id)?;
        let last = intervals.last_mut()?;
        if last.1.is_some() {
            return None; // already withdrawn
        }
        self.version += 1;
        last.1 = Some(self.version);
        Some(self.version)
    }

    /// Verdict as of the master's current version.
    pub fn scan(&self, software_id: &str) -> Verdict {
        self.scan_as_of(software_id, self.version)
    }

    /// Verdict as of a historical `version` (a stale client copy).
    pub fn scan_as_of(&self, software_id: &str, version: u64) -> Verdict {
        let active = self.entries.get(software_id).is_some_and(|intervals| {
            intervals.iter().any(|(added, removed)| {
                *added <= version && removed.is_none_or(|rem| rem > version)
            })
        });
        if active {
            Verdict::Malicious
        } else {
            Verdict::Clean
        }
    }

    /// Number of *active* signatures at the current version.
    pub fn active_signatures(&self) -> usize {
        self.entries
            .values()
            .filter(|intervals| intervals.last().is_some_and(|(_, removed)| removed.is_none()))
            .count()
    }

    /// Number of withdrawn signatures (the incomplete-product measure the
    /// paper describes).
    pub fn withdrawn_signatures(&self) -> usize {
        self.entries
            .values()
            .filter(|intervals| intervals.last().is_some_and(|(_, removed)| removed.is_some()))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_software_scans_clean() {
        let db = SignatureDb::new();
        assert_eq!(db.scan("deadbeef"), Verdict::Clean);
        assert_eq!(db.active_signatures(), 0);
    }

    #[test]
    fn added_signature_detects_and_versions_advance() {
        let mut db = SignatureDb::new();
        let v1 = db.add_signature("aaa");
        assert_eq!(v1, 1);
        assert_eq!(db.scan("aaa"), Verdict::Malicious);
        let v2 = db.add_signature("bbb");
        assert_eq!(v2, 2);
        assert_eq!(db.active_signatures(), 2);
    }

    #[test]
    fn stale_clients_miss_new_signatures() {
        let mut db = SignatureDb::new();
        db.add_signature("aaa"); // v1
        db.add_signature("bbb"); // v2
                                 // A client synced at v1 misses bbb.
        assert_eq!(db.scan_as_of("aaa", 1), Verdict::Malicious);
        assert_eq!(db.scan_as_of("bbb", 1), Verdict::Clean);
        // A client that never synced misses everything.
        assert_eq!(db.scan_as_of("aaa", 0), Verdict::Clean);
    }

    #[test]
    fn withdrawal_removes_protection_going_forward() {
        let mut db = SignatureDb::new();
        db.add_signature("gator"); // v1
        let v2 = db.withdraw_signature("gator").unwrap();
        assert_eq!(v2, 2);
        assert_eq!(db.scan("gator"), Verdict::Clean, "the incomplete product");
        // A stale client that synced before the lawsuit still detects.
        assert_eq!(db.scan_as_of("gator", 1), Verdict::Malicious);
        assert_eq!(db.active_signatures(), 0);
        assert_eq!(db.withdrawn_signatures(), 1);
    }

    #[test]
    fn double_withdrawal_is_rejected() {
        let mut db = SignatureDb::new();
        db.add_signature("x");
        assert!(db.withdraw_signature("x").is_some());
        assert!(db.withdraw_signature("x").is_none());
        assert!(db.withdraw_signature("never-added").is_none());
    }

    #[test]
    fn readding_after_withdrawal_reactivates() {
        let mut db = SignatureDb::new();
        db.add_signature("x"); // v1
        db.withdraw_signature("x"); // v2
        db.add_signature("x"); // v3
        assert_eq!(db.scan("x"), Verdict::Malicious);
        // History: detected at v1, clean at v2, detected again at v3.
        assert_eq!(db.scan_as_of("x", 1), Verdict::Malicious);
        assert_eq!(db.scan_as_of("x", 2), Verdict::Clean);
        assert_eq!(db.scan_as_of("x", 3), Verdict::Malicious);
    }
}
