//! The central analysis lab.
//!
//! §4.3: "the organization behind the countermeasure must investigate every
//! software before being able to offer a protection against it." Samples
//! queue for a configurable analysis latency; when a sample's turn
//! completes, the lab issues a finding. The lab classifies with the
//! paper's black-and-white rule: unambiguous malware (low consent or
//! severe consequences — the cells anti-virus software targets) is flagged;
//! clear legitimate software is not. Grey-zone software is flagged only
//! when `detect_grey_zone` is set — the aggressive stance that invites the
//! lawsuits modelled in [`crate::legal`].

use std::collections::VecDeque;

use softrep_core::clock::Timestamp;
use softrep_core::taxonomy::PisCategory;

/// A completed analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabFinding {
    /// The analysed software.
    pub software_id: String,
    /// Vendor, if declared (needed for the legal model).
    pub vendor: Option<String>,
    /// The category the analysts established (= ground truth; labs are
    /// assumed competent, their weakness is latency and legal exposure).
    pub category: PisCategory,
    /// Whether the lab recommends a detection signature.
    pub flag: bool,
    /// When the analysis completed.
    pub completed_at: Timestamp,
}

struct QueuedSample {
    software_id: String,
    vendor: Option<String>,
    category: PisCategory,
    ready_at: Timestamp,
}

/// The lab: a FIFO of samples with a fixed analysis latency.
pub struct AnalysisLab {
    queue: VecDeque<QueuedSample>,
    analysis_latency_secs: u64,
    detect_grey_zone: bool,
    analysed: u64,
}

impl AnalysisLab {
    /// A lab with the given per-sample latency, optionally flagging
    /// grey-zone (spyware) software too.
    pub fn new(analysis_latency_secs: u64, detect_grey_zone: bool) -> Self {
        AnalysisLab { queue: VecDeque::new(), analysis_latency_secs, detect_grey_zone, analysed: 0 }
    }

    /// Submit a sample discovered at `now`.
    pub fn submit(
        &mut self,
        software_id: &str,
        vendor: Option<String>,
        category: PisCategory,
        now: Timestamp,
    ) {
        self.queue.push_back(QueuedSample {
            software_id: software_id.to_string(),
            vendor,
            category,
            ready_at: now.plus_secs(self.analysis_latency_secs),
        });
    }

    /// Drain every sample whose analysis has completed by `now`.
    pub fn collect_findings(&mut self, now: Timestamp) -> Vec<LabFinding> {
        let mut findings = Vec::new();
        while let Some(front) = self.queue.front() {
            if front.ready_at > now {
                break;
            }
            let sample = self.queue.pop_front().expect("front checked");
            self.analysed += 1;
            let flag = Self::should_flag(sample.category, self.detect_grey_zone);
            findings.push(LabFinding {
                software_id: sample.software_id,
                vendor: sample.vendor,
                category: sample.category,
                flag,
                completed_at: sample.ready_at,
            });
        }
        findings
    }

    fn should_flag(category: PisCategory, detect_grey_zone: bool) -> bool {
        if category.is_malware() {
            return true;
        }
        detect_grey_zone && category.is_spyware()
    }

    /// Samples still in the queue.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Total samples analysed so far.
    pub fn analysed(&self) -> u64 {
        self.analysed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrep_core::taxonomy::{ConsentLevel, ConsequenceLevel};

    fn cat(consent: ConsentLevel, consequence: ConsequenceLevel) -> PisCategory {
        PisCategory::classify(consent, consequence)
    }

    #[test]
    fn samples_complete_after_latency() {
        let mut lab = AnalysisLab::new(3_600, false);
        lab.submit("aaa", None, cat(ConsentLevel::Low, ConsequenceLevel::Severe), Timestamp(0));
        assert!(lab.collect_findings(Timestamp(3_599)).is_empty());
        assert_eq!(lab.backlog(), 1);
        let findings = lab.collect_findings(Timestamp(3_600));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].flag);
        assert_eq!(findings[0].completed_at, Timestamp(3_600));
        assert_eq!(lab.backlog(), 0);
        assert_eq!(lab.analysed(), 1);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut lab = AnalysisLab::new(100, false);
        for (i, t) in [(0u64, 0u64), (1, 10), (2, 20)] {
            lab.submit(
                &format!("sw{i}"),
                None,
                cat(ConsentLevel::Low, ConsequenceLevel::Severe),
                Timestamp(t),
            );
        }
        let findings = lab.collect_findings(Timestamp(1_000));
        let ids: Vec<&str> = findings.iter().map(|f| f.software_id.as_str()).collect();
        assert_eq!(ids, vec!["sw0", "sw1", "sw2"]);
    }

    #[test]
    fn conservative_lab_ignores_grey_zone() {
        let mut lab = AnalysisLab::new(0, false);
        lab.submit(
            "adware",
            None,
            cat(ConsentLevel::Medium, ConsequenceLevel::Moderate),
            Timestamp(0),
        );
        lab.submit(
            "legit",
            None,
            cat(ConsentLevel::High, ConsequenceLevel::Tolerable),
            Timestamp(0),
        );
        lab.submit(
            "trojan",
            None,
            cat(ConsentLevel::Low, ConsequenceLevel::Moderate),
            Timestamp(0),
        );
        let flags: Vec<bool> = lab.collect_findings(Timestamp(0)).iter().map(|f| f.flag).collect();
        assert_eq!(flags, vec![false, false, true]);
    }

    #[test]
    fn aggressive_lab_flags_grey_zone() {
        let mut lab = AnalysisLab::new(0, true);
        lab.submit(
            "adware",
            Some("Gator".into()),
            cat(ConsentLevel::Medium, ConsequenceLevel::Moderate),
            Timestamp(0),
        );
        lab.submit(
            "legit",
            None,
            cat(ConsentLevel::High, ConsequenceLevel::Tolerable),
            Timestamp(0),
        );
        let findings = lab.collect_findings(Timestamp(0));
        assert!(findings[0].flag, "grey zone flagged under the aggressive stance");
        assert!(!findings[1].flag, "legitimate software never flagged");
        assert_eq!(findings[0].vendor.as_deref(), Some("Gator"));
    }

    #[test]
    fn all_malware_cells_are_flagged_conservatively() {
        let mut lab = AnalysisLab::new(0, false);
        for category in PisCategory::all() {
            lab.submit(category.name(), None, category, Timestamp(0));
        }
        let findings = lab.collect_findings(Timestamp(0));
        for f in &findings {
            assert_eq!(f.flag, f.category.is_malware(), "{}", f.category);
        }
    }
}
