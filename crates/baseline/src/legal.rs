//! The legal-challenge model.
//!
//! §1: "this requires a classification of some software as 'harmful to the
//! user' which is legally problematic … Such legal disputes have already
//! proved to be costly for anti-spyware software companies. As a result …
//! they may be forced to remove certain software from their list of
//! targeted spyware to avoid future legal actions, and hence deliver an
//! incomplete product."
//!
//! Model: each *grey-zone* detection (the software is spyware, not clear
//! malware) is challenged by its vendor with probability
//! `challenge_probability` — but only by vendors that declare themselves
//! in their binaries (an anonymous vendor cannot sue without outing
//! itself). A successful challenge forces the signature's withdrawal and
//! puts the vendor on the anti-virus company's *do-not-detect* list: all
//! future grey-zone findings against that vendor are suppressed before
//! they even become signatures. Clear malware is never protected by the
//! courts.

use std::collections::HashSet;

use rand::Rng;

use softrep_core::taxonomy::PisCategory;

/// Outcome of putting one finding through legal review.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegalOutcome {
    /// The detection stands.
    Stands,
    /// The vendor sued; the signature must be withdrawn.
    Withdrawn,
    /// The vendor is already on the do-not-detect list; the signature is
    /// suppressed before publication.
    Suppressed,
}

/// The anti-virus company's legal environment.
pub struct LegalClimate {
    challenge_probability: f64,
    do_not_detect: HashSet<String>,
    lawsuits: u64,
}

impl LegalClimate {
    /// A climate where each grey-zone detection of a named vendor is
    /// challenged with `challenge_probability`.
    pub fn new(challenge_probability: f64) -> Self {
        LegalClimate {
            challenge_probability: challenge_probability.clamp(0.0, 1.0),
            do_not_detect: HashSet::new(),
            lawsuits: 0,
        }
    }

    /// Put a (prospective or published) grey-zone detection through legal
    /// review. `category` is the software's classification; `vendor` the
    /// name declared in its binary.
    pub fn review(
        &mut self,
        category: PisCategory,
        vendor: Option<&str>,
        rng: &mut impl Rng,
    ) -> LegalOutcome {
        // Clear malware enjoys no legal protection.
        if category.is_malware() || category.is_legitimate() {
            return LegalOutcome::Stands;
        }
        let Some(vendor) = vendor else {
            // Anonymous vendors cannot sue without identifying themselves
            // (§3.3 notes stripped binaries are themselves a PIS signal).
            return LegalOutcome::Stands;
        };
        if self.do_not_detect.contains(vendor) {
            return LegalOutcome::Suppressed;
        }
        if rng.gen_bool(self.challenge_probability) {
            self.lawsuits += 1;
            self.do_not_detect.insert(vendor.to_string());
            return LegalOutcome::Withdrawn;
        }
        LegalOutcome::Stands
    }

    /// Vendors currently protected by litigation threat.
    pub fn protected_vendors(&self) -> usize {
        self.do_not_detect.len()
    }

    /// Lawsuits filed so far.
    pub fn lawsuits(&self) -> u64 {
        self.lawsuits
    }

    /// Is this vendor on the do-not-detect list?
    pub fn is_protected(&self, vendor: &str) -> bool {
        self.do_not_detect.contains(vendor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use softrep_core::taxonomy::{ConsentLevel, ConsequenceLevel};

    fn grey() -> PisCategory {
        PisCategory::classify(ConsentLevel::Medium, ConsequenceLevel::Moderate)
    }

    fn malware() -> PisCategory {
        PisCategory::classify(ConsentLevel::Low, ConsequenceLevel::Severe)
    }

    #[test]
    fn malware_detections_always_stand() {
        let mut climate = LegalClimate::new(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(climate.review(malware(), Some("EvilCorp"), &mut rng), LegalOutcome::Stands);
        }
        assert_eq!(climate.lawsuits(), 0);
    }

    #[test]
    fn certain_challenge_withdraws_then_suppresses() {
        let mut climate = LegalClimate::new(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(climate.review(grey(), Some("Gator"), &mut rng), LegalOutcome::Withdrawn);
        assert!(climate.is_protected("Gator"));
        assert_eq!(climate.lawsuits(), 1);
        // From now on, the company pre-emptively suppresses.
        assert_eq!(climate.review(grey(), Some("Gator"), &mut rng), LegalOutcome::Suppressed);
        assert_eq!(climate.lawsuits(), 1, "suppression avoids a second lawsuit");
    }

    #[test]
    fn anonymous_vendors_cannot_sue() {
        let mut climate = LegalClimate::new(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(climate.review(grey(), None, &mut rng), LegalOutcome::Stands);
        assert_eq!(climate.protected_vendors(), 0);
    }

    #[test]
    fn zero_probability_climate_never_withdraws() {
        let mut climate = LegalClimate::new(0.0);
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..50 {
            let vendor = format!("v{i}");
            assert_eq!(climate.review(grey(), Some(&vendor), &mut rng), LegalOutcome::Stands);
        }
        assert_eq!(climate.lawsuits(), 0);
    }

    #[test]
    fn probability_is_clamped() {
        let climate = LegalClimate::new(7.5);
        assert_eq!(climate.challenge_probability, 1.0);
        let climate = LegalClimate::new(-1.0);
        assert_eq!(climate.challenge_probability, 0.0);
    }

    #[test]
    fn intermediate_probability_withdraws_sometimes() {
        let mut climate = LegalClimate::new(0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let mut outcomes = Vec::new();
        for i in 0..100 {
            let vendor = format!("v{i}");
            outcomes.push(climate.review(grey(), Some(&vendor), &mut rng));
        }
        let withdrawn = outcomes.iter().filter(|o| **o == LegalOutcome::Withdrawn).count();
        assert!((20..=80).contains(&withdrawn), "got {withdrawn}");
    }
}
