#![warn(missing_docs)]

//! The anti-virus / anti-spyware baseline of §4.3.
//!
//! The paper contrasts the reputation system with "currently available
//! countermeasures against PIS, such as anti-spyware and anti-virus
//! applications", and identifies four structural properties, all of which
//! are modelled here:
//!
//! 1. **Central investigation**: "the organization behind the
//!    countermeasure must investigate every software before being able to
//!    offer a protection against it" — the [`lab`] with a per-sample
//!    analysis latency.
//! 2. **Local definition databases**: "a vendor database that must be
//!    updated locally on the client" — [`engine`] separates the vendor's
//!    master database from what clients have synced.
//! 3. **Binary verdicts**: "a black and white world where an executable is
//!    branded as either a virus or not" — [`signature_db::Verdict`] has no
//!    grey zone.
//! 4. **Legal exposure**: grey-zone detections risk lawsuits ("legal
//!    disputes have already proved to be costly for anti-spyware software
//!    companies … they may be forced to remove certain software from their
//!    list") — the [`legal`] model withdraws challenged detections and
//!    suppresses future detections of litigious vendors.
//!
//! Experiment D6 runs this engine side by side with the reputation system
//! over the same synthetic release stream.

pub mod engine;
pub mod lab;
pub mod legal;
pub mod signature_db;

pub use engine::{AntiVirusEngine, EngineConfig, Sample, ScanVerdict};
pub use lab::{AnalysisLab, LabFinding};
pub use legal::{LegalClimate, LegalOutcome};
pub use signature_db::{SignatureDb, Verdict};
