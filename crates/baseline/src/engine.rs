//! The anti-virus engine: lab + legal review + versioned signatures +
//! client update lag, in one tickable component.

use rand::Rng;

use softrep_core::clock::Timestamp;
use softrep_core::taxonomy::PisCategory;

use crate::lab::AnalysisLab;
use crate::legal::{LegalClimate, LegalOutcome};
use crate::signature_db::{SignatureDb, Verdict};

/// A software release as seen by the anti-virus vendor's telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Content digest.
    pub software_id: String,
    /// Vendor declared in the binary, if any.
    pub vendor: Option<String>,
    /// Ground-truth classification (labs are competent; their problem is
    /// latency and lawyers).
    pub category: PisCategory,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Delay between a release and the vendor's telemetry noticing it.
    pub discovery_lag_secs: u64,
    /// Lab analysis latency per sample.
    pub analysis_latency_secs: u64,
    /// Whether the vendor dares to flag grey-zone software at all.
    pub detect_grey_zone: bool,
    /// Probability a named vendor challenges a grey-zone detection.
    pub legal_challenge_probability: f64,
    /// How often clients sync their local definition copy.
    pub client_update_interval_secs: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            discovery_lag_secs: 2 * 86_400,
            analysis_latency_secs: 5 * 86_400,
            detect_grey_zone: true,
            legal_challenge_probability: 0.3,
            client_update_interval_secs: 86_400,
        }
    }
}

/// What a client-side scan reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanVerdict {
    /// The local definitions flag the file.
    Malicious,
    /// The local definitions do not know the file — reported as clean,
    /// which is the §4.3 criticism: "an executable is either strictly
    /// malicious or it is totally safe".
    Clean,
}

/// The complete anti-virus pipeline.
pub struct AntiVirusEngine {
    config: EngineConfig,
    lab: AnalysisLab,
    legal: LegalClimate,
    master: SignatureDb,
    /// (software_id, detection published at) for time-to-protection stats.
    detection_log: Vec<(String, Timestamp)>,
}

impl AntiVirusEngine {
    /// Build an engine from `config`.
    pub fn new(config: EngineConfig) -> Self {
        AntiVirusEngine {
            lab: AnalysisLab::new(config.analysis_latency_secs, config.detect_grey_zone),
            legal: LegalClimate::new(config.legal_challenge_probability),
            master: SignatureDb::new(),
            detection_log: Vec::new(),
            config,
        }
    }

    /// A release occurred at `now`; telemetry will deliver it to the lab
    /// after the discovery lag.
    pub fn observe_release(&mut self, sample: &Sample, now: Timestamp) {
        self.lab.submit(
            &sample.software_id,
            sample.vendor.clone(),
            sample.category,
            now.plus_secs(self.config.discovery_lag_secs),
        );
    }

    /// Advance the pipeline to `now`: completed analyses go through legal
    /// review and (if they survive) become published signatures.
    pub fn tick(&mut self, now: Timestamp, rng: &mut impl Rng) {
        for finding in self.lab.collect_findings(now) {
            if !finding.flag {
                continue;
            }
            match self.legal.review(finding.category, finding.vendor.as_deref(), rng) {
                LegalOutcome::Stands => {
                    self.master.add_signature(&finding.software_id);
                    self.detection_log.push((finding.software_id, finding.completed_at));
                }
                LegalOutcome::Withdrawn => {
                    // The signature shipped, the lawsuit landed, the
                    // signature was pulled: net effect is a brief window
                    // of protection we conservatively model as none.
                    self.master.add_signature(&finding.software_id);
                    self.master.withdraw_signature(&finding.software_id);
                }
                LegalOutcome::Suppressed => {}
            }
        }
    }

    /// Scan with a client whose definitions were last synced at
    /// `client_synced_at` (the engine translates that to a database
    /// version via the update interval — clients only ever see whole
    /// published versions).
    ///
    /// For simplicity the client's copy is the master as of its last sync;
    /// `now`-fresh clients see the current master.
    pub fn client_scan(&self, software_id: &str, fresh: bool) -> ScanVerdict {
        let verdict = if fresh {
            self.master.scan(software_id)
        } else {
            // A maximally stale client (never synced) — the pessimistic
            // end used by experiment D6's update-lag sweep.
            self.master.scan_as_of(software_id, 0)
        };
        match verdict {
            Verdict::Malicious => ScanVerdict::Malicious,
            Verdict::Clean => ScanVerdict::Clean,
        }
    }

    /// Scan against the master as of an explicit version.
    pub fn scan_as_of_version(&self, software_id: &str, version: u64) -> ScanVerdict {
        match self.master.scan_as_of(software_id, version) {
            Verdict::Malicious => ScanVerdict::Malicious,
            Verdict::Clean => ScanVerdict::Clean,
        }
    }

    /// Current master database version (clients record this at sync time).
    pub fn master_version(&self) -> u64 {
        self.master.version()
    }

    /// When protection for `software_id` was first published, if ever.
    pub fn protection_published_at(&self, software_id: &str) -> Option<Timestamp> {
        self.detection_log.iter().find(|(id, _)| id == software_id).map(|(_, t)| *t)
    }

    /// Signature-count view (active, withdrawn).
    pub fn signature_counts(&self) -> (usize, usize) {
        (self.master.active_signatures(), self.master.withdrawn_signatures())
    }

    /// Vendors shielded by litigation.
    pub fn protected_vendors(&self) -> usize {
        self.legal.protected_vendors()
    }

    /// Lawsuits absorbed so far.
    pub fn lawsuits(&self) -> u64 {
        self.legal.lawsuits()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use softrep_core::taxonomy::{ConsentLevel, ConsequenceLevel};

    fn malware_sample(id: &str) -> Sample {
        Sample {
            software_id: id.into(),
            vendor: None,
            category: PisCategory::classify(ConsentLevel::Low, ConsequenceLevel::Severe),
        }
    }

    fn grey_sample(id: &str, vendor: &str) -> Sample {
        Sample {
            software_id: id.into(),
            vendor: Some(vendor.into()),
            category: PisCategory::classify(ConsentLevel::Medium, ConsequenceLevel::Moderate),
        }
    }

    fn legit_sample(id: &str) -> Sample {
        Sample {
            software_id: id.into(),
            vendor: Some("Honest Co".into()),
            category: PisCategory::classify(ConsentLevel::High, ConsequenceLevel::Tolerable),
        }
    }

    fn config_fast() -> EngineConfig {
        EngineConfig {
            discovery_lag_secs: 100,
            analysis_latency_secs: 200,
            detect_grey_zone: true,
            legal_challenge_probability: 0.0,
            client_update_interval_secs: 50,
        }
    }

    #[test]
    fn protection_appears_after_discovery_plus_analysis() {
        let mut engine = AntiVirusEngine::new(config_fast());
        let mut rng = StdRng::seed_from_u64(1);
        engine.observe_release(&malware_sample("bad"), Timestamp(0));

        engine.tick(Timestamp(299), &mut rng);
        assert_eq!(engine.client_scan("bad", true), ScanVerdict::Clean, "still in the pipeline");

        engine.tick(Timestamp(300), &mut rng);
        assert_eq!(engine.client_scan("bad", true), ScanVerdict::Malicious);
        assert_eq!(engine.protection_published_at("bad"), Some(Timestamp(300)));
    }

    #[test]
    fn legitimate_software_is_never_flagged() {
        let mut engine = AntiVirusEngine::new(config_fast());
        let mut rng = StdRng::seed_from_u64(2);
        engine.observe_release(&legit_sample("good"), Timestamp(0));
        engine.tick(Timestamp(10_000), &mut rng);
        assert_eq!(engine.client_scan("good", true), ScanVerdict::Clean);
        assert_eq!(engine.signature_counts(), (0, 0));
    }

    #[test]
    fn conservative_engine_misses_grey_zone_entirely() {
        let mut config = config_fast();
        config.detect_grey_zone = false;
        let mut engine = AntiVirusEngine::new(config);
        let mut rng = StdRng::seed_from_u64(3);
        engine.observe_release(&grey_sample("adware", "AdCo"), Timestamp(0));
        engine.tick(Timestamp(10_000), &mut rng);
        assert_eq!(engine.client_scan("adware", true), ScanVerdict::Clean);
    }

    #[test]
    fn lawsuits_withdraw_grey_zone_protection() {
        let mut config = config_fast();
        config.legal_challenge_probability = 1.0;
        let mut engine = AntiVirusEngine::new(config);
        let mut rng = StdRng::seed_from_u64(4);

        engine.observe_release(&grey_sample("adware1", "Gator"), Timestamp(0));
        engine.tick(Timestamp(10_000), &mut rng);
        assert_eq!(engine.client_scan("adware1", true), ScanVerdict::Clean);
        assert_eq!(engine.lawsuits(), 1);
        assert_eq!(engine.protected_vendors(), 1);
        assert_eq!(engine.signature_counts(), (0, 1));

        // The vendor's next release is suppressed without a lawsuit.
        engine.observe_release(&grey_sample("adware2", "Gator"), Timestamp(20_000));
        engine.tick(Timestamp(40_000), &mut rng);
        assert_eq!(engine.client_scan("adware2", true), ScanVerdict::Clean);
        assert_eq!(engine.lawsuits(), 1);
    }

    #[test]
    fn malware_is_immune_to_lawsuits() {
        let mut config = config_fast();
        config.legal_challenge_probability = 1.0;
        let mut engine = AntiVirusEngine::new(config);
        let mut rng = StdRng::seed_from_u64(5);
        engine.observe_release(&malware_sample("trojan"), Timestamp(0));
        engine.tick(Timestamp(10_000), &mut rng);
        assert_eq!(engine.client_scan("trojan", true), ScanVerdict::Malicious);
        assert_eq!(engine.lawsuits(), 0);
    }

    #[test]
    fn stale_clients_scan_clean() {
        let mut engine = AntiVirusEngine::new(config_fast());
        let mut rng = StdRng::seed_from_u64(6);
        engine.observe_release(&malware_sample("bad"), Timestamp(0));
        engine.tick(Timestamp(10_000), &mut rng);
        assert_eq!(engine.client_scan("bad", false), ScanVerdict::Clean);
        assert_eq!(engine.client_scan("bad", true), ScanVerdict::Malicious);
        // Versioned scans interpolate.
        let v = engine.master_version();
        assert_eq!(engine.scan_as_of_version("bad", v), ScanVerdict::Malicious);
        assert_eq!(engine.scan_as_of_version("bad", 0), ScanVerdict::Clean);
    }
}
