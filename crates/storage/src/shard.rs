//! Lock-striped tree map: the store's in-memory half.
//!
//! Tree names hash (FNV-1a) onto a fixed set of stripes, each guarding its
//! slice of the `tree name → B-tree` map with a `RwLock`. Readers of
//! different stripes never touch the same lock, and readers of the *same*
//! stripe only wait during the brief in-memory mutation of a batch — never
//! during WAL or snapshot I/O, which the store performs outside all stripe
//! locks.
//!
//! Cross-tree atomicity: `apply` takes the write locks of every affected
//! stripe *simultaneously* (in ascending stripe order) before mutating, so
//! a reader can never observe one op of a batch without the others.
//! Writers are already serialized by the store's commit lock, which is
//! what makes the ascending-order acquisition deadlock-free and keeps
//! memory order identical to WAL order.

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::RwLock;

use crate::batch::{BatchOp, WriteBatch};

/// One keyspace: an ordered map of raw keys to raw values.
pub(crate) type Tree = BTreeMap<Vec<u8>, Vec<u8>>;

type Stripe = BTreeMap<String, Tree>;

/// The striped tree map.
pub(crate) struct ShardSet {
    stripes: Vec<RwLock<Stripe>>,
}

/// FNV-1a over the tree name, reduced to a stripe index.
fn stripe_of(tree: &str, count: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tree.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    (h % count.max(1) as u64) as usize
}

impl ShardSet {
    /// Build `count` stripes (clamped to `1..=256`) holding `initial`.
    pub fn new(count: usize, initial: BTreeMap<String, Tree>) -> Self {
        let count = count.clamp(1, 256);
        let mut buckets: Vec<Stripe> = (0..count).map(|_| Stripe::new()).collect();
        for (name, tree) in initial {
            let idx = stripe_of(&name, count);
            if let Some(bucket) = buckets.get_mut(idx) {
                bucket.insert(name, tree);
            }
        }
        ShardSet { stripes: buckets.into_iter().map(RwLock::new).collect() }
    }

    /// Run `f` with `tree` read-locked (`None` when the tree does not
    /// exist). The guard is released before returning, so `f` must not
    /// call back into the owning store.
    pub fn with_tree<R>(&self, tree: &str, f: impl FnOnce(Option<&Tree>) -> R) -> R {
        let idx = stripe_of(tree, self.stripes.len());
        match self.stripes.get(idx).or_else(|| self.stripes.first()) {
            Some(lock) => {
                let guard = lock.read();
                f(guard.get(tree))
            }
            // Unreachable (`new` clamps to ≥ 1 stripe) but panic-free.
            None => f(None),
        }
    }

    /// Mutate under every affected stripe's write lock, all held at once.
    /// The caller (the store) holds the commit lock, serializing writers.
    pub fn apply(&self, batch: &WriteBatch) {
        let count = self.stripes.len();
        let affected: BTreeSet<usize> =
            batch.ops().iter().map(|op| stripe_of(op.tree(), count)).collect();
        // Ascending index order; writers are serialized upstream, so the
        // order only matters for lock-discipline hygiene.
        let mut guards: BTreeMap<usize, _> = affected
            .iter()
            .filter_map(|&idx| self.stripes.get(idx).map(|lock| (idx, lock.write())))
            .collect();
        for op in batch.ops() {
            let idx = stripe_of(op.tree(), count);
            let Some(stripe) = guards.get_mut(&idx) else { continue };
            match op {
                BatchOp::Put { tree, key, value } => {
                    stripe.entry(tree.clone()).or_default().insert(key.clone(), value.clone());
                }
                BatchOp::Delete { tree, key } => {
                    if let Some(t) = stripe.get_mut(tree) {
                        t.remove(key);
                    }
                }
            }
        }
    }

    /// Clone every tree into one map. Only coherent across stripes when
    /// the caller holds the commit lock (no writer can interleave).
    pub fn snapshot(&self) -> BTreeMap<String, Tree> {
        let mut out = BTreeMap::new();
        for stripe in &self.stripes {
            for (name, tree) in stripe.read().iter() {
                out.insert(name.clone(), tree.clone());
            }
        }
        out
    }

    /// `(trees, total keys)`. Coherent under the commit lock, like
    /// [`ShardSet::snapshot`].
    pub fn count(&self) -> (usize, usize) {
        let mut trees = 0usize;
        let mut keys = 0usize;
        for stripe in &self.stripes {
            let guard = stripe.read();
            trees += guard.len();
            keys += guard.values().map(BTreeMap::len).sum::<usize>();
        }
        (trees, keys)
    }

    /// Sorted names of every tree across all stripes.
    pub fn tree_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for stripe in &self.stripes {
            names.extend(stripe.read().keys().cloned());
        }
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_is_stable_and_in_range() {
        for count in [1usize, 3, 16, 256] {
            for name in ["users", "votes", "agg_dirty", ""] {
                let a = stripe_of(name, count);
                assert_eq!(a, stripe_of(name, count));
                assert!(a < count);
            }
        }
    }

    #[test]
    fn cross_stripe_batch_lands_everywhere() {
        let shards = ShardSet::new(16, BTreeMap::new());
        let mut batch = WriteBatch::new();
        for i in 0..32u32 {
            batch.put(format!("tree-{i}"), i.to_be_bytes().to_vec(), vec![1]);
        }
        shards.apply(&batch);
        let (trees, keys) = shards.count();
        assert_eq!((trees, keys), (32, 32));
        assert_eq!(shards.tree_names().len(), 32);
        let snap = shards.snapshot();
        assert_eq!(snap.len(), 32);
    }

    #[test]
    fn delete_of_unknown_tree_is_a_noop() {
        let shards = ShardSet::new(4, BTreeMap::new());
        let mut batch = WriteBatch::new();
        batch.delete("ghost", b"k".to_vec());
        shards.apply(&batch);
        assert_eq!(shards.count(), (0, 0));
    }
}
