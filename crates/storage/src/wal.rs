//! Append-only write-ahead log with CRC-guarded entries.
//!
//! Entry layout on disk:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc32: u32 LE  | payload: len × u8|
//! +----------------+----------------+------------------+
//! ```
//!
//! Replay scans entries in order and stops at the first frame whose length
//! or CRC does not check out — a torn tail from a crash mid-append — and
//! truncates the file there, restoring invariant 6 of DESIGN.md: *any
//! prefix of the log replays to a consistent store*.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::error::StorageResult;

/// Maximum sane entry size (16 MiB). Longer frames are treated as torn
/// tails rather than honoured, bounding memory during recovery of a
/// corrupted file.
const MAX_ENTRY_LEN: u32 = 16 * 1024 * 1024;

/// An open write-ahead log.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    entries_written: u64,
    bytes_written: u64,
}

impl Wal {
    /// Open (creating if needed) the log at `path` for appending.
    pub fn open(path: impl Into<PathBuf>) -> StorageResult<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes_written = file.metadata()?.len();
        Ok(Wal { path, writer: BufWriter::new(file), entries_written: 0, bytes_written })
    }

    /// Append one entry; buffered until [`Wal::sync`] (or drop) flushes.
    pub fn append(&mut self, payload: &[u8]) -> StorageResult<()> {
        debug_assert!(payload.len() as u64 <= u64::from(MAX_ENTRY_LEN));
        let len = payload.len() as u32;
        let crc = crc32(payload);
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(&crc.to_le_bytes())?;
        self.writer.write_all(payload)?;
        self.entries_written += 1;
        self.bytes_written += 8 + u64::from(len);
        Ok(())
    }

    /// Flush buffered entries to the OS and fsync to the device.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Flush to the OS without the fsync (fast path for tests/benches).
    pub fn flush(&mut self) -> StorageResult<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Number of entries appended through this handle.
    pub fn entries_written(&self) -> u64 {
        self.entries_written
    }

    /// Total log size in bytes (pre-existing + appended).
    pub fn len_bytes(&self) -> u64 {
        self.bytes_written
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Truncate the log to zero length (called after a snapshot compaction
    /// has captured all its effects).
    pub fn truncate(&mut self) -> StorageResult<()> {
        self.writer.flush()?;
        let file = self.writer.get_mut();
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.sync_data()?;
        self.bytes_written = 0;
        Ok(())
    }

    /// Replay all valid entries from the file at `path`.
    ///
    /// Returns the decoded payloads and truncates any torn tail in place.
    pub fn replay(path: impl AsRef<Path>) -> StorageResult<Vec<Vec<u8>>> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let mut file = File::open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        drop(file);

        let mut entries = Vec::new();
        let mut offset = 0usize;
        let valid_prefix = loop {
            // A missing or truncated header is a torn tail.
            let Some((len, crc)) = frame_header(&raw, offset) else {
                break offset;
            };
            if len > MAX_ENTRY_LEN {
                break offset; // corrupt length field
            }
            let body_start = offset + 8;
            let Some(body) = body_start
                .checked_add(len as usize)
                .and_then(|body_end| raw.get(body_start..body_end))
            else {
                break offset; // torn body
            };
            if crc32(body) != crc {
                break offset; // corrupted entry — treat as torn tail
            }
            entries.push(body.to_vec());
            offset = body_start + body.len();
        };

        if valid_prefix < raw.len() {
            // Drop the torn tail so a future append starts from a clean
            // frame boundary.
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_prefix as u64)?;
            file.sync_data()?;
        }
        Ok(entries)
    }
}

/// Decode the `(len, crc)` frame header at `offset`, or `None` when fewer
/// than 8 bytes remain (a clean end of log or a torn header — the caller
/// treats both as the end of the valid prefix).
fn frame_header(raw: &[u8], offset: usize) -> Option<(u32, u32)> {
    let header = raw.get(offset..offset.checked_add(8)?)?;
    let len = u32::from_le_bytes(header.get(..4)?.try_into().ok()?);
    let crc = u32::from_le_bytes(header.get(4..8)?.try_into().ok()?);
    Some((len, crc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("softrep-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_replay_returns_entries_in_order() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("WAL");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.append(b"").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let entries = Wal::replay(&path).unwrap();
        assert_eq!(entries, vec![b"one".to_vec(), b"two".to_vec(), Vec::new()]);
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let dir = tmpdir("missing");
        assert!(Wal::replay(dir.join("WAL")).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("WAL");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"durable entry").unwrap();
        wal.append(b"casualty").unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Chop off the last 3 bytes to simulate a crash mid-write.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();

        let entries = Wal::replay(&path).unwrap();
        assert_eq!(entries, vec![b"durable entry".to_vec()]);
        // The file itself must have been truncated back to the valid prefix.
        let len_after = fs::metadata(&path).unwrap().len();
        assert_eq!(len_after, (8 + b"durable entry".len()) as u64);

        // Appending after recovery keeps the log consistent.
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"post-crash").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let entries = Wal::replay(&path).unwrap();
        assert_eq!(entries, vec![b"durable entry".to_vec(), b"post-crash".to_vec()]);
    }

    #[test]
    fn corrupted_crc_stops_replay_at_entry() {
        let dir = tmpdir("crc");
        let path = dir.join("WAL");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"good").unwrap();
        wal.append(b"flipped").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let mut raw = fs::read(&path).unwrap();
        let second_body = 8 + 4 + 8; // header+body of first, header of second
        raw[second_body] ^= 0xff;
        fs::write(&path, &raw).unwrap();

        let entries = Wal::replay(&path).unwrap();
        assert_eq!(entries, vec![b"good".to_vec()]);
    }

    #[test]
    fn hostile_length_field_is_treated_as_torn() {
        let dir = tmpdir("hostile");
        let path = dir.join("WAL");
        let mut raw = Vec::new();
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        raw.extend_from_slice(b"junk");
        fs::write(&path, &raw).unwrap();
        assert!(Wal::replay(&path).unwrap().is_empty());
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
    }

    #[test]
    fn truncate_resets_log() {
        let dir = tmpdir("trunc");
        let path = dir.join("WAL");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"before snapshot").unwrap();
        wal.sync().unwrap();
        wal.truncate().unwrap();
        wal.append(b"after snapshot").unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"after snapshot".to_vec()]);
    }

    #[test]
    fn any_prefix_replays_consistently() {
        // DESIGN.md invariant 6, exhaustively over every byte prefix.
        let dir = tmpdir("prefix");
        let path = dir.join("WAL");
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..5u8 {
            wal.append(&vec![i; (i as usize + 1) * 3]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let full = fs::read(&path).unwrap();

        for cut in 0..=full.len() {
            let p = dir.join(format!("WAL-{cut}"));
            fs::write(&p, &full[..cut]).unwrap();
            let entries = Wal::replay(&p).unwrap();
            // Each replayed entry must be one of the originals, in order.
            for (i, e) in entries.iter().enumerate() {
                assert_eq!(e, &vec![i as u8; (i + 1) * 3], "cut={cut}");
            }
        }
    }
}
