//! Append-only write-ahead log with CRC-guarded entries.
//!
//! Entry layout on disk:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc32: u32 LE  | payload: len × u8|
//! +----------------+----------------+------------------+
//! ```
//!
//! Replay scans entries in order and stops at the first frame whose length
//! or CRC does not check out — a torn tail from a crash mid-append — and
//! truncates the file there, restoring invariant 6 of DESIGN.md: *any
//! prefix of the log replays to a consistent store*.
//!
//! The backing file is held behind an `Arc` so the store's group
//! committer can run `sync_data` *outside* its commit lock while other
//! threads keep appending to the in-memory buffer; `append` itself never
//! issues a syscall until the buffer spills or a flush/sync is requested.
//!
//! All file I/O goes through a [`Vfs`] handle ([`crate::vfs`]): production
//! uses the passthrough `RealVfs` (the `open`/`replay` constructors), the
//! fault-injection harness substitutes a `SimVfs` via the `*_on` variants.
//!
//! A failed *flush* poisons the handle: a partial `write_all` can leave a
//! torn frame mid-file, and retrying the buffered bytes would lay a
//! duplicate copy after the tear — every later frame would be unreachable
//! to replay even though its fsync succeeded. Once poisoned, every write
//! path returns [`StorageError::Poisoned`] until the log is reopened
//! (replay truncates the tear). A failed `sync_data` does **not** poison:
//! no bytes were misplaced, so the group committer may simply retry.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::crc::crc32;
use crate::error::{StorageError, StorageResult};
use crate::vfs::{self, Vfs, VfsFile};

/// Maximum sane entry size (16 MiB). Longer frames are treated as torn
/// tails rather than honoured, bounding memory during recovery of a
/// corrupted file.
const MAX_ENTRY_LEN: u32 = 16 * 1024 * 1024;

/// Buffered bytes beyond which `append` spills to the OS on its own.
const SPILL_BYTES: usize = 64 * 1024;

/// An open write-ahead log.
pub struct Wal {
    path: PathBuf,
    file: Arc<dyn VfsFile>,
    buf: Vec<u8>,
    entries: u64,
    bytes: u64,
    /// Set when a flush failed partway; see the module docs.
    poisoned: bool,
}

/// Outcome of replaying a log file.
pub struct WalReplay {
    /// The valid entry payloads, in append order.
    pub entries: Vec<Vec<u8>>,
    /// True when a torn/corrupt tail was found (and truncated away).
    pub torn: bool,
}

impl Wal {
    /// Open (creating if needed) the log at `path` for appending.
    ///
    /// Existing entries are counted so [`Wal::entries_written`] and
    /// [`Wal::len_bytes`] describe the whole log, not just this handle's
    /// appends; a torn tail is truncated so new frames start on a clean
    /// boundary.
    pub fn open(path: impl Into<PathBuf>) -> StorageResult<Self> {
        Self::open_on(&*vfs::real(), path)
    }

    /// [`Wal::open`] against an explicit [`Vfs`] (fault-injection entry).
    pub fn open_on(vfs: &dyn Vfs, path: impl Into<PathBuf>) -> StorageResult<Self> {
        let path = path.into();
        let file = vfs.open_append(&path)?;
        let raw = file.read_all()?;
        let scan = scan_frames(&raw);
        if scan.valid_len < raw.len() {
            file.set_len(scan.valid_len as u64)?;
            file.sync_data()?;
        }
        Ok(Wal {
            path,
            file,
            buf: Vec::new(),
            entries: scan.entries,
            bytes: scan.valid_len as u64,
            poisoned: false,
        })
    }

    /// Append one entry to the in-memory buffer; a spill, flush or sync
    /// pushes it to the OS.
    pub fn append(&mut self, payload: &[u8]) -> StorageResult<()> {
        debug_assert!(payload.len() as u64 <= u64::from(MAX_ENTRY_LEN));
        if self.poisoned {
            return Err(StorageError::Poisoned(POISON_MSG));
        }
        let len = payload.len() as u32;
        let crc = crc32(payload);
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.entries += 1;
        self.bytes += 8 + u64::from(len);
        if self.buf.len() >= SPILL_BYTES {
            self.flush()?;
        }
        Ok(())
    }

    /// Flush buffered entries to the OS and fsync to the device.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.flush()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Flush to the OS without the fsync (fast path: survives a process
    /// crash but not a power failure). A failure here poisons the handle
    /// — the kernel may hold a partial frame, and retrying the buffer
    /// would lay duplicate bytes after the tear (see module docs).
    pub fn flush(&mut self) -> StorageResult<()> {
        if self.poisoned {
            return Err(StorageError::Poisoned(POISON_MSG));
        }
        if !self.buf.is_empty() {
            if let Err(e) = self.file.append(&self.buf) {
                self.poisoned = true;
                return Err(e);
            }
            self.buf.clear();
        }
        Ok(())
    }

    /// True once a failed flush has retired this handle (reopen the log
    /// to recover — replay truncates the torn frame).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// A shared handle to the backing file, for running `sync_data`
    /// without holding the lock that guards this `Wal`. The caller must
    /// have called [`Wal::flush`] first — only flushed bytes are covered.
    pub fn sync_handle(&self) -> Arc<dyn VfsFile> {
        Arc::clone(&self.file)
    }

    /// Total entries in the log: replayed-on-open plus appended here.
    pub fn entries_written(&self) -> u64 {
        self.entries
    }

    /// Total log size in bytes (pre-existing + appended, incl. buffered).
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Truncate the log to zero length (called after a snapshot compaction
    /// has captured all its effects). Resets both counters.
    pub fn truncate(&mut self) -> StorageResult<()> {
        self.buf.clear();
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.entries = 0;
        self.bytes = 0;
        // The file is empty and the buffer dropped: any torn frame a
        // poisoning flush left behind is gone, so the handle is clean.
        self.poisoned = false;
        Ok(())
    }

    /// Replay all valid entries from the file at `path`, truncating any
    /// torn tail in place.
    pub fn replay(path: impl AsRef<Path>) -> StorageResult<Vec<Vec<u8>>> {
        Ok(Self::replay_with_outcome(path)?.entries)
    }

    /// Like [`Wal::replay`], but also reports whether a torn tail was
    /// dropped — the store's rotation recovery needs to distinguish a
    /// cleanly-ended `WAL.old` from one that died mid-append.
    pub fn replay_with_outcome(path: impl AsRef<Path>) -> StorageResult<WalReplay> {
        Self::replay_with_outcome_on(&*vfs::real(), path.as_ref())
    }

    /// [`Wal::replay_with_outcome`] against an explicit [`Vfs`].
    pub fn replay_with_outcome_on(vfs: &dyn Vfs, path: &Path) -> StorageResult<WalReplay> {
        let Some(raw) = vfs.try_read(path)? else {
            return Ok(WalReplay { entries: Vec::new(), torn: false });
        };

        let mut entries = Vec::new();
        let mut offset = 0usize;
        let valid_prefix = loop {
            // A missing or truncated header is a torn tail.
            let Some((len, crc)) = frame_header(&raw, offset) else {
                break offset;
            };
            if len > MAX_ENTRY_LEN {
                break offset; // corrupt length field
            }
            let body_start = offset + 8;
            let Some(body) = body_start
                .checked_add(len as usize)
                .and_then(|body_end| raw.get(body_start..body_end))
            else {
                break offset; // torn body
            };
            if crc32(body) != crc {
                break offset; // corrupted entry — treat as torn tail
            }
            entries.push(body.to_vec());
            offset = body_start + body.len();
        };

        let torn = valid_prefix < raw.len();
        if torn {
            // Drop the torn tail so a future append starts from a clean
            // frame boundary.
            let file = vfs.open_append(path)?;
            file.set_len(valid_prefix as u64)?;
            file.sync_data()?;
        }
        Ok(WalReplay { entries, torn })
    }
}

/// Message carried by every [`StorageError::Poisoned`] this module emits.
const POISON_MSG: &str = "WAL flush failed partway; reopen the store to truncate the torn frame";

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort: push buffered frames to the OS like the old
        // BufWriter-backed implementation did on drop.
        let _ = self.flush();
    }
}

/// How far a raw log image parses cleanly, and how many frames it holds.
struct FrameScan {
    entries: u64,
    valid_len: usize,
}

/// Iterate the valid frame payloads of a raw log image, in append order,
/// stopping at the first torn/corrupt frame — the same acceptance rule as
/// replay, shared with the store's replication reader (which walks log
/// images it read through the [`Vfs`] seam without opening a `Wal`).
pub(crate) fn valid_frames(raw: &[u8]) -> impl Iterator<Item = &[u8]> {
    let mut offset = 0usize;
    std::iter::from_fn(move || {
        let (len, crc) = frame_header(raw, offset)?;
        if len > MAX_ENTRY_LEN {
            return None;
        }
        let body_start = offset + 8;
        let body = body_start.checked_add(len as usize).and_then(|end| raw.get(body_start..end))?;
        if crc32(body) != crc {
            return None;
        }
        offset = body_start + body.len();
        Some(body)
    })
}

/// Walk the frames of `raw`, stopping at the first torn/corrupt one.
fn scan_frames(raw: &[u8]) -> FrameScan {
    let mut entries = 0u64;
    let mut offset = 0usize;
    while let Some((len, crc)) = frame_header(raw, offset) {
        if len > MAX_ENTRY_LEN {
            break;
        }
        let body_start = offset + 8;
        let Some(body) =
            body_start.checked_add(len as usize).and_then(|body_end| raw.get(body_start..body_end))
        else {
            break;
        };
        if crc32(body) != crc {
            break;
        }
        entries += 1;
        offset = body_start + body.len();
    }
    FrameScan { entries, valid_len: offset }
}

/// Decode the `(len, crc)` frame header at `offset`, or `None` when fewer
/// than 8 bytes remain (a clean end of log or a torn header — the caller
/// treats both as the end of the valid prefix).
fn frame_header(raw: &[u8], offset: usize) -> Option<(u32, u32)> {
    let header = raw.get(offset..offset.checked_add(8)?)?;
    let len = u32::from_le_bytes(header.get(..4)?.try_into().ok()?);
    let crc = u32::from_le_bytes(header.get(4..8)?.try_into().ok()?);
    Some((len, crc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("softrep-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_replay_returns_entries_in_order() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("WAL");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.append(b"").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let entries = Wal::replay(&path).unwrap();
        assert_eq!(entries, vec![b"one".to_vec(), b"two".to_vec(), Vec::new()]);
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let dir = tmpdir("missing");
        let outcome = Wal::replay_with_outcome(dir.join("WAL")).unwrap();
        assert!(outcome.entries.is_empty());
        assert!(!outcome.torn);
    }

    #[test]
    fn counters_cover_preexisting_entries_and_reset_on_truncate() {
        let dir = tmpdir("counters");
        let path = dir.join("WAL");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.sync().unwrap();
        }
        // A fresh handle sees the whole log, not zero.
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.entries_written(), 2);
        assert_eq!(wal.len_bytes(), (8 + 5 + 8 + 6) as u64);
        wal.append(b"third").unwrap();
        assert_eq!(wal.entries_written(), 3);
        // Truncation resets *both* counters together.
        wal.truncate().unwrap();
        assert_eq!(wal.entries_written(), 0);
        assert_eq!(wal.len_bytes(), 0);
        wal.append(b"post").unwrap();
        assert_eq!(wal.entries_written(), 1);
        assert_eq!(wal.len_bytes(), (8 + 4) as u64);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("WAL");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"durable entry").unwrap();
        wal.append(b"casualty").unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Chop off the last 3 bytes to simulate a crash mid-write.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();

        let outcome = Wal::replay_with_outcome(&path).unwrap();
        assert_eq!(outcome.entries, vec![b"durable entry".to_vec()]);
        assert!(outcome.torn);
        // The file itself must have been truncated back to the valid prefix.
        let len_after = fs::metadata(&path).unwrap().len();
        assert_eq!(len_after, (8 + b"durable entry".len()) as u64);

        // Appending after recovery keeps the log consistent.
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.entries_written(), 1);
        wal.append(b"post-crash").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let entries = Wal::replay(&path).unwrap();
        assert_eq!(entries, vec![b"durable entry".to_vec(), b"post-crash".to_vec()]);
    }

    #[test]
    fn open_truncates_a_torn_tail_itself() {
        let dir = tmpdir("open-torn");
        let path = dir.join("WAL");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"whole").unwrap();
            wal.sync().unwrap();
        }
        let mut raw = fs::read(&path).unwrap();
        raw.extend_from_slice(&[9, 0, 0]); // half a header
        fs::write(&path, &raw).unwrap();

        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.entries_written(), 1);
        wal.append(b"next").unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"whole".to_vec(), b"next".to_vec()]);
    }

    #[test]
    fn corrupted_crc_stops_replay_at_entry() {
        let dir = tmpdir("crc");
        let path = dir.join("WAL");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"good").unwrap();
        wal.append(b"flipped").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let mut raw = fs::read(&path).unwrap();
        let second_body = 8 + 4 + 8; // header+body of first, header of second
        raw[second_body] ^= 0xff;
        fs::write(&path, &raw).unwrap();

        let entries = Wal::replay(&path).unwrap();
        assert_eq!(entries, vec![b"good".to_vec()]);
    }

    #[test]
    fn hostile_length_field_is_treated_as_torn() {
        let dir = tmpdir("hostile");
        let path = dir.join("WAL");
        let mut raw = Vec::new();
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        raw.extend_from_slice(b"junk");
        fs::write(&path, &raw).unwrap();
        assert!(Wal::replay(&path).unwrap().is_empty());
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
    }

    #[test]
    fn truncate_resets_log() {
        let dir = tmpdir("trunc");
        let path = dir.join("WAL");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"before snapshot").unwrap();
        wal.sync().unwrap();
        wal.truncate().unwrap();
        wal.append(b"after snapshot").unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"after snapshot".to_vec()]);
    }

    #[test]
    fn drop_flushes_buffered_entries() {
        let dir = tmpdir("dropflush");
        let path = dir.join("WAL");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"buffered only").unwrap();
            // No flush/sync: Drop must push it to the OS.
        }
        assert_eq!(Wal::replay(&path).unwrap(), vec![b"buffered only".to_vec()]);
    }

    #[test]
    fn failed_flush_poisons_the_handle_until_reopen() {
        use crate::failpoint::{FailAction, Fault};
        use crate::vfs::SimVfs;
        let vfs = SimVfs::new();
        let mut wal = Wal::open_on(&vfs, "/sim/WAL").unwrap();
        wal.append(b"good").unwrap();
        wal.flush().unwrap();
        // The next flush tears partway: a partial frame reaches the file.
        vfs.failpoints().set("vfs.append", FailAction::Every(Fault::Torn));
        wal.append(b"doomed-entry").unwrap();
        assert!(matches!(wal.flush(), Err(StorageError::Io(_))));
        assert!(wal.is_poisoned());
        // Every later write path refuses with the typed poison error —
        // retrying would duplicate bytes after the tear.
        assert!(matches!(wal.append(b"more"), Err(StorageError::Poisoned(_))));
        assert!(matches!(wal.sync(), Err(StorageError::Poisoned(_))));
        vfs.failpoints().clear_all();
        drop(wal); // Drop's best-effort flush must not resurrect the buffer.
        let outcome = Wal::replay_with_outcome_on(&vfs, Path::new("/sim/WAL")).unwrap();
        assert_eq!(outcome.entries, vec![b"good".to_vec()], "clean prefix survives");
        assert!(outcome.torn, "the partial frame reads as a torn tail");
        // A fresh handle over the truncated log is serviceable again.
        let mut wal = Wal::open_on(&vfs, "/sim/WAL").unwrap();
        assert!(!wal.is_poisoned());
        wal.append(b"after").unwrap();
        wal.sync().unwrap();
    }

    #[test]
    fn truncate_clears_poisoning() {
        use crate::failpoint::{FailAction, Fault};
        use crate::vfs::SimVfs;
        let vfs = SimVfs::new();
        let mut wal = Wal::open_on(&vfs, "/sim/WAL").unwrap();
        vfs.failpoints().set("vfs.append", FailAction::Nth(Fault::Err, 1));
        wal.append(b"entry").unwrap();
        assert!(wal.flush().is_err());
        assert!(wal.is_poisoned());
        wal.truncate().unwrap();
        assert!(!wal.is_poisoned(), "an empty file has no torn frame to protect");
        wal.append(b"fresh").unwrap();
        wal.sync().unwrap();
        assert_eq!(
            Wal::replay_with_outcome_on(&vfs, Path::new("/sim/WAL")).unwrap().entries,
            vec![b"fresh".to_vec()]
        );
    }

    #[test]
    fn any_prefix_replays_consistently() {
        // DESIGN.md invariant 6, exhaustively over every byte prefix.
        let dir = tmpdir("prefix");
        let path = dir.join("WAL");
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..5u8 {
            wal.append(&vec![i; (i as usize + 1) * 3]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let full = fs::read(&path).unwrap();

        for cut in 0..=full.len() {
            let p = dir.join(format!("WAL-{cut}"));
            fs::write(&p, &full[..cut]).unwrap();
            let entries = Wal::replay(&p).unwrap();
            // Each replayed entry must be one of the originals, in order.
            for (i, e) in entries.iter().enumerate() {
                assert_eq!(e, &vec![i as u8; (i + 1) * 3], "cut={cut}");
            }
        }
    }
}
