#![warn(missing_docs)]

//! Embedded storage engine for the softwareputation reputation server.
//!
//! The paper's server keeps "a database containing registered user
//! information, ratings and comments" (§3.2). The original proof-of-concept
//! used an off-the-shelf RDBMS; per the reproduction's substitution rule we
//! build the substrate ourselves. The engine is a small, durable,
//! log-structured store:
//!
//! * [`codec`] — a compact binary record codec (varints, zig-zag, length
//!   prefixes) used for every persisted value.
//! * [`crc`] — CRC-32 (IEEE) for WAL entry integrity.
//! * [`wal`] — an append-only, CRC-checked write-ahead log with torn-tail
//!   truncation on replay.
//! * `shard` (crate-private) — the lock-striped tree map behind the
//!   store's read path.
//! * [`commit`] — durability modes and the group-commit ledger that lets
//!   concurrent writers share one fsync.
//! * [`vfs`] — the filesystem abstraction every durable effect routes
//!   through: a zero-cost `RealVfs` passthrough in production, a
//!   deterministic `SimVfs` (visible/durable split + event log + crash
//!   image reconstruction) for the fault-injection harness.
//! * [`failpoint`] — the deterministic, seedable failpoint registry that
//!   drives fault injection (also loadable from `SOFTREP_FAILPOINTS`).
//! * [`store`] — named B-tree keyspaces ("trees") with atomic write
//!   batches, WAL group-commit durability, snapshot + rotated-WAL replay
//!   recovery, and non-blocking compaction.
//! * [`table`] — a typed table layer (key/record codecs + schema names)
//!   over raw trees.
//! * [`index`] — secondary indexes maintained transactionally with their
//!   base table.
//!
//! Disk layout under a store directory:
//!
//! ```text
//! store/
//!   SNAPSHOT        # full dump of all trees at the last compaction
//!   WAL             # entries applied after the snapshot
//!   WAL.old         # transient: pre-rotation log while a compaction is
//!                   # writing its snapshot (replayed before WAL on open)
//! ```
//!
//! The engine also runs fully in memory ([`store::Store::in_memory`]) for
//! the agent simulations, where durability is irrelevant but the API and
//! constraint checks must match production exactly.

pub mod batch;
pub mod codec;
pub mod commit;
pub mod crc;
pub mod error;
pub mod failpoint;
pub mod index;
pub mod replication;
pub(crate) mod shard;
pub mod store;
pub mod table;
pub mod vfs;
pub mod wal;

pub use batch::WriteBatch;
pub use codec::{Decode, Encode, Reader, Writer};
pub use commit::{CommitLedger, DurabilityMode, StoreOptions};
pub use error::{StorageError, StorageResult};
pub use failpoint::{FailAction, Failpoints, Fault};
pub use replication::{ReplEntry, ReplRead};
pub use store::{Store, StoreStats, TreeName};
pub use table::{KeyCodec, Table, TableSchema};
pub use vfs::{durable_image_at, CrashStyle, RealVfs, SimVfs, Vfs, VfsEvent, VfsFile};
