//! The store: named B-tree keyspaces with WAL durability and snapshots.
//!
//! Concurrency model (DESIGN.md §10). The tree map is striped across
//! `RwLock` shards ([`crate::shard`]), so readers of different trees never
//! share a lock and readers never wait on writer *I/O* — only on the brief
//! in-memory mutation of a batch that touches their stripe. Writers are
//! serialized by a single commit mutex whose critical section touches
//! memory only: append the encoded batch to the WAL's in-process buffer,
//! assign a commit sequence number, and mutate the affected stripes (all
//! their write locks held at once, which is what keeps a batch atomic
//! across trees). The expensive part of durability — `sync_data` — runs
//! *outside* every lock through the group committer ([`crate::commit`]):
//! one in-flight fsync covers every batch appended while it ran, so N
//! concurrent `Always`-mode writers pay ~1 fsync, not N. Compaction
//! rotates the WAL (`WAL` → `WAL.old`) in a short critical section and
//! writes the snapshot off-lock, so writes proceed during compaction;
//! recovery replays `WAL.old` before `WAL`.
//!
//! An earlier revision guarded the whole store with one mutex on the
//! theory that write volume is modest; the D10 concurrency benchmarks
//! showed that collapses read throughput on multi-core serving, which is
//! why the striped design replaced it.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::time::Duration;

use parking_lot::Mutex;
use softrep_obs::{Counter, Histogram, SpanFamily};

use crate::batch::{BatchOp, WriteBatch};
use crate::codec::{Decode, Encode, Reader, Writer};
use crate::commit::{CommitLedger, DurabilityMode, StoreOptions};
use crate::crc::crc32;
use crate::error::{StorageError, StorageResult};
use crate::replication::{ReplEntry, ReplRead};
use crate::shard::{ShardSet, Tree};
use crate::vfs::{self, Vfs};
use crate::wal::Wal;

/// A tree (keyspace) name. Plain `&str` newtype used to make call sites
/// self-documenting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeName(pub &'static str);

impl std::fmt::Display for TreeName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// Everything guarded by the commit mutex: the WAL handle, the group
/// commit ledger, and the write counters (folded in here so `stats` can
/// snapshot them coherently in one acquisition).
struct CommitState {
    wal: Option<Wal>,
    ledger: CommitLedger,
    batches_applied: u64,
    ops_since_compaction: u64,
    wal_rotations: u64,
}

/// Counters exposed for the D10 benchmarks and operational visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of trees.
    pub trees: usize,
    /// Total number of live keys across all trees.
    pub keys: usize,
    /// Batches applied since the store was opened.
    pub batches_applied: u64,
    /// Operations applied since the last compaction.
    pub ops_since_compaction: u64,
    /// Current WAL length in bytes (0 for in-memory stores).
    pub wal_bytes: u64,
    /// Completed group fsyncs.
    pub group_commits: u64,
    /// Batches made durable by an fsync another batch issued.
    pub fsyncs_saved: u64,
    /// Largest number of batches retired by a single fsync.
    pub max_group_depth: u64,
    /// WAL → WAL.old rotations performed by compaction.
    pub wal_rotations: u64,
}

/// Cached observability handles. Registered once per store against the
/// process-wide registry; recording afterwards is relaxed atomics only,
/// and every record happens *outside* the commit lock so instrumentation
/// can never widen a critical section.
struct StoreObs {
    /// Bytes appended to the WAL (durable stores only — the in-memory
    /// path records nothing and stays benchmark-identical).
    wal_appended_bytes: Arc<Counter>,
    /// `sync_data` wall time; always-on because an fsync costs ~ms and
    /// two clock reads are noise. Slow fsyncs land in the slow-op log.
    fsync: SpanFamily,
    /// Batches retired per completed group fsync — the live distribution
    /// behind the `max_group_depth` high-water mark.
    group_depth: Arc<Histogram>,
}

impl StoreObs {
    fn new() -> Self {
        let registry = softrep_obs::registry();
        StoreObs {
            wal_appended_bytes: registry.counter("softrep_store_wal_appended_bytes_total"),
            fsync: SpanFamily::always(
                "store_wal_fsync",
                registry.histogram("softrep_store_fsync_us"),
            ),
            group_depth: registry.histogram("softrep_store_group_commit_depth"),
        }
    }
}

/// Condvar-with-generation used to wake `wait_durable` waiters after a
/// group fsync completes. The generation counter makes the wait race-free
/// (a notify between predicate check and sleep is observed as a changed
/// generation); a short timeout backstops any missed edge, and under a
/// loom model the wait degrades to a schedule yield so the cooperative
/// scheduler keeps control.
struct SyncSignal {
    generation: StdMutex<u64>,
    cv: Condvar,
}

impl SyncSignal {
    fn new() -> Self {
        SyncSignal { generation: StdMutex::new(0), cv: Condvar::new() }
    }

    fn generation(&self) -> u64 {
        *self.generation.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn notify(&self) {
        let mut generation = self.generation.lock().unwrap_or_else(PoisonError::into_inner);
        *generation = generation.wrapping_add(1);
        drop(generation);
        self.cv.notify_all();
    }

    fn wait_change(&self, seen: u64) {
        if loom::hook::is_active() {
            loom::thread::yield_now();
            return;
        }
        let generation = self.generation.lock().unwrap_or_else(PoisonError::into_inner);
        if *generation != seen {
            return;
        }
        let _ = self.cv.wait_timeout(generation, Duration::from_millis(20));
    }
}

/// An embedded key-value store with named trees.
pub struct Store {
    shards: ShardSet,
    commit: Mutex<CommitState>,
    sync_signal: SyncSignal,
    /// Serializes compactions; never held while taking the commit lock
    /// for longer than the rotation critical section.
    compaction: Mutex<()>,
    durability: DurabilityMode,
    /// WAL-backed? Fixed at construction; lets `apply` skip encoding
    /// entirely for in-memory stores without taking the commit lock.
    durable: bool,
    dir: Option<PathBuf>,
    /// Every filesystem touch goes through this handle; production uses
    /// the [`crate::vfs::RealVfs`] passthrough, fault-injection tests a
    /// [`crate::vfs::SimVfs`].
    vfs: Arc<dyn Vfs>,
    obs: StoreObs,
}

const SNAPSHOT_FILE: &str = "SNAPSHOT";
const WAL_FILE: &str = "WAL";
const WAL_OLD_FILE: &str = "WAL.old";
/// Current snapshot format: body starts with a varint carrying the commit
/// sequence number the snapshot covers, so recovery can resume the
/// [`CommitLedger`] numbering and replication can ship a correct base.
const SNAPSHOT_MAGIC: &[u8; 8] = b"SREPSNP2";
/// Pre-replication format (no embedded sequence number); still readable —
/// such a snapshot covers sequence 0 as far as the ledger is concerned.
const SNAPSHOT_MAGIC_V1: &[u8; 8] = b"SREPSNP1";

impl Store {
    /// Open a durable store rooted at `dir` with default options
    /// ([`DurabilityMode::Os`], 16 shards), creating it if absent.
    pub fn open(dir: impl Into<PathBuf>) -> StorageResult<Self> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Open a durable store with explicit durability/sharding options.
    /// Loads the last snapshot, replays `WAL.old` (a rotation interrupted
    /// by a crash) and then `WAL` on top, and finishes any interrupted
    /// compaction so `WAL.old` never outlives `open`.
    pub fn open_with(dir: impl Into<PathBuf>, options: StoreOptions) -> StorageResult<Self> {
        Self::open_with_vfs(dir, options, vfs::real())
    }

    /// [`Store::open_with`] against an explicit [`Vfs`] — the
    /// fault-injection entry point. Every durable effect of this store
    /// (opens, appends, fsyncs, renames, removes) routes through `vfs`.
    pub fn open_with_vfs(
        dir: impl Into<PathBuf>,
        options: StoreOptions,
        vfs: Arc<dyn Vfs>,
    ) -> StorageResult<Self> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)?;
        let wal_path = dir.join(WAL_FILE);
        let wal_old_path = dir.join(WAL_OLD_FILE);

        let (mut trees, snapshot_seq) = Self::load_snapshot(&*vfs, &dir.join(SNAPSHOT_FILE))?;
        let had_rotation = vfs.exists(&wal_old_path);
        let mut old_torn = false;
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        if had_rotation {
            let outcome = Wal::replay_with_outcome_on(&*vfs, &wal_old_path)?;
            old_torn = outcome.torn;
            payloads = outcome.entries;
        }
        if old_torn {
            // The rotated log died mid-append. Every frame in the newer
            // WAL postdates the tear, so replaying it would apply batches
            // over a gap; drop it to preserve the any-prefix invariant.
            vfs.write(&wal_path, &[])?;
        } else {
            payloads.extend(Wal::replay_with_outcome_on(&*vfs, &wal_path)?.entries);
        }
        // Every frame carries its commit sequence number; the chain across
        // WAL.old and WAL must be gapless or a batch went missing. Frames
        // at or below the snapshot's covered sequence replay idempotently
        // (puts and deletes set absolute per-key state).
        let mut prev_seq: Option<u64> = None;
        for payload in &payloads {
            let (seq, batch) = Self::decode_wal_entry(payload)?;
            if let Some(prev) = prev_seq {
                if seq != prev + 1 {
                    return Err(StorageError::Corrupt(format!(
                        "WAL sequence gap: frame {seq} follows frame {prev}"
                    )));
                }
            }
            prev_seq = Some(seq);
            Self::apply_to_trees(&mut trees, &batch);
        }
        let recovered_seq = prev_seq.unwrap_or(0).max(snapshot_seq);

        let wal = Wal::open_on(&*vfs, &wal_path)?;
        let store = Store {
            shards: ShardSet::new(options.shards, trees),
            commit: Mutex::new(CommitState {
                wal: Some(wal),
                ledger: CommitLedger::starting_at(recovered_seq),
                batches_applied: 0,
                ops_since_compaction: 0,
                wal_rotations: 0,
            }),
            sync_signal: SyncSignal::new(),
            compaction: Mutex::new(()),
            durability: options.durability,
            durable: true,
            dir: Some(dir),
            vfs,
            obs: StoreObs::new(),
        };
        if had_rotation {
            // Finish the interrupted compaction: write a snapshot that
            // covers WAL.old, then retire it.
            store.compact()?;
        }
        Ok(store)
    }

    /// Open a volatile store with no disk backing. API-identical to a
    /// durable store; used by the agent simulations.
    pub fn in_memory() -> Self {
        Self::in_memory_with(StoreOptions::default())
    }

    /// Volatile store with an explicit shard count (benchmarks).
    pub fn in_memory_with(options: StoreOptions) -> Self {
        Store {
            shards: ShardSet::new(options.shards, BTreeMap::new()),
            commit: Mutex::new(CommitState {
                wal: None,
                ledger: CommitLedger::new(),
                batches_applied: 0,
                ops_since_compaction: 0,
                wal_rotations: 0,
            }),
            sync_signal: SyncSignal::new(),
            compaction: Mutex::new(()),
            durability: DurabilityMode::Os,
            durable: false,
            dir: None,
            vfs: vfs::real(),
            obs: StoreObs::new(),
        }
    }

    /// Apply `batch` atomically: journal first, then mutate memory — both
    /// inside one commit-ordered critical section, so recovery replay
    /// order always equals the order readers observed. Durability depends
    /// on the store's [`DurabilityMode`]; in `Always` mode this blocks
    /// until a group fsync covers the batch.
    pub fn apply(&self, batch: &WriteBatch) -> StorageResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        // Encode off-lock; skipped entirely for in-memory stores. The
        // first 8 bytes are a placeholder for the commit sequence number,
        // filled in under the commit lock right before the append —
        // embedding the sequence makes the log self-describing, which is
        // what recovery's ledger resume and replication tails read back.
        let mut payload = if self.durable {
            let mut buf = vec![0u8; 8];
            buf.extend_from_slice(&batch.encode_to_bytes());
            Some(buf)
        } else {
            None
        };
        let (seq, sync_now) = {
            let mut commit = self.commit.lock();
            let next_seq = commit.ledger.appended_seq() + 1;
            if let (Some(wal), Some(payload)) = (commit.wal.as_mut(), payload.as_deref_mut()) {
                if let Some(slot) = payload.get_mut(..8) {
                    slot.copy_from_slice(&next_seq.to_le_bytes());
                }
                wal.append(payload)?;
                if matches!(self.durability, DurabilityMode::Os) {
                    // lint: allow(guard-io, "Os mode hands frames to the kernel inside the commit lock so append order equals WAL order; no fsync happens here")
                    wal.flush()?;
                }
            }
            let bytes = payload.as_ref().map_or(0, |p| 8 + p.len() as u64);
            let seq = commit.ledger.record_append(bytes);
            self.shards.apply(batch);
            commit.batches_applied += 1;
            commit.ops_since_compaction += batch.len() as u64;
            let sync_now = match self.durability {
                DurabilityMode::Always => true,
                DurabilityMode::Batched { every_bytes } => commit.ledger.sync_due(every_bytes),
                DurabilityMode::Os => false,
            };
            (seq, sync_now)
        };
        if let Some(payload) = payload.as_deref() {
            self.obs.wal_appended_bytes.add(8 + payload.len() as u64);
        }
        if sync_now && self.durable {
            self.wait_durable(seq)?;
        }
        Ok(())
    }

    /// Single-key put (one-op batch).
    pub fn put(
        &self,
        tree: &str,
        key: impl Into<Vec<u8>>,
        value: impl Into<Vec<u8>>,
    ) -> StorageResult<()> {
        let mut b = WriteBatch::new();
        b.put(tree, key, value);
        self.apply(&b)
    }

    /// Single-key delete (one-op batch).
    pub fn delete(&self, tree: &str, key: impl Into<Vec<u8>>) -> StorageResult<()> {
        let mut b = WriteBatch::new();
        b.delete(tree, key);
        self.apply(&b)
    }

    /// Fetch a value. Unknown trees read as empty.
    pub fn get(&self, tree: &str, key: &[u8]) -> Option<Vec<u8>> {
        self.shards.with_tree(tree, |t| t.and_then(|t| t.get(key).cloned()))
    }

    /// True if `key` exists in `tree`.
    pub fn contains(&self, tree: &str, key: &[u8]) -> bool {
        self.shards.with_tree(tree, |t| t.is_some_and(|t| t.contains_key(key)))
    }

    /// Visit every `(key, value)` whose key starts with `prefix`, in key
    /// order, without copying either. Return `false` from the visitor to
    /// stop early. The tree's shard stays read-locked for the duration,
    /// so the visitor must not call back into this store.
    pub fn for_each_prefix(
        &self,
        tree: &str,
        prefix: &[u8],
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) {
        self.shards.with_tree(tree, |t| {
            let Some(t) = t else { return };
            let range = t.range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded));
            for (k, v) in range {
                if !k.starts_with(prefix) || !f(k, v) {
                    break;
                }
            }
        });
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, in key
    /// order. Copies each pair; prefer [`Store::for_each_prefix`] on hot
    /// paths that immediately decode.
    pub fn scan_prefix(&self, tree: &str, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        self.for_each_prefix(tree, prefix, |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        });
        out
    }

    /// All pairs in `tree`, in key order.
    pub fn scan_all(&self, tree: &str) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.scan_prefix(tree, &[])
    }

    /// Number of keys in `tree` (0 for unknown trees).
    pub fn tree_len(&self, tree: &str) -> usize {
        self.shards.with_tree(tree, |t| t.map_or(0, BTreeMap::len))
    }

    /// Names of all trees that have ever been written, sorted.
    pub fn tree_names(&self) -> Vec<String> {
        self.shards.tree_names()
    }

    /// Block until everything appended so far is fsynced (no-op in
    /// memory). Joins the group committer like any other waiter.
    pub fn sync(&self) -> StorageResult<()> {
        let target = {
            let commit = self.commit.lock();
            if commit.wal.is_none() {
                return Ok(());
            }
            commit.ledger.appended_seq()
        };
        self.wait_durable(target)
    }

    /// Wait until `seq` is covered by a completed fsync, driving the
    /// group committer if the sync slot is free. At most one thread runs
    /// `sync_data` at a time; everyone else sleeps on the signal and is
    /// woken durable, which is exactly the fsync-coalescing that makes
    /// `Always` mode affordable under concurrency.
    fn wait_durable(&self, seq: u64) -> StorageResult<()> {
        loop {
            let observed = self.sync_signal.generation();
            let claim = {
                let mut guard = self.commit.lock();
                let commit = &mut *guard;
                if commit.ledger.is_durable(seq) {
                    return Ok(());
                }
                let Some(wal) = commit.wal.as_mut() else {
                    return Ok(());
                };
                match commit.ledger.try_begin_sync() {
                    Some(sync_to) => {
                        // Push buffered frames to the OS while still
                        // holding the lock (cheap), fsync off-lock.
                        // lint: allow(guard-io, "buffered flush under the commit lock keeps WAL order; the expensive sync_data runs off-lock below")
                        if let Err(e) = wal.flush() {
                            commit.ledger.finish_sync(sync_to, false);
                            return Err(e);
                        }
                        Some((sync_to, wal.sync_handle()))
                    }
                    None => None,
                }
            };
            match claim {
                Some((sync_to, file)) => {
                    let span = self.obs.fsync.maybe_start();
                    let synced = file.sync_data();
                    drop(span); // records fsync latency (off-lock)
                    let ok = synced.is_ok();
                    let depth = self.commit.lock().ledger.finish_sync(sync_to, ok);
                    if depth > 0 {
                        self.obs.group_depth.record(depth);
                    }
                    self.sync_signal.notify();
                    synced?;
                }
                None => self.sync_signal.wait_change(observed),
            }
        }
    }

    /// Write a full snapshot without blocking writers: the WAL is rotated
    /// to `WAL.old` and a consistent view cloned in a short critical
    /// section; encoding, writing and fsyncing the snapshot happen with
    /// no lock held. `WAL.old` is removed only after the snapshot rename,
    /// so a crash at any point recovers (recovery replays `WAL.old`
    /// before `WAL`; re-applying already-snapshotted batches is
    /// idempotent because puts and deletes set absolute per-key state).
    pub fn compact(&self) -> StorageResult<()> {
        let Some(dir) = self.dir.clone() else { return Ok(()) };
        let _compaction = self.compaction.lock();
        let wal_old = dir.join(WAL_OLD_FILE);
        // `WAL.old` still present means an earlier compaction failed after
        // rotating: don't rotate again (that would clobber it) — just
        // write a fresh snapshot covering memory and retire the old log.
        let resume = self.vfs.exists(&wal_old);

        let (covered_seq, view) = {
            let mut commit = self.commit.lock();
            if let Some(wal) = commit.wal.as_mut() {
                // lint: allow(guard-io, "rotation point: the log must be durable before rename, and no append may interleave with it")
                wal.sync()?;
            }
            commit.ledger.mark_all_durable();
            if !resume {
                commit.wal = None; // close the handle before renaming
                let renamed = self.vfs.rename(&dir.join(WAL_FILE), &wal_old);
                // Reopen before propagating: on rename failure this
                // reopens the same log and the store stays serviceable.
                commit.wal = Some(Wal::open_on(&*self.vfs, dir.join(WAL_FILE))?);
                renamed?;
                commit.wal_rotations += 1;
            }
            commit.ops_since_compaction = 0;
            // Cloned under the commit lock: no writer can interleave, so
            // the view is a consistent cut at a batch boundary, and the
            // ledger's sequence number names exactly that cut.
            (commit.ledger.appended_seq(), self.shards.snapshot())
        };

        let bytes = Self::encode_snapshot(covered_seq, &view);
        let tmp = dir.join("SNAPSHOT.tmp");
        {
            let f = self.vfs.create(&tmp)?;
            f.append(&bytes)?;
            // lint: allow(guard-io, "the compaction marker lock exists to serialize whole compactions, snapshot write included")
            f.sync_data()?;
        }
        self.vfs.rename(&tmp, &dir.join(SNAPSHOT_FILE))?;

        if self.vfs.exists(&wal_old) {
            self.vfs.remove_file(&wal_old)?;
        }
        Ok(())
    }

    /// Current counters, snapshotted coherently: one commit-lock
    /// acquisition covers every write-side counter, so `batches_applied`
    /// can never disagree with `ops_since_compaction`.
    pub fn stats(&self) -> StoreStats {
        let commit = self.commit.lock();
        let (trees, keys) = self.shards.count();
        StoreStats {
            trees,
            keys,
            batches_applied: commit.batches_applied,
            ops_since_compaction: commit.ops_since_compaction,
            wal_bytes: commit.wal.as_ref().map_or(0, Wal::len_bytes),
            group_commits: commit.ledger.group_commits(),
            fsyncs_saved: commit.ledger.fsyncs_saved(),
            max_group_depth: commit.ledger.max_group_depth(),
            wal_rotations: commit.wal_rotations,
        }
    }

    fn apply_to_trees(trees: &mut BTreeMap<String, Tree>, batch: &WriteBatch) {
        for op in batch.ops() {
            match op {
                BatchOp::Put { tree, key, value } => {
                    trees.entry(tree.clone()).or_default().insert(key.clone(), value.clone());
                }
                BatchOp::Delete { tree, key } => {
                    if let Some(t) = trees.get_mut(tree) {
                        t.remove(key);
                    }
                }
            }
        }
    }

    fn encode_snapshot(covered_seq: u64, trees: &BTreeMap<String, Tree>) -> Vec<u8> {
        let mut w = Writer::with_capacity(4096);
        w.put_varint(covered_seq);
        w.put_varint(trees.len() as u64);
        for (name, tree) in trees {
            w.put_str(name);
            w.put_varint(tree.len() as u64);
            for (k, v) in tree {
                w.put_bytes(k);
                w.put_bytes(v);
            }
        }
        let body = w.finish();
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn load_snapshot(vfs: &dyn Vfs, path: &Path) -> StorageResult<(BTreeMap<String, Tree>, u64)> {
        let Some(raw) = vfs.try_read(path)? else {
            return Ok((BTreeMap::new(), 0));
        };
        Self::parse_snapshot(&raw)
    }

    /// Decode a snapshot image (compaction file or [`Store::export_snapshot`]
    /// bytes) into its trees and the commit sequence number it covers.
    /// Accepts the current format and the pre-replication `SREPSNP1` one,
    /// which carried no sequence number and so covers sequence 0.
    pub(crate) fn parse_snapshot(raw: &[u8]) -> StorageResult<(BTreeMap<String, Tree>, u64)> {
        let magic = raw.get(..8);
        let v2 = magic.is_some_and(|m| m == SNAPSHOT_MAGIC);
        let v1 = magic.is_some_and(|m| m == SNAPSHOT_MAGIC_V1);
        let crc_bytes: Option<[u8; 4]> = raw.get(8..12).and_then(|slice| slice.try_into().ok());
        let (Some(crc_bytes), Some(body), true) = (crc_bytes, raw.get(12..), v1 || v2) else {
            return Err(StorageError::Corrupt("snapshot header malformed".into()));
        };
        let crc = u32::from_le_bytes(crc_bytes);
        if crc32(body) != crc {
            return Err(StorageError::Corrupt("snapshot CRC mismatch".into()));
        }
        let mut r = Reader::new(body);
        let covered_seq = if v2 { r.get_varint()? } else { 0 };
        let tree_count = r.get_varint()? as usize;
        let mut trees = BTreeMap::new();
        for _ in 0..tree_count {
            let name = r.get_str()?;
            let entry_count = r.get_varint()? as usize;
            let mut tree = Tree::new();
            for _ in 0..entry_count {
                let k = r.get_bytes()?;
                let v = r.get_bytes()?;
                tree.insert(k, v);
            }
            trees.insert(name, tree);
        }
        r.expect_end()?;
        Ok((trees, covered_seq))
    }

    /// Split a WAL payload into its embedded commit sequence number and
    /// the batch it journals.
    fn decode_wal_entry(payload: &[u8]) -> StorageResult<(u64, WriteBatch)> {
        let seq = Self::wal_entry_seq(payload)?;
        let batch = WriteBatch::decode_from_bytes(payload.get(8..).unwrap_or_default())?;
        Ok((seq, batch))
    }

    /// The commit sequence number embedded in a WAL payload, without
    /// decoding the batch body.
    fn wal_entry_seq(payload: &[u8]) -> StorageResult<u64> {
        let bytes: [u8; 8] = payload.get(..8).and_then(|s| s.try_into().ok()).ok_or_else(|| {
            StorageError::Corrupt("WAL entry shorter than its sequence header".into())
        })?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Newest committed sequence number (0 before the first commit).
    pub fn committed_seq(&self) -> u64 {
        self.commit.lock().ledger.appended_seq()
    }

    /// Export a consistent snapshot of every tree as `(covered_seq,
    /// bytes)`, in the same format compaction writes. The cut is cloned
    /// under the commit lock (memory only); encoding runs off-lock. This
    /// is what the primary serves to a bootstrapping replica.
    pub fn export_snapshot(&self) -> (u64, Vec<u8>) {
        let (seq, view) = {
            let commit = self.commit.lock();
            (commit.ledger.appended_seq(), self.shards.snapshot())
        };
        (seq, Self::encode_snapshot(seq, &view))
    }

    /// A canonical dump of the user-visible contents: every tree except
    /// replication metadata (names starting `__repl`), encoded
    /// deterministically under one consistent cut. Two stores holding the
    /// same logical data yield byte-identical dumps — the property the
    /// replication differential tests assert.
    pub fn content_dump(&self) -> Vec<u8> {
        let mut view = {
            let _commit = self.commit.lock();
            self.shards.snapshot()
        };
        // Drop replication metadata and empty shells (a tree whose keys
        // were all deleted lingers in the shard map; it holds no data, so
        // it must not make two logically-equal stores compare unequal).
        view.retain(|name, tree| !name.starts_with("__repl") && !tree.is_empty());
        Self::encode_snapshot(0, &view)
    }

    /// Read committed WAL entries after `from_seq` for a replication
    /// subscriber. Returns [`ReplRead::Entries`] with a contiguous run
    /// starting at `from_seq + 1` (bounded by `max_entries`/`max_bytes`,
    /// with `backlog_bytes` counting what remains), or
    /// [`ReplRead::SnapshotNeeded`] when compaction has already retired
    /// that suffix and the subscriber must bootstrap from a snapshot.
    ///
    /// Only frames the recovered-or-flushed log actually holds are served,
    /// so a primary that crashed and lost an unsynced suffix can never
    /// ship batches it no longer has — the replica instead observes the
    /// regressed `committed_seq` and resyncs.
    pub fn replication_read(
        &self,
        from_seq: u64,
        max_entries: usize,
        max_bytes: usize,
    ) -> StorageResult<ReplRead> {
        let Some(dir) = self.dir.as_ref() else {
            return Err(StorageError::Unsupported("replication reads need a WAL-backed store"));
        };
        let max_entries = max_entries.max(1);
        // Hold the compaction lock across the whole read: rotation moves
        // frames between WAL and WAL.old, and retiring WAL.old would pull
        // a file out from under us mid-scan.
        let _compaction = self.compaction.lock();
        let committed_seq = {
            let mut commit = self.commit.lock();
            if let Some(wal) = commit.wal.as_mut() {
                // lint: allow(guard-io, "buffered flush only, so the file covers every committed frame; same commit-lock cost the Os durability path already pays")
                wal.flush()?;
            }
            commit.ledger.appended_seq()
        };
        if from_seq >= committed_seq {
            return Ok(ReplRead::Entries { entries: Vec::new(), committed_seq, backlog_bytes: 0 });
        }
        let mut entries = Vec::new();
        let mut taken_bytes = 0usize;
        let mut backlog_bytes = 0u64;
        let mut full = false;
        for name in [WAL_OLD_FILE, WAL_FILE] {
            let Some(raw) = self.vfs.try_read(&dir.join(name))? else { continue };
            for payload in crate::wal::valid_frames(&raw) {
                let seq = Self::wal_entry_seq(payload)?;
                if seq <= from_seq || seq > committed_seq {
                    // Below: already applied by the subscriber. Above: a
                    // frame appended after our committed cut was taken.
                    continue;
                }
                if entries.len() >= max_entries || taken_bytes >= max_bytes {
                    full = true;
                }
                if full {
                    backlog_bytes += payload.len().saturating_sub(8) as u64;
                    continue;
                }
                let batch = payload.get(8..).unwrap_or_default().to_vec();
                taken_bytes += batch.len();
                entries.push(ReplEntry { seq, batch });
            }
        }
        match entries.first() {
            Some(first) if first.seq == from_seq + 1 => {
                Ok(ReplRead::Entries { entries, committed_seq, backlog_bytes })
            }
            // Either the suffix after `from_seq` was compacted away
            // entirely, or its head was — both mean the log can no longer
            // serve a gapless continuation.
            _ => Ok(ReplRead::SnapshotNeeded { committed_seq }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("softrep-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_delete_in_memory() {
        let s = Store::in_memory();
        s.put("users", b"alice".to_vec(), b"record".to_vec()).unwrap();
        assert_eq!(s.get("users", b"alice").unwrap(), b"record");
        assert!(s.contains("users", b"alice"));
        s.delete("users", b"alice".to_vec()).unwrap();
        assert!(s.get("users", b"alice").is_none());
        assert!(!s.contains("users", b"alice"));
    }

    #[test]
    fn unknown_tree_reads_empty() {
        let s = Store::in_memory();
        assert!(s.get("nope", b"k").is_none());
        assert_eq!(s.tree_len("nope"), 0);
        assert!(s.scan_all("nope").is_empty());
    }

    #[test]
    fn scan_prefix_respects_order_and_bounds() {
        let s = Store::in_memory();
        for k in ["a1", "a2", "a3", "b1", "b2"] {
            s.put("t", k.as_bytes().to_vec(), k.as_bytes().to_vec()).unwrap();
        }
        let hits = s.scan_prefix("t", b"a");
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].0, b"a1");
        assert_eq!(hits[2].0, b"a3");
        assert_eq!(s.scan_prefix("t", b"b2").len(), 1);
        assert_eq!(s.scan_prefix("t", b"c").len(), 0);
        assert_eq!(s.scan_all("t").len(), 5);
    }

    #[test]
    fn for_each_prefix_borrows_and_stops_early() {
        let s = Store::in_memory();
        for k in ["a1", "a2", "a3", "b1"] {
            s.put("t", k.as_bytes().to_vec(), k.as_bytes().to_vec()).unwrap();
        }
        let mut seen = Vec::new();
        s.for_each_prefix("t", b"a", |k, v| {
            assert_eq!(k, v);
            seen.push(k.to_vec());
            seen.len() < 2 // stop after two
        });
        assert_eq!(seen, vec![b"a1".to_vec(), b"a2".to_vec()]);
        // Unknown tree: the visitor is simply never called.
        s.for_each_prefix("ghost", b"", |_, _| panic!("should not be called"));
    }

    #[test]
    fn batch_is_atomic_across_trees() {
        let s = Store::in_memory();
        let mut b = WriteBatch::new();
        b.put("votes", b"v1".to_vec(), b"10".to_vec());
        b.put("index", b"u1:v1".to_vec(), Vec::new());
        s.apply(&b).unwrap();
        assert!(s.contains("votes", b"v1"));
        assert!(s.contains("index", b"u1:v1"));
        assert_eq!(s.stats().batches_applied, 1);
    }

    #[test]
    fn durable_store_survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let s = Store::open(&dir).unwrap();
            s.put("software", b"abc".to_vec(), b"rating=7".to_vec()).unwrap();
            s.put("software", b"def".to_vec(), b"rating=3".to_vec()).unwrap();
            s.delete("software", b"def".to_vec()).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get("software", b"abc").unwrap(), b"rating=7");
        assert!(s.get("software", b"def").is_none());
        assert_eq!(s.tree_len("software"), 1);
    }

    #[test]
    fn compaction_preserves_data_and_truncates_wal() {
        let dir = tmpdir("compact");
        {
            let s = Store::open(&dir).unwrap();
            for i in 0..100u64 {
                s.put("t", i.to_be_bytes().to_vec(), vec![i as u8]).unwrap();
            }
            assert!(s.stats().wal_bytes > 0);
            s.compact().unwrap();
            assert_eq!(s.stats().wal_bytes, 0);
            assert_eq!(s.stats().ops_since_compaction, 0);
            assert_eq!(s.stats().wal_rotations, 1);
            assert!(!dir.join(WAL_OLD_FILE).exists(), "rotated log retired");
            // Post-compaction writes land in the fresh WAL.
            s.put("t", 200u64.to_be_bytes().to_vec(), vec![200u8.wrapping_add(0)]).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.tree_len("t"), 101);
        assert_eq!(s.get("t", &42u64.to_be_bytes()).unwrap(), vec![42]);
        assert_eq!(s.get("t", &200u64.to_be_bytes()).unwrap(), vec![200]);
    }

    #[test]
    fn writes_during_compaction_are_kept() {
        // Non-blocking compaction: a writer thread keeps appending while
        // compact() runs; nothing may be lost across a reopen.
        let dir = tmpdir("compact-live");
        let s = std::sync::Arc::new(Store::open(&dir).unwrap());
        for i in 0..500u64 {
            s.put("t", i.to_be_bytes().to_vec(), vec![7]).unwrap();
        }
        let writer = {
            let s = std::sync::Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 500..1000u64 {
                    s.put("t", i.to_be_bytes().to_vec(), vec![7]).unwrap();
                }
            })
        };
        s.compact().unwrap();
        writer.join().unwrap();
        s.sync().unwrap();
        assert_eq!(s.tree_len("t"), 1000);
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.tree_len("t"), 1000);
    }

    #[test]
    fn always_mode_group_commits_concurrent_writers() {
        let dir = tmpdir("always");
        let s = std::sync::Arc::new(
            Store::open_with(&dir, StoreOptions { durability: DurabilityMode::Always, shards: 16 })
                .unwrap(),
        );
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        s.put("t", (t * 1000 + i).to_be_bytes().to_vec(), vec![1]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let st = s.stats();
        assert_eq!(st.batches_applied, 100);
        assert!(st.group_commits >= 1);
        assert_eq!(
            st.group_commits + st.fsyncs_saved,
            100,
            "every batch either issued or rode an fsync"
        );
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.tree_len("t"), 100);
    }

    #[test]
    fn batched_mode_syncs_on_byte_threshold() {
        let dir = tmpdir("batched");
        let s = Store::open_with(
            &dir,
            StoreOptions { durability: DurabilityMode::Batched { every_bytes: 256 }, shards: 4 },
        )
        .unwrap();
        for i in 0..50u64 {
            s.put("t", i.to_be_bytes().to_vec(), vec![0u8; 32]).unwrap();
        }
        let st = s.stats();
        assert!(st.group_commits >= 1, "threshold crossings must have forced fsyncs");
        assert!(st.group_commits < 50, "but far fewer than one per batch");
    }

    #[test]
    fn snapshot_crc_detects_corruption() {
        let dir = tmpdir("snapcrc");
        {
            let s = Store::open(&dir).unwrap();
            s.put("t", b"k".to_vec(), b"v".to_vec()).unwrap();
            s.compact().unwrap();
        }
        // Flip a byte in the snapshot body.
        let snap = dir.join(SNAPSHOT_FILE);
        let mut raw = fs::read(&snap).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        fs::write(&snap, &raw).unwrap();
        assert!(matches!(Store::open(&dir), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn reopen_after_torn_wal_drops_only_torn_batch() {
        let dir = tmpdir("tornwal");
        {
            let s = Store::open(&dir).unwrap();
            s.put("t", b"safe".to_vec(), b"1".to_vec()).unwrap();
            s.put("t", b"torn".to_vec(), b"2".to_vec()).unwrap();
            s.sync().unwrap();
        }
        let wal_path = dir.join(WAL_FILE);
        let raw = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &raw[..raw.len() - 1]).unwrap();

        let s = Store::open(&dir).unwrap();
        assert!(s.contains("t", b"safe"));
        assert!(!s.contains("t", b"torn"));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let s = Store::in_memory();
        s.apply(&WriteBatch::new()).unwrap();
        assert_eq!(s.stats().batches_applied, 0);
    }

    #[test]
    fn stats_count_keys_and_trees() {
        let s = Store::in_memory();
        s.put("a", b"1".to_vec(), b"x".to_vec()).unwrap();
        s.put("a", b"2".to_vec(), b"x".to_vec()).unwrap();
        s.put("b", b"1".to_vec(), b"x".to_vec()).unwrap();
        let st = s.stats();
        assert_eq!(st.trees, 2);
        assert_eq!(st.keys, 3);
        assert_eq!(s.tree_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn overwrite_replaces_value() {
        let s = Store::in_memory();
        s.put("t", b"k".to_vec(), b"old".to_vec()).unwrap();
        s.put("t", b"k".to_vec(), b"new".to_vec()).unwrap();
        assert_eq!(s.get("t", b"k").unwrap(), b"new");
        assert_eq!(s.tree_len("t"), 1);
    }

    #[test]
    fn single_shard_store_behaves_identically() {
        let s = Store::in_memory_with(StoreOptions { shards: 1, ..StoreOptions::default() });
        let mut b = WriteBatch::new();
        b.put("x", b"1".to_vec(), b"a".to_vec());
        b.put("y", b"2".to_vec(), b"b".to_vec());
        s.apply(&b).unwrap();
        assert_eq!(s.stats().trees, 2);
        assert_eq!(s.get("y", b"2").unwrap(), b"b");
    }
}
